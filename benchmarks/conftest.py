"""Shared infrastructure for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's artifacts (a table, a
figure, or an experiment's result rows), times the regeneration, and
**saves the reproduced artifact** under ``benchmarks/results/`` so the
reproduction can be inspected after a run (pytest captures stdout).
EXPERIMENTS.md summarizes these outputs against the paper.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """``save_artifact("t1_table1", text)`` -> benchmarks/results/t1_table1.txt"""

    def _save(name: str, text: str) -> pathlib.Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save

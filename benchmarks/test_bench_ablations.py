"""Experiment E10: design-choice ablations (sections 5.1 / 6 continuing
work): line-size selection, replacement policy, cache geometry."""

from repro.analysis.ablations import (
    geometry_sweep,
    line_size_sweep,
    replacement_policy_sweep,
)
from repro.analysis.report import format_rows


def test_line_size_selection(benchmark, save_artifact):
    """The trade the P896.2 recommendation must balance: miss ratio falls
    with line size (spatial locality), but bus occupancy turns back up
    (transfer cost + false sharing) -- a U-curve with an interior
    optimum."""
    rows = benchmark.pedantic(
        lambda: line_size_sweep(references=6000), rounds=1, iterations=1
    )
    miss_ratios = [r["miss_ratio"] for r in rows]
    assert miss_ratios == sorted(miss_ratios, reverse=True)

    costs = [r["bus_ns_per_access"] for r in rows]
    best = costs.index(min(costs))
    assert 0 < best < len(costs) - 1, (
        f"expected an interior optimum, got index {best} of {costs}"
    )
    # The optimum is a realistic standard size (32 or 64 bytes).
    assert rows[best]["line_size"] in (32, 64)
    save_artifact(
        "e10_line_size_selection",
        format_rows(rows, "E10: line-size selection at fixed 4 KiB "
                          "capacity (byte-granular spatial workload; "
                          "transfer cost scales with line size)"),
    )


def test_replacement_policy(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: replacement_policy_sweep(references=5000),
        rounds=1, iterations=1,
    )
    by_name = {r["replacement"]: r for r in rows}
    # With temporal locality, LRU must beat FIFO.
    assert by_name["lru"]["miss_ratio"] < by_name["fifo"]["miss_ratio"]
    save_artifact(
        "e10b_replacement_policy",
        format_rows(rows, "E10b: replacement policy under reuse pressure"),
    )


def test_geometry(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: geometry_sweep(references=5000), rounds=1, iterations=1
    )
    # Same capacity, rising associativity: conflict misses shrink.
    direct_mapped = rows[0]["miss_ratio"]
    most_associative = rows[-1]["miss_ratio"]
    assert most_associative <= direct_mapped
    save_artifact(
        "e10c_geometry",
        format_rows(rows, "E10c: associativity vs sets at constant "
                          "capacity"),
    )

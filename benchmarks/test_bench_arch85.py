"""Experiment E2: the [Arch85]-style protocol comparison.

The paper's "preferred" entries rest on Archibald & Baer's simulation of
this protocol set under a probabilistic program model; this bench reruns
that comparison on our Futurebus simulator and reports the same kind of
rows (bus transactions and nanoseconds per access, miss ratio,
invalidations vs updates, interventions, aborts)."""

from repro.analysis.compare import DEFAULT_PROTOCOLS, protocol_comparison
from repro.analysis.report import format_rows
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


def _trace():
    config = SyntheticConfig(processors=4, p_shared=0.3, p_write=0.3)
    return SyntheticWorkload(config, seed=7).trace(4000)


def test_protocol_comparison(benchmark, save_artifact):
    trace = _trace()
    rows = benchmark.pedantic(
        lambda: protocol_comparison(trace=trace),
        rounds=1, iterations=1,
    )
    by_name = {r["system"]: r for r in rows}

    # Shape assertions mirroring the comparison's published conclusions:
    # 1. copy-back ownership protocols use far less bus than write-through;
    assert (
        by_name["moesi"]["txns_per_access"]
        < by_name["write-through"]["txns_per_access"]
    )
    # 2. update-based protocols (Dragon/Firefly/MOESI-preferred) beat the
    #    invalidation-based ones on this actively-shared workload;
    assert (
        by_name["dragon"]["bus_ns_per_access"]
        < by_name["berkeley"]["bus_ns_per_access"]
    )
    # 3. the BS-adapted protocols pay for going through memory (aborts).
    assert by_name["illinois"]["aborts"] > 0
    assert by_name["write-once"]["aborts"] > 0
    assert by_name["moesi"]["aborts"] == 0
    # 4. ownership protocols avoid write-through's memory traffic but keep
    #    intervention counts visible.
    assert by_name["berkeley"]["interventions"] > 0

    save_artifact(
        "e2_arch85_protocol_comparison",
        format_rows(
            rows,
            "E2: protocol comparison (4 CPUs, synthetic shared-memory "
            "model, p_shared=0.3, p_write=0.3, 4000 refs, timed run)",
        ),
    )


def test_comparison_scales_with_processors(benchmark, save_artifact):
    """Secondary sweep: the ordering is stable from 2 to 8 processors."""

    def sweep():
        rows = []
        for n in (2, 4, 8):
            config = SyntheticConfig(
                processors=n, p_shared=0.3, p_write=0.3
            )
            trace = SyntheticWorkload(config, seed=7).trace(500 * n)
            for row in protocol_comparison(
                trace=trace, protocols=("moesi", "write-through")
            ):
                row["processors"] = n
                rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n in (2, 4, 8):
        moesi, wt = [r for r in rows if r["processors"] == n]
        assert moesi["txns_per_access"] < wt["txns_per_access"]
    save_artifact(
        "e2b_scaling",
        format_rows(rows, "E2b: copy-back vs write-through, 2-8 CPUs",
                    columns=["processors", "system", "txns_per_access",
                             "bus_ns_per_access", "miss_ratio"]),
    )

"""Experiment E5: bus-implementation sensitivity (sections 2.2 and 5.2).

Two parts: (a) micro-benchmarks of the Futurebus substrate itself
(wired-OR handshake, transaction engine throughput); (b) the paper's
sensitivity claim -- "the preferred protocol is sensitive to the
implementation of the bus" -- demonstrated by sweeping the broadcast
surcharge until the update-vs-invalidate preference flips."""

from repro.analysis.compare import broadcast_penalty_sweep
from repro.analysis.report import format_rows
from repro.bus.handshake import SlaveTiming, run_address_handshake
from repro.bus.futurebus import Futurebus
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals
from repro.memory.main_memory import MainMemory


def test_handshake_micro(benchmark):
    """Throughput of the full three-wire broadcast handshake model."""
    slaves = [
        SlaveTiming(f"s{i}", ack_delay=5.0, done_delay=20.0 + i, position=i)
        for i in range(8)
    ]
    trace = benchmark(run_address_handshake, slaves)
    assert trace.glitch_count == 7


def test_transaction_engine_micro(benchmark):
    """Raw transaction rate of the engine with four silent snoopers."""
    from repro.core.signals import SnoopResponse
    from repro.bus.futurebus import BusAgent

    class Quiet(BusAgent):
        def __init__(self, unit_id):
            self.unit_id = unit_id

        def snoop(self, txn):
            return SnoopResponse.NONE

    bus = Futurebus(MainMemory())
    for i in range(4):
        bus.attach(Quiet(f"q{i}"))

    def txn():
        bus.execute("m", 0, MasterSignals(ca=True), BusOp.READ)

    benchmark(txn)


def test_broadcast_penalty_flips_preference(benchmark, save_artifact):
    """E5 proper: raise the wired-OR broadcast surcharge until
    invalidation becomes the preferred write policy."""
    rows = benchmark.pedantic(
        lambda: broadcast_penalty_sweep(
            surcharges=(0.0, 25.0, 100.0, 300.0, 600.0), references=2500
        ),
        rounds=1, iterations=1,
    )
    # At the real Futurebus's 25 ns, update wins on this workload ...
    at_25 = next(r for r in rows if r["broadcast_surcharge_ns"] == 25.0)
    assert at_25["winner"] == "update"
    # ... and a sufficiently expensive broadcast flips the preference.
    assert rows[-1]["winner"] == "invalidate"
    save_artifact(
        "e5_broadcast_penalty",
        format_rows(rows, "E5: broadcast surcharge sweep -- the preferred "
                          "choice is sensitive to the bus implementation"),
    )


def test_memory_latency_sensitivity(benchmark, save_artifact):
    """Section 5.2's other sensitivity axis: as memory slows relative to
    caches, the intervention-capable class pulls further ahead of the
    abort-push protocols (whose dirty handoffs visit memory twice)."""
    from repro.analysis.compare import memory_latency_sweep

    rows = benchmark.pedantic(
        lambda: memory_latency_sweep(references=2500),
        rounds=1, iterations=1,
    )
    penalties = [r["illinois_penalty"] for r in rows]
    assert penalties == sorted(penalties), penalties  # monotone
    assert penalties[-1] > penalties[0]
    save_artifact(
        "e5b_memory_latency",
        format_rows(rows, "E5b: memory-latency sensitivity -- "
                          "intervention (MOESI) vs abort-push (Illinois)"),
    )

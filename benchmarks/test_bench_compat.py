"""Experiment E1: the compatibility theorem, exhaustively model-checked.

Reproduces the paper's central claims as a verification matrix:

* every mix of MOESI-class members is consistent under *every* permitted
  action choice and interleaving;
* the BS-adapted foreign protocols are consistent among themselves;
* naive foreign/class mixes and single-cell mutants are caught.
"""

from repro.analysis.report import format_rows
from repro.verify.explorer import explore
from repro.verify.mixes import (
    class_member_mixes,
    homogeneous_foreign,
    incompatible_mixes,
    mutant_mixes,
    run_matrix,
)


def test_full_class_two_caches_exhaustive(benchmark, save_artifact):
    """The strongest single statement: two caches, each free to take ANY
    action in the relaxation closure at every step."""
    result = benchmark.pedantic(
        lambda: explore(["full-class", "full-class"]),
        rounds=3, iterations=1,
    )
    assert result.consistent and result.complete
    save_artifact("e1_full_class_exploration", result.summary())


def test_three_way_mixed_members(benchmark):
    result = benchmark.pedantic(
        lambda: explore(["moesi-scripted", "berkeley", "write-through"]),
        rounds=3, iterations=1,
    )
    assert result.consistent and result.complete


def test_verification_matrix(benchmark, save_artifact):
    """The full E1 matrix (30 rows): every row must land as expected."""
    cases = (
        class_member_mixes()
        + homogeneous_foreign()
        + incompatible_mixes()
        + mutant_mixes()
    )
    rows = benchmark.pedantic(
        lambda: run_matrix(cases), rounds=1, iterations=1
    )
    assert all(r["ok"] for r in rows), [r for r in rows if not r["ok"]]
    save_artifact(
        "e1_verification_matrix",
        format_rows(
            rows,
            "E1: compatibility verification matrix "
            "(exhaustive model checking, one line, all interleavings "
            "and permitted choices)",
            columns=["mix", "expected", "observed", "ok", "states",
                     "transitions", "note"],
        ),
    )


def test_two_line_eviction_coupling(benchmark, save_artifact):
    """Strengthened E1: two line addresses aliasing one cache frame, so
    capacity evictions and write-backs enter the explored space.  The
    full relaxation closure remains consistent, exhaustively."""
    from repro.verify.explorer import Explorer

    result = benchmark.pedantic(
        lambda: Explorer(["full-class", "full-class"], lines=2).run(),
        rounds=1, iterations=1,
    )
    assert result.consistent and result.complete
    save_artifact("e1b_two_line_exploration", result.summary())

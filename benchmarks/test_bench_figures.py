"""Experiments F1-F4: regenerate the paper's figures from the models."""

from repro.analysis.figures import (
    figure1_broadcast_handshake,
    figure2_parallel_protocol,
    figure3_characteristics,
    figure3_rows,
    figure4_groups,
    figure4_state_pairs,
)
from repro.core.states import LineState


def test_figure1_broadcast_handshake(benchmark, save_artifact):
    """F1: wired-OR broadcast handshake with staggered releases."""
    text = benchmark(figure1_broadcast_handshake)
    assert "glitches absorbed: 2" in text
    assert "105 ns" in text  # 80 ns last release + 25 ns filter
    save_artifact("f1_broadcast_handshake", text)


def test_figure2_parallel_protocol(benchmark, save_artifact):
    """F2: AD/AS*/AK*/AI* waveforms of one address cycle."""
    text = benchmark(figure2_parallel_protocol)
    for signal in ("AD", "AS*", "AK*", "AI*"):
        assert signal in text
    save_artifact("f2_parallel_protocol", text)


def test_figure3_characteristics(benchmark, save_artifact):
    """F3: the three characteristics, derived from the predicates."""
    text = benchmark(figure3_characteristics)
    rows = figure3_rows()
    assert [r[0] for r in rows] == ["M", "O", "E", "S", "I"]
    save_artifact("f3_three_characteristics", text)


def test_figure4_state_pairs(benchmark, save_artifact):
    """F4: the four state-pair qualities, derived from the predicates."""
    text = benchmark(figure4_state_pairs)
    groups = figure4_groups()
    assert groups["M+O"][0] == {LineState.MODIFIED, LineState.OWNED}
    assert groups["O+S"][0] == {LineState.OWNED, LineState.SHAREABLE}
    save_artifact("f4_state_pairs", text)

"""Experiment E8: heterogeneous board mixes on one backplane.

The point of the class: "the coexistence of copy back caches, write
through caches and non-caching boards in the same system."  Fix the
workload, vary the board mix, and watch traffic and elapsed time shift --
copy-back boards shield the bus; simpler boards load it."""

from repro.analysis.compare import heterogeneous_mix_sweep
from repro.analysis.report import format_rows


def test_board_mix_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: heterogeneous_mix_sweep(references=3000),
        rounds=1, iterations=1,
    )
    by_label = {r["system"]: r for r in rows}

    all_moesi = by_label["4x copy-back (MOESI)"]
    all_wt = by_label["4x write-through"]
    mixed_protocols = by_label["MOESI+Berkeley+Dragon+WT"]

    # Pure copy-back is the bus-traffic floor; pure write-through the
    # ceiling; every mix lies in between or near it.
    assert all_moesi["txns_per_access"] < all_wt["txns_per_access"]
    assert (
        all_moesi["txns_per_access"]
        <= mixed_protocols["txns_per_access"]
        <= all_wt["txns_per_access"] * 1.1
    )
    # Replacing one cached board with a non-caching one adds traffic.
    with_io = by_label["3x MOESI + 1x non-caching"]
    assert with_io["txns_per_access"] > all_moesi["txns_per_access"]

    save_artifact(
        "e8_heterogeneous_mixes",
        format_rows(rows, "E8: board-mix sweep (fixed workload, timed; "
                          "4 boards on one Futurebus)"),
    )


def test_gradual_write_through_degradation(benchmark, save_artifact):
    """Swapping copy-back boards for write-through ones degrades bus cost
    monotonically -- the incremental-cost story of section 1."""
    from repro.analysis.compare import run_protocol_on_trace
    from repro.system.runner import timed_run_from_trace
    from repro.system.system import BoardSpec, System
    from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

    config = SyntheticConfig(processors=4, p_shared=0.2, p_write=0.3)
    trace = SyntheticWorkload(config, seed=41).trace(2500)
    units = trace.units()

    def run():
        rows = []
        for n_wt in range(5):
            protocols = ["write-through"] * n_wt + ["moesi"] * (4 - n_wt)
            system = System(
                [
                    BoardSpec(unit, protocol)
                    for unit, protocol in zip(units, protocols)
                ],
                check=False,
                label=f"{n_wt}x WT + {4 - n_wt}x MOESI",
            )
            report = timed_run_from_trace(system, trace).run()
            row = report.row()
            row["n_write_through"] = n_wt
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    txns = [r["bus_txns"] for r in rows]
    assert txns == sorted(txns), txns  # monotone degradation
    save_artifact(
        "e8b_wt_degradation",
        format_rows(rows, "E8b: bus cost as write-through boards replace "
                          "copy-back boards",
                    columns=["n_write_through", "system", "bus_txns",
                             "txns_per_access", "bus_ns_per_access"]),
    )

"""Experiment E9 (extension -- paper section 6 future work): consistency
over multiple buses, and what the hierarchy buys.

The paper's motivation for caches is that "no feasible bus design can
provide adequate bandwidth to memory for any reasonable number of high
performance processors"; a two-level hierarchy extends the same argument
past a single backplane.  This bench measures how much global-bus traffic
the cluster bridges filter out as locality shifts from cluster-local to
fully global."""

import random

from repro.analysis.report import format_rows
from repro.hierarchy import HierarchicalSystem


def _drive(h: HierarchicalSystem, locality: float, references: int,
           seed: int) -> None:
    """Random traffic where ``locality`` is the probability a reference
    targets the unit's own cluster-private region."""
    rng = random.Random(seed)
    all_units = list(h.controllers)
    cluster_names = list(h.bridges)
    lines_per_region = 6
    for _ in range(references):
        unit = rng.choice(all_units)
        cluster = h.cluster_of[unit]
        if rng.random() < locality:
            region = cluster_names.index(cluster)
        else:
            region = len(cluster_names)  # the globally shared region
        address = (region * lines_per_region + rng.randrange(
            lines_per_region)) * 32
        if rng.random() < 0.35:
            h.write(unit, address)
        else:
            h.read(unit, address)


def test_locality_sweep(benchmark, save_artifact):
    def sweep():
        rows = []
        for locality in (0.0, 0.5, 0.8, 0.95):
            h = HierarchicalSystem.grid(2, 2, check=False)
            _drive(h, locality, 3000, seed=5)
            violations = h.check_coherence()
            traffic = h.traffic()
            rows.append(
                {
                    "cluster_locality": locality,
                    "global_txns": traffic["global_transactions"],
                    "local_txns": traffic["local_transactions"],
                    "global_fraction": round(
                        traffic["global_transactions"]
                        / max(1, traffic["local_transactions"]),
                        3,
                    ),
                    "violations": len(violations),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(r["violations"] == 0 for r in rows)
    fractions = [r["global_fraction"] for r in rows]
    # More cluster locality -> the bridges filter more: monotone drop.
    assert fractions == sorted(fractions, reverse=True), fractions
    assert fractions[-1] < fractions[0] / 2
    save_artifact(
        "e9_hierarchy_locality",
        format_rows(rows, "E9: two-level hierarchy -- global-bus traffic "
                          "filtered by cluster locality (2 clusters x "
                          "2 CPUs, 3000 refs)"),
    )


def test_hierarchy_scales_clusters(benchmark, save_artifact):
    """Adding clusters adds compute without swamping the global bus, as
    long as sharing stays mostly local."""

    def sweep():
        rows = []
        for clusters in (1, 2, 4):
            h = HierarchicalSystem.grid(clusters, 2, check=False)
            _drive(h, 0.9, 1500 * clusters, seed=3)
            violations = h.check_coherence()
            traffic = h.traffic()
            rows.append(
                {
                    "clusters": clusters,
                    "cpus": clusters * 2,
                    "references": 1500 * clusters,
                    "global_txns": traffic["global_transactions"],
                    "global_txns_per_ref": round(
                        traffic["global_transactions"] / (1500 * clusters),
                        4,
                    ),
                    "violations": len(violations),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(r["violations"] == 0 for r in rows)
    # Per-reference global traffic stays bounded as the system grows.
    assert rows[-1]["global_txns_per_ref"] < 0.2
    save_artifact(
        "e9b_hierarchy_scaling",
        format_rows(rows, "E9b: clusters added at 90% locality -- "
                          "global bus load per reference stays bounded"),
    )


def test_checked_hierarchy_throughput(benchmark):
    """Micro: checked hierarchical operations per second."""
    h = HierarchicalSystem.grid(2, 2)
    rng = random.Random(1)
    all_units = list(h.controllers)

    def one():
        unit = rng.choice(all_units)
        address = rng.randrange(6) * 32
        if rng.random() < 0.4:
            h.write(unit, address)
        else:
            h.read(unit, address)

    benchmark(one)
    assert not h.check_coherence()

"""Experiment E11 (extension): parallel-kernel workloads on the
Futurebus -- the access shapes real shared-memory programs produce.

Includes the classic spinlock lesson (TAS hammers the bus, TTAS spins in
the cache), the stencil's nearest-neighbour sharing (also run through the
cluster hierarchy, where it belongs), and protocol sensitivity on the
reduction tree."""

from repro.analysis.compare import run_protocol_on_trace
from repro.analysis.report import format_rows
from repro.workloads.kernels import (
    reduction_trace,
    spinlock_trace,
    stencil_trace,
)


def test_spinlock_tas_vs_ttas(benchmark, save_artifact):
    def run():
        rows = []
        for kind in ("tas", "ttas"):
            for protocol in ("moesi-invalidate", "moesi-update"):
                trace = spinlock_trace(
                    kind=kind, processors=4,
                    acquisitions_per_processor=6,
                )
                report = run_protocol_on_trace(protocol, trace, timed=False)
                handoffs = 24
                rows.append(
                    {
                        "lock": kind,
                        "protocol": protocol,
                        "references": len(trace),
                        "bus_txns": report.bus.transactions,
                        "txns_per_handoff": round(
                            report.bus.transactions / handoffs, 1
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(r["lock"], r["protocol"]): r for r in rows}
    tas = by_key[("tas", "moesi-invalidate")]["txns_per_handoff"]
    ttas = by_key[("ttas", "moesi-invalidate")]["txns_per_handoff"]
    # TTAS spins hit in every waiter's cache: >3x less bus per handoff.
    assert ttas < tas / 3
    save_artifact(
        "e11_spinlock",
        format_rows(rows, "E11: spinlock bus traffic -- test-and-set vs "
                          "test-and-test-and-set (4 CPUs)"),
    )


def test_stencil_placement_on_hierarchy(benchmark, save_artifact):
    """Nearest-neighbour sharing on a cluster hierarchy: placement
    matters.  With adjacent processors co-clustered, only one of the
    three halo boundaries crosses clusters; interleaving the processors
    across clusters makes *every* halo cross, multiplying global-bus
    traffic for the identical computation."""
    from repro.hierarchy import ClusterSpec, HierarchicalSystem

    def run_with_mapping(mapping):
        trace = stencil_trace(processors=4, iterations=10,
                              lines_per_processor=8)
        h = HierarchicalSystem(
            [
                ClusterSpec("c0", protocols=("moesi", "moesi")),
                ClusterSpec("c1", protocols=("moesi", "moesi")),
            ],
            check=False,
        )
        for record in trace:
            unit = mapping[record.unit]
            if record.op.value == "W":
                h.write(unit, record.address)
            else:
                h.read(unit, record.address)
        assert not h.check_coherence()
        return h.traffic()

    adjacent = {
        "cpu0": "c0.cpu0", "cpu1": "c0.cpu1",
        "cpu2": "c1.cpu0", "cpu3": "c1.cpu1",
    }
    interleaved = {
        "cpu0": "c0.cpu0", "cpu1": "c1.cpu0",
        "cpu2": "c0.cpu1", "cpu3": "c1.cpu1",
    }

    def run():
        return {
            "adjacent": run_with_mapping(adjacent),
            "interleaved": run_with_mapping(interleaved),
        }

    traffic = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (
        traffic["adjacent"]["global_transactions"]
        < traffic["interleaved"]["global_transactions"]
    )
    rows = [
        {
            "placement": name,
            "global_txns": t["global_transactions"],
            "local_txns": t["local_transactions"],
        }
        for name, t in traffic.items()
    ]
    save_artifact(
        "e11b_stencil_placement",
        format_rows(rows, "E11b: 4-CPU stencil on a 2x2 hierarchy -- "
                          "co-clustering adjacent CPUs vs interleaving"),
    )


def test_reduction_protocols(benchmark, save_artifact):
    def run():
        trace = reduction_trace(processors=8, elements_per_processor=8)
        rows = []
        for protocol in ("moesi", "berkeley", "illinois"):
            report = run_protocol_on_trace(protocol, trace, timed=False)
            rows.append(
                {
                    "protocol": protocol,
                    "bus_txns": report.bus.transactions,
                    "interventions": report.bus.interventions,
                    "aborts": report.bus.retries,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r["protocol"]: r for r in rows}
    # Combining-tree handoffs are dirty-data passes: ownership protocols
    # intervene; Illinois must abort-push through memory every time.
    assert by_name["moesi"]["interventions"] > 0
    assert by_name["illinois"]["aborts"] > 0
    assert by_name["moesi"]["bus_txns"] <= by_name["illinois"]["bus_txns"]
    save_artifact(
        "e11c_reduction",
        format_rows(rows, "E11c: combining-tree reduction (8 CPUs)"),
    )

"""Experiment E7: the line-size standardization requirement (section 5.1).

Three parts: the mixed-size failure demonstration, the uniform-size
control, and the system builder's enforcement of the P896.2 position
("a given system [must] standardize on a given line size")."""

import pytest

from repro.ext.linesize import demonstrate_mismatch, demonstrate_uniform_ok
from repro.system.system import BoardSpec, System
from repro.workloads.patterns import ping_pong


def test_mixed_line_sizes_break(benchmark, save_artifact):
    demo = benchmark(demonstrate_mismatch)
    assert demo.stale_read
    save_artifact(
        "e7_linesize_mismatch",
        "\n".join(demo.narrative) + "\n\n" + demo.summary(),
    )


def test_uniform_line_size_control(benchmark, save_artifact):
    demo = benchmark(demonstrate_uniform_ok)
    assert not demo.stale_read
    save_artifact(
        "e7b_linesize_uniform_control",
        "\n".join(demo.narrative) + "\n\n" + demo.summary(),
    )


def test_system_builder_enforces_standard(benchmark):
    """The production path refuses the forbidden configuration outright."""

    def attempt():
        with pytest.raises(ValueError, match="line size mismatch"):
            System(
                [
                    BoardSpec("a", line_size=32),
                    BoardSpec("b", line_size=64),
                ]
            )

    benchmark(attempt)


@pytest.mark.parametrize("line_size", [16, 32, 64, 128])
def test_any_uniform_size_works(benchmark, line_size):
    """Uniform systems are size-agnostic; consistency holds at any
    standard size."""

    def run():
        system = System.homogeneous("moesi", 2, line_size=line_size)
        system.run_trace(ping_pong(rounds=30))
        assert not system.check_coherence()
        return system

    benchmark.pedantic(run, rounds=2, iterations=1)

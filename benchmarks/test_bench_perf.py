"""The parallel execution layer: serial-vs-parallel wall time for the E1
matrix and the E2 sweep, and the explorer's single-worker throughput.

Unlike the experiment benchmarks (which reproduce a paper artifact), this
module tracks the *toolkit's* performance trajectory: the saved artifact
is the same machine-readable report ``repro bench`` writes to
``BENCH_perf.json``, so successive revisions can be diffed.  The CI
bench-smoke job runs this in quick mode and fails on a >10%
transitions/sec regression against the committed baseline or a traced
observability overhead over budget.
"""

import json
import pathlib

from repro.perf.bench import (
    BATCH_MIN_EXPLORER_MULTIPLE,
    BENCH_FILENAME,
    MAX_TRACED_OVERHEAD_PCT,
    MIN_SERVE_BATCH_SPEEDUP,
    load_baseline,
    run_bench_suite,
)
from repro.perf.pool import resolve_workers

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = str(REPO_ROOT / BENCH_FILENAME)


def _assert_budgets(report: dict) -> None:
    assert report["matrix"]["all_ok"]
    assert report["matrix"]["rows_identical"]
    assert report["des"]["rows_identical"]
    # The disabled-path observability budget: guards only, <5% vs a
    # direct pre-facade run of the same workload.
    assert report["obs"]["overhead_disabled_pct"] < 5.0
    # The traced-path budget: ring-buffered deferred encoding keeps the
    # full structured stream within budget.
    assert report["obs"]["overhead_traced_pct"] <= MAX_TRACED_OVERHEAD_PCT, (
        f"traced overhead {report['obs']['overhead_traced_pct']}% over the "
        f"{MAX_TRACED_OVERHEAD_PCT}% budget"
    )
    # The batch kernel must agree with the object engine on its sampled
    # rows; the throughput floor/budget rides on the regression section.
    assert report["batch"]["verified_ok"], (
        "batch kernel diverged from the object engine"
    )
    assert report["batch"]["backends"], "no batch backend was timed"
    # Continuous batching must reproduce one-at-a-time dispatch byte for
    # byte; the speedup floor is numpy-only (coalescing buys the scalar
    # interpreter nothing but amortized fixed costs).
    serve_batch = report["serve_batch"]
    assert serve_batch["identical"], (
        "coalesced serve payloads diverged from one-at-a-time execution"
    )
    if serve_batch["backend"] == "numpy":
        assert serve_batch["speedup"] >= MIN_SERVE_BATCH_SPEEDUP, (
            f"coalesced burst only {serve_batch['speedup']}x one-at-a-time "
            f"dispatch, below the {MIN_SERVE_BATCH_SPEEDUP}x floor"
        )
    regression = report.get("regression")
    if regression is not None:
        assert regression["ok"], "; ".join(regression["failures"])
        batch = regression.get("batch")
        if batch is not None and batch["explorer_multiple"] is not None:
            gated = max(
                x
                for x in (
                    batch["explorer_multiple"],
                    batch["explorer_multiple_normalized"],
                )
                if x is not None
            )
            assert gated >= BATCH_MIN_EXPLORER_MULTIPLE, (
                f"batch kernel at {gated}x the baseline explorer, below "
                f"the {BATCH_MIN_EXPLORER_MULTIPLE}x floor"
            )


def test_bench_suite(benchmark, save_artifact):
    report = benchmark.pedantic(
        lambda: run_bench_suite(
            workers=resolve_workers(None),
            quick=False,
            baseline_path=BASELINE_PATH,
        ),
        rounds=1, iterations=1,
    )
    _assert_budgets(report)
    save_artifact("perf_bench", json.dumps(report, indent=2))


def test_bench_smoke_quick(save_artifact):
    """The CI bench-smoke entry point: the quick suite against the
    committed ``BENCH_perf.json`` baseline."""
    assert load_baseline(BASELINE_PATH) is not None, (
        f"committed baseline missing at {BASELINE_PATH}"
    )
    report = run_bench_suite(
        workers=resolve_workers(None), quick=True, baseline_path=BASELINE_PATH
    )
    _assert_budgets(report)
    regression = report["regression"]
    assert regression["explorer"], "baseline shares no explorer mixes"
    save_artifact("perf_bench_smoke", json.dumps(report, indent=2))

"""The parallel execution layer: serial-vs-parallel wall time for the E1
matrix and the E2 sweep, and the explorer's single-worker throughput.

Unlike the experiment benchmarks (which reproduce a paper artifact), this
module tracks the *toolkit's* performance trajectory: the saved artifact
is the same machine-readable report ``repro bench`` writes to
``BENCH_perf.json``, so successive revisions can be diffed.
"""

import json

from repro.perf.bench import run_bench_suite
from repro.perf.pool import resolve_workers


def test_bench_suite(benchmark, save_artifact):
    report = benchmark.pedantic(
        lambda: run_bench_suite(workers=resolve_workers(None), quick=False),
        rounds=1, iterations=1,
    )
    assert report["matrix"]["all_ok"]
    assert report["matrix"]["rows_identical"]
    assert report["des"]["rows_identical"]
    # The disabled-path observability budget: guards only, <5% vs a
    # direct pre-facade run of the same workload.
    assert report["obs"]["overhead_disabled_pct"] < 5.0
    save_artifact("perf_bench", json.dumps(report, indent=2))

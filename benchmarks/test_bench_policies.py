"""Experiment E6: dynamic and degenerate action selection (section 3.4).

"It would introduce no errors if a board were to select an action at each
instant from the available set using a random number generator or a
selection algorithm such as round robin."  This bench runs those extreme
policies on a checked system (so any inconsistency would abort the run)
and prices them against the preferred policy."""

from repro.analysis.compare import run_protocol_on_trace
from repro.analysis.report import format_rows
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

POLICIES = (
    "moesi",            # preferred
    "moesi-update",
    "moesi-invalidate",
    "moesi-random",
    "moesi-round-robin",
)


def _trace():
    config = SyntheticConfig(processors=4, p_shared=0.35, p_write=0.35)
    return SyntheticWorkload(config, seed=31).trace(3000)


def test_policy_comparison(benchmark, save_artifact):
    trace = _trace()

    def run():
        rows = []
        for name in POLICIES:
            report = run_protocol_on_trace(
                name, trace, timed=True, check=True
            )
            row = report.row()
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r["system"]: r for r in rows}

    # All five completed with runtime checking on: consistency held.
    assert len(rows) == 5
    # The preferred policy takes the first entry of every cell, i.e. the
    # update-biased choice; it must match moesi-update exactly.
    assert by_name["moesi"]["bus_txns"] == by_name["moesi-update"]["bus_txns"]
    # Random/round-robin are safe but pay for their whimsy: no better
    # than the best fixed policy.
    best_fixed = min(
        by_name[n]["bus_ns_per_access"]
        for n in ("moesi", "moesi-update", "moesi-invalidate")
    )
    assert by_name["moesi-random"]["bus_ns_per_access"] >= best_fixed
    assert by_name["moesi-round-robin"]["bus_ns_per_access"] >= best_fixed

    save_artifact(
        "e6_policy_comparison",
        format_rows(rows, "E6: action-selection policies (checked runs; "
                          "random and round-robin are the paper's "
                          "'extreme case')"),
    )

"""Experiment E4: the Puzak replacement-status refinement (section 5.2).

"If the line is quite recently used ... it can be updated, and if it is
nearing time for replacement ... it can be discarded."  Compares
always-update, always-invalidate, and the recency-aware policy under
replacement pressure, plus a threshold sweep."""

from repro.analysis.report import format_rows
from repro.ext.puzak import puzak_comparison


def test_puzak_vs_extremes(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: puzak_comparison(references=4000),
        rounds=1, iterations=1,
    )
    by_name = {r["system"]: r for r in rows}
    puzak_row = next(v for k, v in by_name.items() if "puzak" in k)
    update = by_name["always-update"]
    invalidate = by_name["always-invalidate"]

    # The refinement interpolates: fewer wasted updates than
    # always-update, fewer forced re-misses than always-invalidate.
    assert (
        invalidate["updates"] <= puzak_row["updates"] <= update["updates"]
    )
    assert (
        update["invalidations"]
        <= puzak_row["invalidations"]
        <= invalidate["invalidations"]
    )
    # And it must not be worse than the worse extreme on bus cost.
    worst = max(update["bus_ns_per_access"],
                invalidate["bus_ns_per_access"])
    assert puzak_row["bus_ns_per_access"] <= worst * 1.05

    save_artifact(
        "e4_puzak_refinement",
        format_rows(rows, "E4: replacement-status refinement (small "
                          "2-way caches, skewed sharing, timed)"),
    )


def test_threshold_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: puzak_comparison(
            references=2500, thresholds=(0.0, 0.25, 0.5, 0.75, 1.0)
        ),
        rounds=1, iterations=1,
    )
    puzak_rows = [r for r in rows if "puzak" in r["system"]]
    assert len(puzak_rows) == 5
    # threshold=1.0 in a 2-way cache means "always update" (all recency
    # positions retained); threshold=0.0 keeps only exact-MRU lines.
    updates = [r["updates"] for r in puzak_rows]
    assert updates == sorted(updates)  # monotone in the threshold
    save_artifact(
        "e4b_puzak_threshold_sweep",
        format_rows(rows, "E4b: recency threshold sweep"),
    )

"""Experiments T1-T7: regenerate the paper's seven protocol tables from
the implementations, diff them against the transcription, and save the
renderings.  The benchmark times the full regenerate+diff cycle."""

import pytest

from repro.analysis.paper_data import (
    BERKELEY_TABLE3,
    DRAGON_TABLE4,
    FIREFLY_TABLE7,
    ILLINOIS_TABLE6,
    WRITE_ONCE_TABLE5,
)
from repro.analysis.tables import (
    diff_protocol_table,
    diff_table1,
    diff_table2,
    moesi_local_cells,
    moesi_snoop_cells,
    protocol_cells,
    render_cells,
)
from repro.protocols.berkeley import BerkeleyProtocol
from repro.protocols.dragon import DragonProtocol
from repro.protocols.firefly import FireflyProtocol
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.write_once import WriteOnceProtocol


def test_table1_moesi_local(benchmark, save_artifact):
    """T1: Table 1 -- MOESI class, local events."""
    diff = benchmark(diff_table1)
    assert diff.matches, [str(m) for m in diff.mismatches]
    save_artifact(
        "t1_table1_moesi_local",
        render_cells(
            moesi_local_cells(),
            "Table 1 (reproduced): MOESI Protocol -- Result State and Bus "
            "Signals, local events.  * = write-through entry, ** = "
            "non-caching entry.",
        )
        + f"\n\n{diff.summary()}",
    )


def test_table2_moesi_bus(benchmark, save_artifact):
    """T2: Table 2 -- MOESI class, bus events."""
    diff = benchmark(diff_table2)
    assert diff.matches, [str(m) for m in diff.mismatches]
    save_artifact(
        "t2_table2_moesi_bus",
        render_cells(
            moesi_snoop_cells(),
            "Table 2 (reproduced): MOESI Protocol -- bus events "
            "(columns 5-10).",
        )
        + f"\n\n{diff.summary()}",
    )


_PROTOCOLS = {
    3: ("t3_table3_berkeley", BerkeleyProtocol, ("Read", "Write", 5, 6),
        BERKELEY_TABLE3),
    4: ("t4_table4_dragon", DragonProtocol, ("Read", "Write", 5, 8),
        DRAGON_TABLE4),
    5: ("t5_table5_write_once", WriteOnceProtocol, ("Read", "Write", 5, 6),
        WRITE_ONCE_TABLE5),
    6: ("t6_table6_illinois", IllinoisProtocol, ("Read", "Write", 5, 6),
        ILLINOIS_TABLE6),
    7: ("t7_table7_firefly", FireflyProtocol, ("Read", "Write", 5, 8),
        FIREFLY_TABLE7),
}


@pytest.mark.parametrize("number", sorted(_PROTOCOLS))
def test_protocol_tables(benchmark, save_artifact, number):
    """T3-T7: each prior protocol's table, emitted and diffed."""
    name, protocol_cls, columns, _reference = _PROTOCOLS[number]
    diff = benchmark(diff_protocol_table, number)
    assert diff.matches, [str(m) for m in diff.mismatches]
    protocol = protocol_cls()
    save_artifact(
        name,
        render_cells(
            protocol_cells(protocol, columns),
            f"Table {number} (reproduced): {protocol.name} Protocol -- "
            "Result State and Bus Signals.",
        )
        + f"\n\n{diff.summary()}",
    )

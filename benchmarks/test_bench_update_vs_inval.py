"""Experiment E3: broadcast-update vs invalidate (section 5.2).

"One of the more interesting observations from [Arch85] was that it was
desirable to broadcast writes to other caches rather than to invalidate
them, if those other caches have the line in them."  This bench sweeps
sharing intensity and reports the crossover structure."""

from repro.analysis.compare import update_vs_invalidate_sweep
from repro.analysis.report import format_rows
from repro.analysis.compare import run_protocol_on_trace
from repro.workloads.patterns import migratory, producer_consumer


def test_sharing_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: update_vs_invalidate_sweep(
            sharing_levels=(0.05, 0.1, 0.2, 0.4, 0.6), references=3000
        ),
        rounds=1, iterations=1,
    )
    # Update wins once sharing is active, and its advantage widens.
    assert rows[-1]["winner"] == "update"
    gaps = [
        r["invalidate_ns_per_access"] - r["update_ns_per_access"]
        for r in rows
    ]
    assert gaps[-1] > gaps[0]
    # Invalidation's miss ratio degrades with sharing; update's does not.
    assert rows[-1]["invalidate_miss_ratio"] > rows[0]["invalidate_miss_ratio"]
    save_artifact(
        "e3_update_vs_invalidate",
        format_rows(rows, "E3: update vs invalidate across sharing levels "
                          "(4 CPUs, p_write=0.3, timed)"),
    )


def test_pattern_extremes(benchmark, save_artifact):
    """The two archetypes: producer/consumer (update heaven) and
    migratory (invalidate heaven -- updates are wasted on past users).

    These run in atomic (trace-order-preserving) mode: the patterns are
    *defined* by their cross-processor ordering (the line migrates visit
    by visit), which the timed runner's per-unit concurrent replay would
    destroy."""

    def run():
        rows = []
        for name, trace in (
            ("producer-consumer", producer_consumer(items=60, consumers=3)),
            ("migratory", migratory(handoffs=60, processors=4)),
        ):
            update = run_protocol_on_trace("moesi-update", trace,
                                           timed=False)
            invalidate = run_protocol_on_trace("moesi-invalidate", trace,
                                               timed=False)
            rows.append(
                {
                    "pattern": name,
                    "update_txns": update.bus.transactions,
                    "invalidate_txns": invalidate.bus.transactions,
                    "update_ns_per_access": round(
                        update.bus_ns_per_access, 1
                    ),
                    "invalidate_ns_per_access": round(
                        invalidate.bus_ns_per_access, 1
                    ),
                    "winner": "update"
                    if update.bus_ns_per_access
                    <= invalidate.bus_ns_per_access
                    else "invalidate",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_pattern = {r["pattern"]: r for r in rows}
    assert by_pattern["producer-consumer"]["winner"] == "update"
    # Migratory: each update is sent to caches that will not read the
    # line again before it is overwritten; invalidation does strictly
    # less bus work per visit (one invalidate, then silent M writes).
    assert by_pattern["migratory"]["winner"] == "invalidate"
    assert (
        by_pattern["migratory"]["invalidate_txns"]
        < by_pattern["migratory"]["update_txns"]
    )
    save_artifact(
        "e3b_pattern_extremes",
        format_rows(rows, "E3b: update vs invalidate on archetypal "
                          "sharing patterns"),
    )

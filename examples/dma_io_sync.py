#!/usr/bin/env python3
"""I/O and DMA on a coherent Futurebus: consistency commands at work.

Section 6's last open item: "Proper mechanisms must also be defined for
issuing commands across the bus to cause other caches to become
consistent with main memory."  This example shows both command flavours
around a DMA transfer, and the priority-arbitration effect on the I/O
board's bus latency.

Run:  python examples/dma_io_sync.py
"""

from repro import BoardSpec, System
from repro.bus.arbiter import FcfsArbiter, PriorityArbiter
from repro.ext.sync import ConsistencyCommander
from repro.system.arbitrated import arbitrated_run_from_trace
from repro.workloads import Op, ReferenceRecord, Trace


def consistency_commands_demo() -> None:
    system = System(
        [
            BoardSpec("cpu0", "moesi"),
            BoardSpec("cpu1", "berkeley"),
            BoardSpec("dma", "non-caching"),
        ]
    )
    commander = ConsistencyCommander(system.bus)

    print("CPUs dirty a 4-line buffer:")
    tokens = [system.write("cpu0", line * 32) for line in range(4)]
    print(f"  memory before sync: "
          f"{[system.memory.peek(line) for line in range(4)]}")

    commander.sync_range(0, 3)
    print(f"  memory after sync:  "
          f"{[system.memory.peek(line) for line in range(4)]}")
    print(f"  cpu0 still holds line 0: "
          f"{system.controllers['cpu0'].state_of(0)}")

    commander.flush_range(0, 3)
    print(f"  after flush, cpu0 line 0: "
          f"{system.controllers['cpu0'].state_of(0)} (purged)")

    for line, token in enumerate(tokens):
        assert system.read("dma", line * 32) == token
    assert not system.check_coherence()
    print("  DMA read the whole buffer straight from memory; "
          "coherence holds\n")


def priority_arbitration_demo() -> None:
    print("Priority arbitration: giving the I/O board the bus first")

    def run(arbiter):
        system = System(
            [
                BoardSpec("io", "non-caching"),
                BoardSpec("cpu0", "non-caching"),
                BoardSpec("cpu1", "non-caching"),
            ]
        )
        trace = Trace()
        for i in range(60):
            for unit in ("io", "cpu0", "cpu1"):
                trace.append(ReferenceRecord(unit, Op.READ, 0))
        run = arbitrated_run_from_trace(system, trace, arbiter=arbiter)
        run.run()
        return {
            unit: processor.stats.bus_wait_ns
            for unit, processor in run.processors.items()
        }

    fcfs = run(FcfsArbiter())
    prio = run(PriorityArbiter({"io": 1}))
    print(f"  FCFS      io wait: {fcfs['io']:>10.0f} ns   "
          f"cpu0 wait: {fcfs['cpu0']:>10.0f} ns")
    print(f"  priority  io wait: {prio['io']:>10.0f} ns   "
          f"cpu0 wait: {prio['cpu0']:>10.0f} ns")


def main() -> None:
    consistency_commands_demo()
    priority_arbitration_demo()


if __name__ == "__main__":
    main()

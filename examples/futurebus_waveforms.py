#!/usr/bin/env python3
"""Futurebus electrical behaviour: the wired-OR broadcast handshake.

Regenerates the paper's Figures 1 and 2 from the line/handshake models,
shows how the same machinery prices a real transaction mix, then
captures a live ping-pong run through the structured tracer and renders
the consistency lines (CA/IM/BC and the wired-OR CH/DI/SL/BS responses)
as a logic-analyzer-style waveform via :mod:`repro.obs`.

Run:  python examples/futurebus_waveforms.py
"""

from repro import Session
from repro.analysis import (
    figure1_broadcast_handshake,
    figure2_parallel_protocol,
)
from repro.bus import DEFAULT_TIMING, BusTiming
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals
from repro.obs.export import render_waveforms
from repro.workloads import ping_pong


def main() -> None:
    print(figure1_broadcast_handshake())
    print()
    print(figure2_parallel_protocol())
    print()

    timing: BusTiming = DEFAULT_TIMING
    print("Transaction pricing under the default timing model:")
    cases = [
        ("address-only invalidate (CA,IM)",
         BusOp.NONE, MasterSignals(ca=True, im=True), {}),
        ("line read from memory (CA,R)",
         BusOp.READ, MasterSignals(ca=True), {}),
        ("line read by intervention (CA,R + DI)",
         BusOp.READ, MasterSignals(ca=True), {"intervened": True}),
        ("word write past a WT cache (IM,W)",
         BusOp.WRITE, MasterSignals(im=True), {}),
        ("broadcast line write (CA,IM,BC,W)",
         BusOp.WRITE, MasterSignals(ca=True, im=True, bc=True), {}),
    ]
    for label, op, signals, kwargs in cases:
        cost = timing.transaction_ns(op, signals, **kwargs)
        print(f"  {label:<42} {cost:7.0f} ns")
    print(f"  {'one aborted attempt (BS)':<42} "
          f"{timing.abort_ns():7.0f} ns (plus the push and the retry)")
    print()

    # Now watch those lines on a live bus: two MOESI caches ping-pong a
    # shared line while the session's tracer records every transaction.
    session = Session(label="waveforms", trace=True)
    session.run_experiment(
        protocol="moesi",
        workload=ping_pong(rounds=4, processors=2),
    )
    print(render_waveforms(
        session.tracer.export(),
        "Consistency lines during a 2-CPU MOESI ping-pong "
        "(# = asserted/low)",
    ))


if __name__ == "__main__":
    main()

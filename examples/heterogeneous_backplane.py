#!/usr/bin/env python3
"""A realistic heterogeneous backplane, narrated step by step.

The paper's motivating scenario (section 1): boards from different
vendors -- a sophisticated copy-back cache, an ownership cache without E,
an update-based cache, a cheap write-through board, and a DMA engine with
no cache at all -- sharing one Futurebus and one memory image.

Run:  python examples/heterogeneous_backplane.py
"""

from repro import BoardSpec, System
from repro.core.validation import check_membership
from repro.protocols import make_protocol


def show(system: System, address: int, note: str) -> None:
    states = "  ".join(
        f"{unit}:{board.state_of(address // 32)}"
        for unit, board in system.controllers.items()
    )
    memory = system.memory.peek(address // 32)
    print(f"  {note:<52} [{states}  mem:{memory}]")


def main() -> None:
    print("Board certification (class membership, checked statically):")
    for name in ("moesi", "berkeley", "dragon", "write-through",
                 "non-caching"):
        print(" ", check_membership(make_protocol(name)).summary())
    print()

    system = System(
        [
            BoardSpec("vendor_a", "moesi"),
            BoardSpec("vendor_b", "berkeley"),
            BoardSpec("vendor_c", "dragon"),
            BoardSpec("vendor_d", "write-through"),
            BoardSpec("dma", "non-caching"),
        ],
        label="five-vendor backplane",
    )
    line = 0

    print("One cache line's life across five vendors:")
    system.write("vendor_a", line)
    show(system, line, "vendor_a writes (write miss -> ownership)")
    system.read("vendor_b", line)
    show(system, line, "vendor_b reads (owner intervenes, shares)")
    system.read("vendor_c", line)
    show(system, line, "vendor_c reads")
    system.write("vendor_c", line)
    show(system, line, "vendor_c writes (Dragon broadcasts the update)")
    system.read("vendor_d", line)
    show(system, line, "vendor_d (write-through) reads")
    system.write("vendor_d", line)
    show(system, line, "vendor_d writes through (broadcast)")
    system.read("dma", line)
    show(system, line, "DMA reads (uncached)")
    system.write("dma", line)
    show(system, line, "DMA writes (owner captures or memory takes it)")
    system.read("vendor_a", line)
    show(system, line, "vendor_a reads the DMA's data back")

    violations = system.check_coherence()
    print()
    print(f"final coherence check: {len(violations)} violations")
    assert not violations

    report = system.report()
    print(f"bus transactions: {report.bus.transactions}, "
          f"interventions: {report.bus.interventions}, "
          f"updates delivered: {report.updates_received}, "
          f"invalidations: {report.invalidations}")


if __name__ == "__main__":
    main()

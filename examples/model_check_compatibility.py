#!/usr/bin/env python3
"""The compatibility theorem, model-checked (paper section 3.4).

Explores every interleaving of local events and every permitted action
choice on small systems, for:

* mixes of MOESI-class members       -> all consistent (exhaustive);
* homogeneous BS-adapted protocols   -> consistent;
* naive foreign/class mixes          -> violations found (as the paper
  warns: those protocols need further definition before mixing);
* deliberately broken mutants        -> violations found (the checker
  has teeth).

Run:  python examples/model_check_compatibility.py
"""

from repro.analysis import format_rows
from repro.verify import (
    class_member_mixes,
    explore,
    homogeneous_foreign,
    incompatible_mixes,
    mutant_mixes,
    run_matrix,
)


def main() -> None:
    print("Exhaustive exploration of the FULL relaxation closure")
    print("(two caches, any permitted action at every step):")
    result = explore(["full-class", "full-class"])
    print(" ", result.summary())
    print()

    cases = (
        class_member_mixes()
        + homogeneous_foreign()
        + incompatible_mixes()
        + mutant_mixes()
    )
    rows = run_matrix(cases)
    print(
        format_rows(
            rows,
            "Verification matrix",
            columns=["mix", "expected", "observed", "ok", "states",
                     "transitions"],
        )
    )
    print()

    failures = [r for r in rows if not r["ok"]]
    print(f"{len(rows) - len(failures)}/{len(rows)} cases as the paper "
          "predicts")

    # Show one concrete counterexample narrative for the famous unsafe
    # mix: Write-Once (whose S means "consistent with memory") against a
    # MOESI owner.
    print()
    print("Example counterexample (write-once + moesi):")
    bad = explore(["write-once", "moesi"])
    semantic = [v for v in bad.violations if "memory-current" in v.error]
    print(" ", semantic[0] if semantic else bad.violations[0])


if __name__ == "__main__":
    main()

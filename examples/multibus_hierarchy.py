#!/usr/bin/env python3
"""Consistency across multiple buses (the paper's section-6 open problem).

Builds a two-level system -- two clusters of two caches, each cluster on
its own local Futurebus behind a bridge, both bridges on a global
Futurebus with main memory -- and walks a line through cross-cluster
sharing, then shows how cluster locality shields the global bus.

Run:  python examples/multibus_hierarchy.py
"""

import random

from repro.hierarchy import HierarchicalSystem


def show(h: HierarchicalSystem, line: int, note: str) -> None:
    leaves = "  ".join(
        f"{unit}:{ctl.state_of(line)}" for unit, ctl in h.controllers.items()
    )
    dirs = "  ".join(
        f"{name}:{bridge.directory_state(line)}"
        for name, bridge in h.bridges.items()
    )
    print(f"  {note:<46} leaves[{leaves}]  dirs[{dirs}]")


def main() -> None:
    h = HierarchicalSystem.grid(2, 2)
    print("Two clusters x two caches, one global bus:")
    print()

    h.write("c0.cpu0", 0)
    show(h, 0, "c0.cpu0 writes (cluster c0 owns globally)")
    h.read("c0.cpu1", 0)
    show(h, 0, "c0.cpu1 reads (stays inside cluster c0)")
    h.read("c1.cpu0", 0)
    show(h, 0, "c1.cpu0 reads (bridge c0 intervenes globally)")
    h.write("c1.cpu0", 0)
    show(h, 0, "c1.cpu0 writes (cluster c0 invalidated)")
    h.read("c0.cpu0", 0)
    show(h, 0, "c0.cpu0 reads it back")

    assert not h.check_coherence()
    print()
    traffic = h.traffic()
    print(f"global transactions: {traffic['global_transactions']}, "
          f"local transactions: {traffic['local_transactions']}")
    print()

    print("Locality sweep: how much the bridges shield the global bus")
    for locality in (0.0, 0.5, 0.9):
        system = HierarchicalSystem.grid(2, 2, check=False)
        rng = random.Random(2)
        all_units = list(system.controllers)
        for _ in range(2000):
            unit = rng.choice(all_units)
            cluster_index = 0 if system.cluster_of[unit] == "c0" else 1
            region = cluster_index if rng.random() < locality else 2
            address = (region * 6 + rng.randrange(6)) * 32
            if rng.random() < 0.35:
                system.write(unit, address)
            else:
                system.read(unit, address)
        assert not system.check_coherence()
        t = system.traffic()
        ratio = t["global_transactions"] / max(1, t["local_transactions"])
        print(f"  locality {locality:0.1f}: global/local transaction ratio "
              f"= {ratio:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Parallel kernels on the coherent Futurebus: spinlocks, stencil,
reduction.

The canonical coherence lessons, measured on the reproduction:

* a test-and-set lock turns every spin into a bus transfer; spinning on
  a read (test-and-test-and-set) keeps waiters in their caches;
* a stencil's halo exchange is nearest-neighbour traffic -- placement on
  a cluster hierarchy decides how much of it crosses the global bus;
* a combining-tree reduction hands dirty partials cache-to-cache, which
  ownership protocols do by intervention and Illinois-style protocols by
  abort-push through memory.

Run:  python examples/parallel_kernels.py
"""

from repro.analysis import format_rows, run_protocol_on_trace
from repro.workloads import reduction_trace, spinlock_trace, stencil_trace


def spinlocks() -> None:
    rows = []
    for kind in ("tas", "ttas"):
        for protocol in ("moesi-invalidate", "moesi-update"):
            trace = spinlock_trace(kind=kind, processors=4,
                                   acquisitions_per_processor=6)
            report = run_protocol_on_trace(protocol, trace, timed=False)
            rows.append(
                {
                    "lock": kind,
                    "protocol": protocol,
                    "bus_txns": report.bus.transactions,
                    "txns_per_handoff": round(
                        report.bus.transactions / 24, 1
                    ),
                }
            )
    print(format_rows(rows, "Spinlock bus traffic (4 CPUs, 24 handoffs)"))
    print()


def stencil() -> None:
    trace = stencil_trace(processors=4, iterations=8)
    rows = []
    for protocol in ("moesi", "moesi-invalidate", "write-through"):
        report = run_protocol_on_trace(protocol, trace, timed=False)
        row = report.row()
        rows.append(row)
    print(format_rows(rows, "Stencil (4 CPUs, 8 iterations)"))
    print()


def reduction() -> None:
    trace = reduction_trace(processors=8, elements_per_processor=8)
    rows = []
    for protocol in ("moesi", "berkeley", "illinois"):
        report = run_protocol_on_trace(protocol, trace, timed=False)
        rows.append(
            {
                "protocol": protocol,
                "bus_txns": report.bus.transactions,
                "interventions": report.bus.interventions,
                "aborts": report.bus.retries,
            }
        )
    print(format_rows(rows, "Combining-tree reduction (8 CPUs)"))


def main() -> None:
    spinlocks()
    stencil()
    reduction()


if __name__ == "__main__":
    main()

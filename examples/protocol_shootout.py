#!/usr/bin/env python3
"""Protocol shootout: the [Arch85]-style comparison behind the paper's
"preferred" choices (section 5.2), through the :mod:`repro.api` facade.

Runs every implemented protocol over the same synthetic shared-memory
workload on the timed Futurebus simulator and prints the comparison
table, then the update-vs-invalidate and copy-back-vs-write-through
sweeps.  The session traces the comparison: each protocol gets its own
stream in the exported timeline.

Run:  python examples/protocol_shootout.py
"""

from repro import Session
from repro.analysis import (
    format_rows,
    update_vs_invalidate_sweep,
    write_through_vs_copy_back,
)


def main() -> None:
    session = Session(label="shootout", trace=True)
    print(
        format_rows(
            session.shootout(references=4000),
            "Protocol comparison -- 4 CPUs, p_shared=0.3, p_write=0.3, "
            "4000 references, timed Futurebus run",
        )
    )
    print()
    print(
        format_rows(
            update_vs_invalidate_sweep(),
            "Update vs invalidate across sharing intensity "
            "(the section 5.2 preferred-choice evidence)",
        )
    )
    print()
    print(
        format_rows(
            write_through_vs_copy_back(),
            "Write-through vs copy-back bus traffic (why the class exists)",
        )
    )
    path = session.write_trace("shootout.trace.json")
    print(f"\nper-protocol trace written to {path}")


if __name__ == "__main__":
    main()

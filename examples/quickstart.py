#!/usr/bin/env python3
"""Quickstart: run a small mixed-protocol multiprocessor through the
:mod:`repro.api` facade, inspect coherence and traffic, and export a
structured trace viewable in Perfetto.

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.workloads import ping_pong


def main() -> None:
    # One session owns the trace; every run it performs lands in the
    # same timeline.
    session = Session(label="quickstart", trace=True)

    # Three boards on one Futurebus, each running a *different* protocol
    # from the MOESI class -- the paper's headline capability.  Two
    # processors ping-pong a shared line; the third watches.
    result = session.run_experiment(
        protocols=["moesi", "dragon", "write-through"],
        workload=ping_pong(rounds=50, processors=3),
        label="quickstart",
    )

    # Every read was checked against the last write at run time; the
    # result carries a final whole-memory invariant sweep.
    print(f"coherence violations: {len(result.violations)}")
    assert result.ok

    report = result.report
    print(f"accesses:            {report.accesses}")
    print(f"miss ratio:          {report.miss_ratio:.3f}")
    print(f"bus transactions:    {report.bus.transactions}")
    print(f"per access:          {report.bus_transactions_per_access:.3f}")
    print(f"invalidations:       {report.invalidations}")
    print(f"updates received:    {report.updates_received}")
    print(f"interventions:       {report.bus.interventions}")

    # The metrics snapshot has the per-state hit breakdown and more.
    for name in sorted(result.metrics):
        if name.startswith("cache.hits_in_state."):
            print(f"{name}: {result.metrics[name]}")

    # Peek at the final per-board state of the contended line.
    for unit_id, board in result.system.controllers.items():
        print(f"{unit_id}: line 0 in state {board.state_of(0)}")

    # Export the structured trace (bus signals + MOESI transitions) in
    # Chrome trace-event format -- open it at https://ui.perfetto.dev.
    path = result.write_trace("quickstart.trace.json")
    print(f"trace written to {path} ({len(result.trace)} events)")


if __name__ == "__main__":
    main()

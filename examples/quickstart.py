#!/usr/bin/env python3
"""Quickstart: build a small mixed-protocol multiprocessor, run a
workload, and inspect coherence and traffic.

Run:  python examples/quickstart.py
"""

from repro import BoardSpec, System
from repro.workloads import ping_pong


def main() -> None:
    # Three boards on one Futurebus, each running a *different* protocol
    # from the MOESI class -- the paper's headline capability.
    system = System(
        [
            BoardSpec("cpu0", "moesi"),          # full five-state copy-back
            BoardSpec("cpu1", "dragon"),         # update-based (Xerox PARC)
            BoardSpec("cpu2", "write-through"),  # simple two-state board
        ],
        label="quickstart",
    )

    # Two processors ping-pong a shared line; the third watches.
    system.run_trace(ping_pong(rounds=50, processors=3))

    # Every read was checked against the last write at run time; a final
    # sweep re-checks the MOESI invariants on every line.
    violations = system.check_coherence()
    print(f"coherence violations: {len(violations)}")
    assert not violations

    report = system.report()
    print(f"accesses:            {report.accesses}")
    print(f"miss ratio:          {report.miss_ratio:.3f}")
    print(f"bus transactions:    {report.bus.transactions}")
    print(f"per access:          {report.bus_transactions_per_access:.3f}")
    print(f"invalidations:       {report.invalidations}")
    print(f"updates received:    {report.updates_received}")
    print(f"interventions:       {report.bus.interventions}")

    # Peek at the final per-board state of the contended line.
    for unit_id, board in system.controllers.items():
        print(f"{unit_id}: line 0 in state {board.state_of(0)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and diff them against
the published versions -- the one-stop reproduction script.

Run:  python examples/regenerate_paper.py            # summary
      python examples/regenerate_paper.py --full     # print everything
"""

import sys

from repro.analysis import (
    diff_all_tables,
    figure1_broadcast_handshake,
    figure2_parallel_protocol,
    figure3_characteristics,
    figure4_state_pairs,
    moesi_local_cells,
    moesi_snoop_cells,
    protocol_cells,
    render_cells,
)
from repro.protocols import make_protocol


def main() -> None:
    full = "--full" in sys.argv

    print("=== Tables 1-7: regenerated from the protocol engines ===")
    diffs = diff_all_tables()
    for diff in diffs:
        print(" ", diff.summary())
        for mismatch in diff.mismatches:
            print("    !!", mismatch)
    matched = sum(1 for d in diffs if d.matches)
    print(f"  -> {matched}/{len(diffs)} tables match the paper exactly")
    print()

    if full:
        print(render_cells(moesi_local_cells(),
                           "Table 1: MOESI -- local events"))
        print()
        print(render_cells(moesi_snoop_cells(),
                           "Table 2: MOESI -- bus events"))
        print()
        for number, name, columns in (
            (3, "berkeley", ("Read", "Write", 5, 6)),
            (4, "dragon", ("Read", "Write", 5, 8)),
            (5, "write-once", ("Read", "Write", 5, 6)),
            (6, "illinois", ("Read", "Write", 5, 6)),
            (7, "firefly", ("Read", "Write", 5, 8)),
        ):
            protocol = make_protocol(name)
            print(render_cells(protocol_cells(protocol, columns),
                               f"Table {number}: {protocol.name}"))
            print()

    print("=== Figures 1-4: regenerated from the models ===")
    print()
    print(figure1_broadcast_handshake())
    print()
    print(figure2_parallel_protocol())
    print()
    print(figure3_characteristics())
    print()
    print(figure4_state_pairs())


if __name__ == "__main__":
    main()

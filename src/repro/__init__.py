"""repro: a full reproduction of Sweazey & Smith, "A Class of Compatible
Cache Consistency Protocols and their Support by the IEEE Futurebus"
(ISCA 1986) -- the paper that defined MOESI.

Quickstart (the :mod:`repro.api` facade)::

    from repro import Session

    session = Session(trace=True)
    result = session.run_experiment(protocol="illinois", references=500)
    assert result.ok
    result.write_trace("out.trace.json")   # Chrome/Perfetto format

or, building the system by hand::

    from repro import System, BoardSpec
    from repro.workloads import ping_pong

    system = System([BoardSpec("cpu0", "moesi"),
                     BoardSpec("cpu1", "dragon"),
                     BoardSpec("cpu2", "write-through")])
    system.run_trace(ping_pong(rounds=100, processors=3))
    assert not system.check_coherence()
    print(system.report().row())

Packages:

* :mod:`repro.core` -- MOESI states, signals, events, the class tables
  (Tables 1/2), policies, validation, invariants;
* :mod:`repro.protocols` -- MOESI, Berkeley, Dragon, Write-Once, Illinois,
  Firefly, write-through, non-caching;
* :mod:`repro.bus` -- the Futurebus: wired-OR lines, broadcast handshake,
  timing, transactions, arbitration;
* :mod:`repro.cache` -- set-associative and sector caches, replacement,
  the snooping controller;
* :mod:`repro.memory` -- main memory (the default owner);
* :mod:`repro.system` -- system builder, discrete-event runner, stats;
* :mod:`repro.workloads` -- traces, synthetic generator, sharing patterns;
* :mod:`repro.verify` -- the exhaustive model checker behind the
  compatibility theorem;
* :mod:`repro.perf` -- the parallel execution layer (process-pool
  fan-out of the verification matrix and the DES sweeps, the
  ``repro bench`` suite);
* :mod:`repro.analysis` -- regenerate/diff the paper's tables and figures,
  performance comparisons;
* :mod:`repro.ext` -- section 5/6 extensions (Puzak refinement, per-page
  protocols, line crossers, line-size mismatch demo, sync/flush
  commands);
* :mod:`repro.hierarchy` -- multi-bus cluster bridges (the section-6
  open problem, built; they compose to arbitrary depth);
* :mod:`repro.obs` -- observability: structured tracing, the metrics
  registry, Chrome-trace/JSONL exporters, profiling;
* :mod:`repro.api` -- the unified facade: the :func:`plan` /
  :func:`execute` verbs over frozen :mod:`repro.specs` values, plus
  :class:`Session` and the legacy wrappers with typed results;
* :mod:`repro.serve` -- the long-lived asyncio service tier multiplexing
  spec executions onto the warm pool with content-hash memoization.
"""

from repro.api import (
    ExperimentResult,
    FuzzResult,
    Session,
    VerifyResult,
    batch_sweep,
    execute,
    explore,
    fuzz_campaign,
    plan,
    run_experiment,
)
from repro.specs import (
    BatchSpec,
    ExperimentSpec,
    FuzzSpec,
    GeometrySpec,
    ShootoutSpec,
    VerifySpec,
    WorkloadSpec,
)
from repro.core.states import LineState
from repro.hierarchy.system import ClusterSpec, HierarchicalSystem
from repro.core.validation import check_membership
from repro.protocols.registry import make_protocol, protocol_names
from repro.system.system import BoardSpec, CoherenceError, System

__version__ = "1.1.0"

__all__ = [
    "LineState",
    "ClusterSpec",
    "HierarchicalSystem",
    "check_membership",
    "make_protocol",
    "protocol_names",
    "BoardSpec",
    "CoherenceError",
    "System",
    "Session",
    "ExperimentResult",
    "VerifyResult",
    "FuzzResult",
    "plan",
    "execute",
    "run_experiment",
    "explore",
    "fuzz_campaign",
    "batch_sweep",
    "ExperimentSpec",
    "VerifySpec",
    "FuzzSpec",
    "BatchSpec",
    "ShootoutSpec",
    "GeometrySpec",
    "WorkloadSpec",
    "__version__",
]

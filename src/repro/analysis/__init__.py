"""Analysis layer: regenerate and diff the paper's tables and figures, run
the Arch85-style performance comparisons, and format reports."""

from repro.analysis.ablations import (
    geometry_sweep,
    line_size_sweep,
    replacement_policy_sweep,
)
from repro.analysis.diagram import (
    build_transition_graph,
    reachable_states,
    render_adjacency,
    to_dot,
)
from repro.analysis.compare import (
    DEFAULT_PROTOCOLS,
    broadcast_penalty_sweep,
    heterogeneous_mix_sweep,
    memory_latency_sweep,
    protocol_comparison,
    run_protocol_on_trace,
    update_vs_invalidate_sweep,
    write_through_vs_copy_back,
)
from repro.analysis.figures import (
    figure1_broadcast_handshake,
    figure2_parallel_protocol,
    figure3_characteristics,
    figure3_rows,
    figure4_groups,
    figure4_state_pairs,
    render_waveforms,
)
from repro.analysis.report import format_rows
from repro.analysis.tracelog import format_bus_trace, trace_rows
from repro.analysis.tables import (
    CellDiff,
    TableDiff,
    diff_all_tables,
    diff_protocol_table,
    diff_table1,
    diff_table2,
    moesi_local_cells,
    moesi_snoop_cells,
    protocol_cells,
    render_cells,
)

__all__ = [
    "geometry_sweep",
    "line_size_sweep",
    "replacement_policy_sweep",
    "build_transition_graph",
    "reachable_states",
    "render_adjacency",
    "to_dot",
    "DEFAULT_PROTOCOLS",
    "broadcast_penalty_sweep",
    "heterogeneous_mix_sweep",
    "memory_latency_sweep",
    "protocol_comparison",
    "run_protocol_on_trace",
    "update_vs_invalidate_sweep",
    "write_through_vs_copy_back",
    "figure1_broadcast_handshake",
    "figure2_parallel_protocol",
    "figure3_characteristics",
    "figure3_rows",
    "figure4_groups",
    "figure4_state_pairs",
    "render_waveforms",
    "format_rows",
    "format_bus_trace",
    "trace_rows",
    "CellDiff",
    "TableDiff",
    "diff_all_tables",
    "diff_protocol_table",
    "diff_table1",
    "diff_table2",
    "moesi_local_cells",
    "moesi_snoop_cells",
    "protocol_cells",
    "render_cells",
]

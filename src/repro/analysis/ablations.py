"""Design-choice ablations: line size, replacement policy, geometry.

These answer the "continuing work" questions of sections 5.1 and 6 with
the methodology the paper points at:

* :func:`line_size_sweep` -- the P896.2 working group must "recommend a
  [line] size"; the sweep exposes the trade the recommendation balances:
  spatial locality (miss ratio falls with line size) against transfer
  cost and false sharing (bus occupancy eventually rises);
* :func:`replacement_policy_sweep` -- LRU vs FIFO vs random under a
  workload with reuse;
* :func:`geometry_sweep` -- associativity vs sets at fixed capacity
  (conflict misses).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bus.timing import BusTiming
from repro.system.runner import timed_run_from_trace
from repro.system.system import BoardSpec, System
from repro.workloads.spatial import SpatialConfig, SpatialWorkload
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Trace

__all__ = [
    "line_size_sweep",
    "replacement_policy_sweep",
    "geometry_sweep",
]


def _run(
    trace: Trace,
    *,
    protocol: str = "moesi",
    label: str,
    timing: Optional[BusTiming] = None,
    **board_kwargs,
) -> System:
    boards = [
        BoardSpec(unit_id=unit, protocol=protocol, **board_kwargs)
        for unit in trace.units()
    ]
    system = System(boards, timing=timing, check=False, label=label)
    timed_run_from_trace(system, trace).run()
    return system


def line_size_sweep(
    line_sizes: Sequence[int] = (16, 32, 64, 128, 256),
    references: int = 6000,
    seed: int = 51,
    capacity_bytes: int = 4096,
    config: Optional[SpatialConfig] = None,
) -> list[dict]:
    """Line-size selection: miss ratio vs bus cost at fixed cache capacity.

    The byte-granular spatial workload makes the trade visible; the cache
    capacity is held constant, so larger lines mean fewer sets.
    """
    config = config or SpatialConfig()
    trace = SpatialWorkload(config, seed=seed).trace(references)
    rows = []
    for line_size in line_sizes:
        num_sets = max(1, capacity_bytes // (2 * line_size))
        # num_sets must be a power of two for the cache geometry.
        while num_sets & (num_sets - 1):
            num_sets -= 1
        # A line fill moves line_size bytes = line_size/4 data beats: the
        # transfer-cost side of the [Smit85c] trade-off.
        timing = BusTiming(words_per_line=max(1, line_size // 4))
        system = _run(
            trace,
            label=f"line={line_size}",
            timing=timing,
            line_size=line_size,
            num_sets=num_sets,
            associativity=2,
        )
        report = system.report()
        rows.append(
            {
                "line_size": line_size,
                "num_sets": num_sets,
                "miss_ratio": round(report.miss_ratio, 4),
                "bus_txns": report.bus.transactions,
                "bus_ns_per_access": round(report.bus_ns_per_access, 1),
                "invalidations": report.invalidations,
                "updates": report.updates_received,
            }
        )
    return rows


def replacement_policy_sweep(
    policies: Sequence[str] = ("lru", "fifo", "random"),
    references: int = 5000,
    seed: int = 53,
) -> list[dict]:
    """LRU vs FIFO vs random, under a locality-rich working set slightly
    larger than the cache (the regime where policy matters)."""
    config = SyntheticConfig(
        processors=2,
        shared_blocks=8,
        private_blocks=40,
        p_shared=0.15,
        p_write=0.25,
        locality=0.7,
    )
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    rows = []
    for policy in policies:
        system = _run(
            trace,
            label=f"replacement={policy}",
            num_sets=4,
            associativity=4,
            replacement=policy,
        )
        report = system.report()
        rows.append(
            {
                "replacement": policy,
                "miss_ratio": round(report.miss_ratio, 4),
                "bus_txns": report.bus.transactions,
                "write_backs": report.write_backs,
            }
        )
    return rows


def geometry_sweep(
    shapes: Sequence[tuple[int, int]] = ((64, 1), (32, 2), (16, 4), (8, 8)),
    references: int = 5000,
    seed: int = 57,
) -> list[dict]:
    """Associativity vs sets at constant capacity: conflict misses."""
    config = SyntheticConfig(
        processors=2,
        shared_blocks=8,
        private_blocks=48,
        p_shared=0.15,
        p_write=0.25,
        locality=0.5,
    )
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    rows = []
    for num_sets, associativity in shapes:
        system = _run(
            trace,
            label=f"{num_sets}x{associativity}",
            num_sets=num_sets,
            associativity=associativity,
        )
        report = system.report()
        rows.append(
            {
                "num_sets": num_sets,
                "associativity": associativity,
                "capacity_lines": num_sets * associativity,
                "miss_ratio": round(report.miss_ratio, 4),
                "bus_txns": report.bus.transactions,
            }
        )
    return rows

"""Protocol performance comparison -- the [Arch85] substitute.

The paper's preferred-choice recommendations (section 5.2) rest on the
Archibald & Baer simulation study, which compared the same protocol set
under a probabilistic program model.  These harnesses rerun that style of
comparison on our simulator and produce the rows the benchmarks print:

* :func:`protocol_comparison` -- every protocol, one workload (E2);
* :func:`update_vs_invalidate_sweep` -- the section 5.2 headline: the
  broadcast-update vs invalidate choice as sharing intensity varies (E3);
* :func:`write_through_vs_copy_back` -- bus traffic of the simplest class
  members vs the ownership protocols;
* :func:`heterogeneous_mix_sweep` -- board-mix effects (E8);
* :func:`broadcast_penalty_sweep` -- sensitivity of the preferred choice
  to the bus's broadcast surcharge (E5; "the preferred protocol is
  sensitive to the implementation of the bus");
* :func:`arbitration_discipline_sweep` -- the Nikolov & Lerato
  (arXiv:1004.3560) comparative study of bus-arbiter service
  disciplines (FCFS vs fixed-priority vs round-robin), on our DES.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bus.timing import BusTiming
from repro.system.runner import timed_run_from_trace
from repro.system.stats import SystemReport
from repro.system.system import BoardSpec, System
from repro.workloads.patterns import migratory, ping_pong, producer_consumer
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Trace

__all__ = [
    "DEFAULT_PROTOCOLS",
    "DEFAULT_DISCIPLINES",
    "HETEROGENEOUS_MIXES",
    "arbitration_discipline_row",
    "arbitration_discipline_sweep",
    "run_protocol_on_trace",
    "comparison_row",
    "comparison_row_traced",
    "update_vs_invalidate_row",
    "heterogeneous_row",
    "protocol_comparison",
    "update_vs_invalidate_sweep",
    "write_through_vs_copy_back",
    "heterogeneous_mix_sweep",
    "broadcast_penalty_sweep",
    "memory_latency_sweep",
]

#: The protocol set of the paper's section 4 plus the class under its two
#: pure policies.
DEFAULT_PROTOCOLS = (
    "moesi",
    "moesi-invalidate",
    "moesi-update",
    "berkeley",
    "dragon",
    "write-once",
    "illinois",
    "firefly",
    # Out-of-class negative fixture: rejected by the membership
    # validator, but a perfectly usable comparison baseline.
    "mesif",
    "write-through",
)


def run_protocol_on_trace(
    protocol: str,
    trace: Trace,
    n_boards: Optional[int] = None,
    timing: Optional[BusTiming] = None,
    timed: bool = True,
    check: bool = False,
    tracer=None,
    **board_kwargs,
) -> SystemReport:
    """Run one homogeneous system over a trace; return its report.

    ``timed=True`` uses the event-driven runner (contention modeled);
    otherwise references execute atomically in trace order.  A
    :class:`repro.obs.trace.Tracer` captures the structured trace (and
    the report then embeds its export).
    """
    units = trace.units()
    n = n_boards if n_boards is not None else len(units)
    boards = [
        BoardSpec(unit_id=unit, protocol=protocol, **board_kwargs)
        for unit in units[:n]
    ]
    system = System(boards, timing=timing, check=check, label=protocol)
    if tracer is not None:
        system.attach_tracer(tracer)
    if timed:
        report = timed_run_from_trace(system, trace).run()
    else:
        system.run_trace(trace)
        report = system.report()
    return report


def comparison_row(protocol: str, trace: Trace, timed: bool = True) -> dict:
    """One E2 row: run ``protocol`` over ``trace``; module-level so worker
    processes can execute it (shared by serial and parallel sweeps)."""
    report = run_protocol_on_trace(protocol, trace, timed=timed)
    row = report.row()
    if report.elapsed_ns:
        row["elapsed_us"] = round(report.elapsed_ns / 1000.0, 1)
    return row


def comparison_row_traced(
    protocol: str, trace: Trace, timed: bool = True
) -> dict:
    """Like :func:`comparison_row`, but run under a per-protocol child
    :class:`~repro.obs.trace.Tracer` and ship the exported event stream
    alongside the row.  Module-level and fully deterministic, so serial
    and pooled shootouts absorb identical streams."""
    from repro.obs.trace import Tracer

    tracer = Tracer(stream=protocol)
    report = run_protocol_on_trace(protocol, trace, timed=timed, tracer=tracer)
    row = report.row()
    if report.elapsed_ns:
        row["elapsed_us"] = round(report.elapsed_ns / 1000.0, 1)
    return {"row": row, "events": tracer.export()}


def protocol_comparison(
    trace: Optional[Trace] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    references: int = 4000,
    seed: int = 7,
    timed: bool = True,
    workers: Optional[int] = None,
    tracer=None,
    profiler=None,
) -> list[dict]:
    """E2: all protocols on one synthetic workload; one row each.

    With ``workers`` > 1 the per-protocol runs fan out across a process
    pool (same rows, same order).  With a ``tracer``, each protocol runs
    under its own stream and the streams are absorbed in protocol order
    -- byte-identical whether the rows came from the pool or not.
    """
    recipe = None
    if trace is None:
        config = SyntheticConfig(processors=4, p_shared=0.3, p_write=0.3)
        trace = SyntheticWorkload(config, seed=seed).trace(references)
        if workers is not None and workers > 1:
            # The pooled sweep regenerates the trace in the workers from
            # this compact recipe instead of unpickling it per task.
            from repro.perf.sweeps import synthetic_trace_recipe

            recipe = synthetic_trace_recipe(config, seed, references)
    if tracer is not None:
        if workers is not None and workers > 1:
            from repro.perf.sweeps import protocol_comparison_parallel

            payloads = protocol_comparison_parallel(
                trace, protocols=protocols, timed=timed, workers=workers,
                traced=True, profiler=profiler, recipe=recipe,
            )
        else:
            payloads = [
                comparison_row_traced(protocol, trace, timed)
                for protocol in protocols
            ]
        rows = []
        for payload in payloads:
            tracer.absorb(payload["events"])
            rows.append(payload["row"])
        return rows
    if workers is not None and workers > 1:
        from repro.perf.sweeps import protocol_comparison_parallel

        return protocol_comparison_parallel(
            trace, protocols=protocols, timed=timed, workers=workers,
            profiler=profiler, recipe=recipe,
        )
    return [comparison_row(protocol, trace, timed) for protocol in protocols]


def update_vs_invalidate_row(
    p_shared: float,
    references: int = 3000,
    seed: int = 11,
    processors: int = 4,
) -> dict:
    """One E3 row: both policies at one sharing level.  The trace is
    regenerated from (config, seed), so workers reproduce the serial
    sweep's workload exactly."""
    config = SyntheticConfig(
        processors=processors, p_shared=p_shared, p_write=0.3
    )
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    update = run_protocol_on_trace("moesi-update", trace)
    invalidate = run_protocol_on_trace("moesi-invalidate", trace)
    return {
        "p_shared": p_shared,
        "update_ns_per_access": round(update.bus_ns_per_access, 1),
        "invalidate_ns_per_access": round(
            invalidate.bus_ns_per_access, 1
        ),
        "update_miss_ratio": round(update.miss_ratio, 4),
        "invalidate_miss_ratio": round(invalidate.miss_ratio, 4),
        "winner": (
            "update"
            if update.bus_ns_per_access <= invalidate.bus_ns_per_access
            else "invalidate"
        ),
    }


def update_vs_invalidate_sweep(
    sharing_levels: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6),
    references: int = 3000,
    seed: int = 11,
    processors: int = 4,
    workers: Optional[int] = None,
) -> list[dict]:
    """E3: broadcast-update vs invalidate as sharing intensity grows.

    [Arch85]'s observation, which the paper adopts as the preferred
    choice: for actively shared data it is better to broadcast writes than
    to invalidate.  Each row reports the bus cost of both policies at one
    sharing level.  ``workers`` > 1 fans the levels out across processes.
    """
    if workers is not None and workers > 1:
        from repro.perf.sweeps import update_vs_invalidate_parallel

        return update_vs_invalidate_parallel(
            sharing_levels,
            references=references,
            seed=seed,
            processors=processors,
            workers=workers,
        )
    return [
        update_vs_invalidate_row(p_shared, references, seed, processors)
        for p_shared in sharing_levels
    ]


def write_through_vs_copy_back(
    write_fractions: Sequence[float] = (0.1, 0.3, 0.5),
    references: int = 3000,
    seed: int = 13,
) -> list[dict]:
    """Copy-back's raison d'etre (section 3.1): bus traffic vs
    write-through as the write fraction varies, on private data."""
    rows = []
    for p_write in write_fractions:
        config = SyntheticConfig(
            processors=4, p_shared=0.05, p_write=p_write
        )
        trace = SyntheticWorkload(config, seed=seed).trace(references)
        copy_back = run_protocol_on_trace("moesi", trace)
        write_through = run_protocol_on_trace("write-through", trace)
        rows.append(
            {
                "p_write": p_write,
                "copy_back_txns_per_access": round(
                    copy_back.bus_transactions_per_access, 3
                ),
                "write_through_txns_per_access": round(
                    write_through.bus_transactions_per_access, 3
                ),
                "traffic_ratio": round(
                    write_through.bus.transactions
                    / max(1, copy_back.bus.transactions),
                    2,
                ),
            }
        )
    return rows


#: The E8 board mixes, fixed workload.
HETEROGENEOUS_MIXES: dict[str, tuple[str, ...]] = {
    "4x copy-back (MOESI)": ("moesi",) * 4,
    "3x MOESI + 1x write-through": ("moesi",) * 3 + ("write-through",),
    "2x MOESI + 2x write-through": ("moesi",) * 2 + ("write-through",) * 2,
    "3x MOESI + 1x non-caching": ("moesi",) * 3 + ("non-caching",),
    "MOESI+Berkeley+Dragon+WT": (
        "moesi", "berkeley", "dragon", "write-through",
    ),
    "4x write-through": ("write-through",) * 4,
}


def heterogeneous_row(
    label: str, protocols: Sequence[str], trace: Trace
) -> dict:
    """One E8 row: the given board mix over ``trace``."""
    boards = [
        BoardSpec(unit_id=unit, protocol=protocol)
        for unit, protocol in zip(trace.units(), protocols)
    ]
    system = System(boards, check=False, label=label)
    report = timed_run_from_trace(system, trace).run()
    row = report.row()
    row["elapsed_us"] = round(report.elapsed_ns / 1000.0, 1)
    return row


def heterogeneous_mix_sweep(
    references: int = 3000,
    seed: int = 17,
    workers: Optional[int] = None,
) -> list[dict]:
    """E8: keep the workload fixed, vary the board mix."""
    config = SyntheticConfig(processors=4, p_shared=0.25, p_write=0.3)
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    if workers is not None and workers > 1:
        from repro.perf.sweeps import (
            heterogeneous_parallel,
            synthetic_trace_recipe,
        )

        return heterogeneous_parallel(
            trace,
            workers=workers,
            recipe=synthetic_trace_recipe(config, seed, references),
        )
    return [
        heterogeneous_row(label, protocols, trace)
        for label, protocols in HETEROGENEOUS_MIXES.items()
    ]


def broadcast_penalty_sweep(
    surcharges: Sequence[float] = (0.0, 25.0, 100.0, 300.0),
    references: int = 2500,
    seed: int = 19,
) -> list[dict]:
    """E5: how the wired-OR broadcast surcharge shifts the
    update-vs-invalidate preference."""
    config = SyntheticConfig(processors=4, p_shared=0.35, p_write=0.35)
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    rows = []
    for surcharge in surcharges:
        timing = BusTiming(broadcast_surcharge_ns=surcharge)
        update = run_protocol_on_trace("moesi-update", trace, timing=timing)
        invalidate = run_protocol_on_trace(
            "moesi-invalidate", trace, timing=timing
        )
        rows.append(
            {
                "broadcast_surcharge_ns": surcharge,
                "update_ns_per_access": round(update.bus_ns_per_access, 1),
                "invalidate_ns_per_access": round(
                    invalidate.bus_ns_per_access, 1
                ),
                "winner": (
                    "update"
                    if update.bus_ns_per_access
                    <= invalidate.bus_ns_per_access
                    else "invalidate"
                ),
            }
        )
    return rows


#: The service disciplines the Nikolov & Lerato sweep compares.  The
#: priority entry pins an explicit table (cpu0 is the favored "I/O slot"
#: board of the backplane tradition; everyone else shares the default).
DEFAULT_DISCIPLINES = ("fcfs", "priority:cpu0=1", "round-robin")


def arbitration_discipline_row(
    discipline: str, trace: Trace, protocol: str = "moesi"
) -> dict:
    """One discipline row: run ``trace`` under an arbitrated bus and
    report per-master waiting behaviour.

    The row carries the study's comparison quantities: total elapsed
    time, mean and worst per-master bus-wait, and the fairness spread
    (worst wait / best wait among masters that waited at all) -- FCFS
    and round-robin keep the spread small, fixed priority trades it for
    a short wait on the favored master.
    """
    from repro.system.arbitrated import arbitrated_run_from_trace

    units = trace.units()
    boards = [BoardSpec(unit_id=unit, protocol=protocol) for unit in units]
    system = System(boards, check=False, label=f"arb:{discipline}")
    run = arbitrated_run_from_trace(system, trace, arbiter=discipline)
    report = run.run()
    waits = {
        unit: run.processors[unit].stats.bus_wait_ns for unit in units
    }
    positive = [w for w in waits.values() if w > 0] or [0.0]
    mean_wait = sum(waits.values()) / len(waits)
    row = {
        "discipline": discipline,
        "elapsed_us": round(report.elapsed_ns / 1000.0, 1),
        "mean_wait_us": round(mean_wait / 1000.0, 1),
        "max_wait_us": round(max(waits.values()) / 1000.0, 1),
        "wait_spread": round(max(positive) / max(min(positive), 1e-9), 2),
        "per_unit_wait_us": {
            unit: round(wait / 1000.0, 1) for unit, wait in waits.items()
        },
    }
    return row


def arbitration_discipline_sweep(
    disciplines: Sequence[str] = DEFAULT_DISCIPLINES,
    protocol: str = "moesi",
    references: int = 2000,
    seed: int = 23,
    processors: int = 4,
    p_shared: float = 0.4,
) -> list[dict]:
    """The Nikolov & Lerato comparative study on our simulator: the same
    workload under each bus service discipline, one row per discipline.

    All disciplines replay the identical trace, so differences are pure
    arbitration effects: who waits, for how long, and how evenly.
    """
    config = SyntheticConfig(
        processors=processors, p_shared=p_shared, p_write=0.4
    )
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    return [
        arbitration_discipline_row(discipline, trace, protocol=protocol)
        for discipline in disciplines
    ]


def memory_latency_sweep(
    latencies: Sequence[float] = (100.0, 200.0, 400.0, 800.0),
    references: int = 2500,
    seed: int = 67,
) -> list[dict]:
    """Section 5.2's other sensitivity: "changes in their relative
    performance can change the cost of various bus operations (e.g.
    memory read, intervenient cache read)".

    As main memory slows relative to caches, intervention-capable
    ownership protocols (the MOESI class) pull further ahead of the
    BS-adapted protocols (Illinois), whose every dirty handoff goes
    through memory twice (push + refetch).
    """
    config = SyntheticConfig(processors=4, p_shared=0.35, p_write=0.4)
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    rows = []
    for latency in latencies:
        timing = BusTiming(memory_latency_ns=latency)
        moesi = run_protocol_on_trace("moesi", trace, timing=timing)
        illinois = run_protocol_on_trace("illinois", trace, timing=timing)
        rows.append(
            {
                "memory_latency_ns": latency,
                "moesi_ns_per_access": round(moesi.bus_ns_per_access, 1),
                "illinois_ns_per_access": round(
                    illinois.bus_ns_per_access, 1
                ),
                "illinois_penalty": round(
                    illinois.bus_ns_per_access / moesi.bus_ns_per_access, 2
                ),
            }
        )
    return rows

"""Protocol state diagrams: build the transition digraph of any protocol.

The paper presents protocols as tables; most later treatments draw them
as state diagrams.  This module derives the diagram *from the
implementation* (the same engines the tables are diffed from), using
networkx for the graph structure, and renders it as ASCII adjacency or
Graphviz DOT.

Conditional result states contribute both branches (labelled ``CH`` /
``~CH``); bus-event responses are labelled with their column numbers.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.core.actions import ConditionalState
from repro.core.events import ALL_BUS_EVENTS, ALL_LOCAL_EVENTS
from repro.core.protocol import Protocol
from repro.core.states import LineState

__all__ = [
    "build_transition_graph",
    "reachable_states",
    "render_adjacency",
    "to_dot",
]


def _targets(next_state) -> list[tuple[LineState, str]]:
    """(state, condition-suffix) pairs for a possibly-conditional result."""
    if isinstance(next_state, ConditionalState):
        return [(next_state.if_ch, "[CH]"), (next_state.if_not_ch, "[~CH]")]
    return [(next_state, "")]


def build_transition_graph(protocol: Protocol) -> "nx.MultiDiGraph":
    """Directed multigraph: nodes are state letters, edges carry labels
    like ``W:CH:O/M,CA,IM,BC,W`` (local) or ``col5`` (bus)."""
    graph = nx.MultiDiGraph(name=protocol.name)
    for state in protocol.states:
        graph.add_node(state.letter)
    for state in protocol.states:
        for event in ALL_LOCAL_EVENTS:
            for action in protocol.local_cell(state, event):
                for target, suffix in _targets(action.next_state):
                    graph.add_edge(
                        state.letter,
                        target.letter,
                        label=f"{event.name[0]}:{action.notation()}{suffix}",
                        kind="local",
                    )
        for event in ALL_BUS_EVENTS:
            for action in protocol.snoop_cell(state, event):
                for target, suffix in _targets(action.next_state):
                    graph.add_edge(
                        state.letter,
                        target.letter,
                        label=f"col{event.note}:{action.notation()}{suffix}",
                        kind="bus",
                    )
    return graph


def reachable_states(
    protocol: Protocol, start: LineState = LineState.INVALID
) -> set[str]:
    """States reachable from ``start`` along any transitions."""
    graph = build_transition_graph(protocol)
    if start.letter not in graph:
        return set()
    return set(nx.descendants(graph, start.letter)) | {start.letter}


def render_adjacency(protocol: Protocol) -> str:
    """Compact text form: one line per (from, to) pair with edge labels."""
    graph = build_transition_graph(protocol)
    lines = [f"{protocol.name} transition diagram"]
    order = [s for s in "MOESI" if s in graph]
    for source in order:
        for target in order:
            labels = [
                data["label"]
                for _, t, data in graph.out_edges(source, data=True)
                if t == target
            ]
            if labels:
                lines.append(f"  {source} -> {target}: " + "; ".join(labels))
    return "\n".join(lines)


def to_dot(protocol: Protocol, title: Optional[str] = None) -> str:
    """Graphviz DOT output (render externally with ``dot -Tpng``)."""
    graph = build_transition_graph(protocol)
    name = title or protocol.name
    out = [f'digraph "{name}" {{', "  rankdir=LR;",
           '  node [shape=circle fontsize=14];']
    order = [s for s in "MOESI" if s in graph]
    for node in order:
        out.append(f"  {node};")
    for source, target, data in graph.edges(data=True):
        style = "solid" if data.get("kind") == "local" else "dashed"
        label = data["label"].replace('"', "'")
        out.append(
            f'  {source} -> {target} [label="{label}" style={style} '
            "fontsize=9];"
        )
    out.append("}")
    return "\n".join(out)

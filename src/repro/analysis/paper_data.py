"""The paper's Tables 1-7, transcribed cell by cell.

This is the *reference* data the reproduction is diffed against: each cell
is the literal string printed in the paper (whitespace and line breaks
normalized, OCR case fixed -- the scan prints some ``S`` as ``s`` and one
``CH:S/E`` as ``CU:S/E``).  Alternatives joined by "or" in the paper
become list entries, preserving order (first = preferred).

An absent/"--" cell is an empty list.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_LOCAL",
    "TABLE2_SNOOP",
    "BERKELEY_TABLE3",
    "DRAGON_TABLE4",
    "WRITE_ONCE_TABLE5",
    "ILLINOIS_TABLE6",
    "FIREFLY_TABLE7",
    "LOCAL_EVENT_COLUMNS",
    "BUS_EVENT_COLUMNS",
    "canonical_cell",
]

#: Local-event column order and the paper's note numbers.
LOCAL_EVENT_COLUMNS = (("Read", 1), ("Write", 2), ("Pass", 3), ("Flush", 4))
#: Bus-event column order: paper note numbers 5-10.
BUS_EVENT_COLUMNS = (5, 6, 7, 8, 9, 10)

# ---------------------------------------------------------------------------
# Table 1: "MOESI Protocol: Result State and Bus Signals" -- local events.
# "*" marks write-through-cache entries, "**" non-caching entries.
# ---------------------------------------------------------------------------
TABLE1_LOCAL: dict[tuple[str, str], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", "Pass"): ["E,CA,BC?,W"],
    ("M", "Flush"): ["I,BC?,W"],
    ("O", "Read"): ["O"],
    ("O", "Write"): ["CH:O/M,CA,IM,BC,W", "M,CA,IM"],
    ("O", "Pass"): ["CH:S/E,CA,BC?,W"],
    ("O", "Flush"): ["I,BC?,W"],
    ("E", "Read"): ["E"],
    ("E", "Write"): ["M"],
    ("E", "Pass"): [],
    ("E", "Flush"): ["I"],
    ("S", "Read"): ["S"],
    ("S", "Write"): [
        "CH:O/M,CA,IM,BC,W",
        "M,CA,IM",
        "S,IM,BC,W*",
        "S,IM,W*",
    ],
    ("S", "Pass"): [],
    ("S", "Flush"): ["I"],
    ("I", "Read"): ["CH:S/E,CA,R", "S,CA,R*", "I,R**"],
    ("I", "Write"): [
        "M,CA,IM,R",
        "Read>Write",
        "I,IM,BC,W*,**",
        "I,IM,W*,**",
        "Read>Write*",
    ],
    ("I", "Pass"): [],
    ("I", "Flush"): [],
}

# ---------------------------------------------------------------------------
# Table 2: bus events (columns 5-10).
# ---------------------------------------------------------------------------
TABLE2_SNOOP: dict[tuple[str, int], list[str]] = {
    ("M", 5): ["O,CH,DI"],
    ("M", 6): ["I,DI"],
    ("M", 7): ["M,DI,CH?"],
    ("M", 8): [],
    ("M", 9): ["M,DI,CH?"],
    ("M", 10): ["M,SL,CH?"],
    ("O", 5): ["O,CH,DI"],
    ("O", 6): ["I,DI"],
    ("O", 7): ["CH:O/M,DI"],
    ("O", 8): ["S,SL,CH", "I"],
    ("O", 9): ["O,DI,CH?"],
    ("O", 10): ["O,SL,CH"],
    ("E", 5): ["S,CH"],
    ("E", 6): ["I"],
    ("E", 7): ["E,CH?"],
    ("E", 8): [],
    ("E", 9): ["I"],
    ("E", 10): ["E,SL,CH?", "I"],
    ("S", 5): ["S,CH"],
    ("S", 6): ["I"],
    ("S", 7): ["S,CH"],
    ("S", 8): ["S,SL,CH", "I"],
    ("S", 9): ["I"],
    ("S", 10): ["S,SL,CH", "I"],
    ("I", 5): ["I"],
    ("I", 6): ["I"],
    ("I", 7): ["I"],
    ("I", 8): ["I"],
    ("I", 9): ["I"],
    ("I", 10): ["I"],
}

# ---------------------------------------------------------------------------
# Table 3: Berkeley.  Columns: Read (1), Write (2), bus 5, bus 6.
# ---------------------------------------------------------------------------
BERKELEY_TABLE3: dict[tuple[str, object], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", 5): ["O,CH,DI"],
    ("M", 6): ["I,DI"],
    ("O", "Read"): ["O"],
    ("O", "Write"): ["M,CA,IM"],
    ("O", 5): ["O,CH,DI"],
    ("O", 6): ["I,DI"],
    ("S", "Read"): ["S"],
    ("S", "Write"): ["M,CA,IM"],
    ("S", 5): ["S,CH"],
    ("S", 6): ["I"],
    ("I", "Read"): ["S,CA,R"],
    ("I", "Write"): ["M,CA,IM,R"],
    ("I", 5): ["I"],
    ("I", 6): ["I"],
}

# ---------------------------------------------------------------------------
# Table 4: Dragon.  Columns: Read, Write, bus 5, bus 8.
# ---------------------------------------------------------------------------
DRAGON_TABLE4: dict[tuple[str, object], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", 5): ["O,DI,CH"],
    ("M", 8): [],
    ("O", "Read"): ["O"],
    ("O", "Write"): ["CH:O/M,CA,IM,BC,W"],
    ("O", 5): ["O,DI,CH"],
    ("O", 8): ["S,SL,CH"],
    ("E", "Read"): ["E"],
    ("E", "Write"): ["M"],
    ("E", 5): ["S,CH"],
    ("E", 8): [],
    ("S", "Read"): ["S"],
    ("S", "Write"): ["CH:O/M,CA,IM,BC,W"],
    ("S", 5): ["S,CH"],
    ("S", 8): ["S,SL,CH"],
    ("I", "Read"): ["CH:S/E,CA,R"],
    ("I", "Write"): ["Read>Write"],
    ("I", 5): ["I"],
    ("I", 8): ["I"],
}

# ---------------------------------------------------------------------------
# Table 5: Write-Once.  Columns: Read, Write, bus 5, bus 6.
# ---------------------------------------------------------------------------
WRITE_ONCE_TABLE5: dict[tuple[str, object], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", 5): ["BS;S,CA,W"],
    ("M", 6): ["I,DI", "BS;S,CA,W"],
    ("E", "Read"): ["E"],
    ("E", "Write"): ["M"],
    ("E", 5): ["S,CH"],
    ("E", 6): ["I"],
    ("S", "Read"): ["S"],
    ("S", "Write"): ["E,CA,IM,W"],
    ("S", 5): ["S,CH"],
    ("S", 6): ["I"],
    ("I", "Read"): ["S,CA,R"],
    ("I", "Write"): ["M,CA,IM,R", "Read>Write"],
    ("I", 5): ["I"],
    ("I", 6): ["I"],
}

# ---------------------------------------------------------------------------
# Table 6: Illinois.  Columns: Read, Write, bus 5, bus 6.
# (The scan's "CU:S/E" is the OCR of "CH:S/E".)
# ---------------------------------------------------------------------------
ILLINOIS_TABLE6: dict[tuple[str, object], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", 5): ["BS;S,CA,W"],
    ("M", 6): ["BS;S,CA,W"],
    ("E", "Read"): ["E"],
    ("E", "Write"): ["M"],
    ("E", 5): ["S,CH"],
    ("E", 6): ["I"],
    ("S", "Read"): ["S"],
    ("S", "Write"): ["M,CA,IM"],
    ("S", 5): ["S,CH"],
    ("S", 6): ["I"],
    ("I", "Read"): ["CH:S/E,CA,R"],
    ("I", "Write"): ["M,CA,IM,R"],
    ("I", 5): ["I"],
    ("I", 6): ["I"],
}

# ---------------------------------------------------------------------------
# Table 7: Firefly.  Columns: Read, Write, bus 5, bus 8.
# ---------------------------------------------------------------------------
FIREFLY_TABLE7: dict[tuple[str, object], list[str]] = {
    ("M", "Read"): ["M"],
    ("M", "Write"): ["M"],
    ("M", 5): ["BS;E,CA,W"],
    ("M", 8): [],
    ("E", "Read"): ["E"],
    ("E", "Write"): ["M"],
    ("E", 5): ["S,CH"],
    ("E", 8): [],
    ("S", "Read"): ["S"],
    ("S", "Write"): ["CH:S/E,CA,IM,BC,W"],
    ("S", 5): ["S,CH"],
    ("S", 8): ["S,SL,CH"],
    ("I", "Read"): ["CH:S/E,CA,R"],
    ("I", "Write"): ["Read>Write"],
    ("I", 5): ["I"],
    ("I", 8): ["I"],
}


def canonical_cell(entry: str) -> str:
    """Normalize one cell entry for order-insensitive comparison.

    The result-state token (everything up to the first comma, including
    ``CH:O/M`` conditionals and ``BS;`` prefixes) stays first; the
    remaining signal/action tokens are sorted.  Kind annotations (``*``,
    ``**``) are preserved on their token.

    >>> canonical_cell("M,DI,CH?") == canonical_cell("M,CH?,DI")
    True
    """
    entry = entry.strip()
    if not entry:
        return entry
    tokens = [t.strip() for t in entry.split(",") if t.strip()]
    head, rest = tokens[0], sorted(tokens[1:])
    return ",".join([head] + rest)

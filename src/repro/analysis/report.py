"""Plain-text table formatting for experiment rows."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["format_rows"]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table.

    Column order follows the first row (or the explicit ``columns``).

    >>> print(format_rows([{"a": 1, "b": "x"}, {"a": 22, "b": "y"}]))
    a   b
    --  -
    1   x
    22  y
    """
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [
        [_format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(out)

"""Regenerate the paper's protocol tables from the implementations, and
diff them cell-by-cell against the transcription in
:mod:`repro.analysis.paper_data`.

This is the reproduction of experiments T1-T7: the implemented protocol
engines must *emit* the same tables the paper prints.  The diff compares
canonicalized cell notation (token order in a cell is not significant) and
only over the cells the paper defines -- the implementations additionally
carry replacement (Pass/Flush) rows the per-protocol tables omit, and
class-default extensions, which the diff deliberately ignores.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence

from repro.analysis import paper_data
from repro.analysis.paper_data import canonical_cell
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import Protocol
from repro.core.states import LineState
from repro.core.transitions import LOCAL_TABLE, SNOOP_TABLE
from repro.protocols.berkeley import BerkeleyProtocol
from repro.protocols.dragon import DragonProtocol
from repro.protocols.firefly import FireflyProtocol
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.write_once import WriteOnceProtocol

__all__ = [
    "CellDiff",
    "TableDiff",
    "moesi_local_cells",
    "moesi_snoop_cells",
    "protocol_cells",
    "diff_table1",
    "diff_table2",
    "diff_protocol_table",
    "diff_all_tables",
    "render_cells",
]

_STATE_ROWS = ("M", "O", "E", "S", "I")
_LOCAL_COLUMNS = ("Read", "Write", "Pass", "Flush")

_LOCAL_EVENT_BY_NAME = {
    "Read": LocalEvent.READ,
    "Write": LocalEvent.WRITE,
    "Pass": LocalEvent.PASS,
    "Flush": LocalEvent.FLUSH,
}
_BUS_EVENT_BY_NOTE = {event.note: event for event in BusEvent}
_STATE_BY_LETTER = {state.value: state for state in LineState}


@dataclasses.dataclass(frozen=True)
class CellDiff:
    """One mismatching cell."""

    state: str
    column: object
    ours: tuple[str, ...]
    paper: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"state {self.state}, column {self.column}: "
            f"implementation {list(self.ours)} vs paper {list(self.paper)}"
        )


@dataclasses.dataclass
class TableDiff:
    """Outcome of diffing one table."""

    name: str
    cells_compared: int
    mismatches: list[CellDiff]

    @property
    def matches(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.matches:
            return f"{self.name}: {self.cells_compared} cells, all match"
        return (
            f"{self.name}: {len(self.mismatches)} of "
            f"{self.cells_compared} cells differ"
        )


# ---------------------------------------------------------------------------
# Cell extraction.
# ---------------------------------------------------------------------------
def moesi_local_cells() -> dict[tuple[str, str], list[str]]:
    """Table 1 as emitted by the class definition (all kinds included)."""
    cells: dict[tuple[str, str], list[str]] = {}
    for letter in _STATE_ROWS:
        for column in _LOCAL_COLUMNS:
            state = _STATE_BY_LETTER[letter]
            event = _LOCAL_EVENT_BY_NAME[column]
            cells[(letter, column)] = [
                action.notation() for action in LOCAL_TABLE[(state, event)]
            ]
    return cells


def moesi_snoop_cells() -> dict[tuple[str, int], list[str]]:
    """Table 2 as emitted by the class definition."""
    cells: dict[tuple[str, int], list[str]] = {}
    for letter in _STATE_ROWS:
        for note in paper_data.BUS_EVENT_COLUMNS:
            state = _STATE_BY_LETTER[letter]
            event = _BUS_EVENT_BY_NOTE[note]
            cells[(letter, note)] = [
                action.notation() for action in SNOOP_TABLE[(state, event)]
            ]
    return cells


def protocol_cells(
    protocol: Protocol,
    columns: Sequence[object],
) -> dict[tuple[str, object], list[str]]:
    """Cells a concrete protocol emits, for the requested columns.

    ``columns`` entries are local event names ("Read"/"Write"/...) or bus
    note numbers (5-10).
    """
    cells: dict[tuple[str, object], list[str]] = {}
    states = sorted(protocol.states, key=lambda s: _STATE_ROWS.index(s.value))
    for state in states:
        for column in columns:
            if isinstance(column, str):
                event = _LOCAL_EVENT_BY_NAME[column]
                cell = protocol.local_cell(state, event)
            else:
                event = _BUS_EVENT_BY_NOTE[column]
                cell = protocol.snoop_cell(state, event)
            cells[(state.value, column)] = [a.notation() for a in cell]
    return cells


# ---------------------------------------------------------------------------
# Diffing.
# ---------------------------------------------------------------------------
def _diff(
    name: str,
    ours: Mapping[tuple, list[str]],
    paper: Mapping[tuple, list[str]],
) -> TableDiff:
    mismatches: list[CellDiff] = []
    for key, paper_cell in paper.items():
        our_cell = ours.get(key, [])
        ours_canon = [canonical_cell(c) for c in our_cell]
        paper_canon = [canonical_cell(c) for c in paper_cell]
        if ours_canon != paper_canon:
            mismatches.append(
                CellDiff(
                    state=key[0],
                    column=key[1],
                    ours=tuple(our_cell),
                    paper=tuple(paper_cell),
                )
            )
    return TableDiff(name, cells_compared=len(paper), mismatches=mismatches)


def diff_table1() -> TableDiff:
    """T1: the class's local-event table vs the paper's Table 1."""
    return _diff("Table 1 (MOESI local)", moesi_local_cells(),
                 paper_data.TABLE1_LOCAL)


def diff_table2() -> TableDiff:
    """T2: the class's bus-event table vs the paper's Table 2."""
    return _diff("Table 2 (MOESI bus)", moesi_snoop_cells(),
                 paper_data.TABLE2_SNOOP)


_PROTOCOL_TABLES = {
    3: (BerkeleyProtocol, paper_data.BERKELEY_TABLE3, ("Read", "Write", 5, 6)),
    4: (DragonProtocol, paper_data.DRAGON_TABLE4, ("Read", "Write", 5, 8)),
    5: (WriteOnceProtocol, paper_data.WRITE_ONCE_TABLE5,
        ("Read", "Write", 5, 6)),
    6: (IllinoisProtocol, paper_data.ILLINOIS_TABLE6, ("Read", "Write", 5, 6)),
    7: (FireflyProtocol, paper_data.FIREFLY_TABLE7, ("Read", "Write", 5, 8)),
}


def diff_protocol_table(table_number: int) -> TableDiff:
    """T3-T7: one prior protocol's emitted table vs the paper's."""
    try:
        protocol_cls, reference, columns = _PROTOCOL_TABLES[table_number]
    except KeyError:
        raise ValueError(
            f"no per-protocol table numbered {table_number}; know 3-7"
        ) from None
    protocol = protocol_cls()
    # Foreign protocols with class-default snoop extension must be probed
    # via their *own* cells only, which protocol_cells does (it reads the
    # explicit cell sets, not the extended fallback).
    ours = protocol_cells(protocol, columns)
    return _diff(
        f"Table {table_number} ({protocol.name})", ours, reference
    )


def diff_all_tables() -> list[TableDiff]:
    """All seven table diffs, in paper order."""
    diffs = [diff_table1(), diff_table2()]
    diffs.extend(diff_protocol_table(n) for n in sorted(_PROTOCOL_TABLES))
    return diffs


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------
def render_cells(
    cells: Mapping[tuple, list[str]],
    title: str,
    states: Optional[Sequence[str]] = None,
    columns: Optional[Sequence[object]] = None,
) -> str:
    """ASCII rendering in the paper's layout: states as rows, events as
    columns, "or"-alternatives stacked within a cell, "--" for illegal."""
    if states is None:
        states = sorted(
            {key[0] for key in cells}, key=_STATE_ROWS.index
        )
    if columns is None:
        seen: dict[object, None] = {}
        for key in cells:
            seen.setdefault(key[1], None)
        columns = list(seen)
    headers = ["From\\Event"] + [
        (f"col {c}" if isinstance(c, int) else str(c)) for c in columns
    ]

    def cell_lines(state: str, column: object) -> list[str]:
        entries = cells.get((state, column), [])
        if not entries:
            return ["--"]
        lines: list[str] = []
        for index, entry in enumerate(entries):
            lines.append(entry if index == 0 else "or " + entry)
        return lines

    widths = [len(h) for h in headers]
    for row_index, state in enumerate(states):
        widths[0] = max(widths[0], len(state))
        for col_index, column in enumerate(columns, start=1):
            for line in cell_lines(state, column):
                widths[col_index] = max(widths[col_index], len(line))

    def hline() -> str:
        return "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def format_row(entries: list[list[str]]) -> list[str]:
        height = max(len(e) for e in entries)
        rows = []
        for i in range(height):
            parts = []
            for col_index, lines in enumerate(entries):
                text = lines[i] if i < len(lines) else ""
                parts.append(f" {text.ljust(widths[col_index])} ")
            rows.append("|" + "|".join(parts) + "|")
        return rows

    out = [title, hline()]
    out.extend(format_row([[h] for h in headers]))
    out.append(hline())
    for state in states:
        entries = [[state]] + [cell_lines(state, c) for c in columns]
        out.extend(format_row(entries))
        out.append(hline())
    return "\n".join(out)

"""Bus-transaction trace pretty-printer.

Attach a list to :attr:`repro.bus.futurebus.Futurebus.trace` (or pass
``trace=[]`` at construction) and every completed transaction is recorded
as a ``(Transaction, TransactionResult)`` pair; :func:`format_bus_trace`
renders the log in a form that reads like a bus analyzer capture --
master, asserted signals, the paper's column number, the wired-OR
responses observed, who supplied data, and any BS retries.

The rendering itself lives in :mod:`repro.obs.export` (shared with the
structured :class:`~repro.obs.trace.Tracer` stream); this module adapts
the raw bus-log pairs into that event shape, so both capture paths
print identical rows.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bus.transaction import Transaction, TransactionResult
from repro.obs.export import bus_rows, format_trace
from repro.obs.trace import bus_event_args

__all__ = ["trace_rows", "format_bus_trace"]


def _as_events(
    log: Iterable[tuple[Transaction, TransactionResult]],
) -> list[dict]:
    """Lift raw ``(Transaction, TransactionResult)`` pairs into the
    structured-trace event shape the exporters consume."""
    return [
        {
            "kind": "bus",
            "name": txn.event.name,
            "t_ns": 0.0,
            "unit": txn.master,
            "args": bus_event_args(txn, result),
        }
        for txn, result in log
    ]


def trace_rows(
    log: Iterable[tuple[Transaction, TransactionResult]],
) -> list[dict]:
    """Flatten a bus log into printable rows."""
    return bus_rows(_as_events(log))


def format_bus_trace(
    log: Iterable[tuple[Transaction, TransactionResult]],
    title: Optional[str] = None,
) -> str:
    """One analyzer-style line per transaction."""
    return format_trace(_as_events(log), title or "Bus transaction trace")

"""Bus-transaction trace pretty-printer.

Attach a list to :attr:`repro.bus.futurebus.Futurebus.trace` (or pass
``trace=[]`` at construction) and every completed transaction is recorded
as a ``(Transaction, TransactionResult)`` pair; :func:`format_bus_trace`
renders the log in a form that reads like a bus analyzer capture --
master, asserted signals, the paper's column number, the wired-OR
responses observed, who supplied data, and any BS retries.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.report import format_rows
from repro.bus.transaction import Transaction, TransactionResult
from repro.core.actions import BusOp

__all__ = ["trace_rows", "format_bus_trace"]


def trace_rows(
    log: Iterable[tuple[Transaction, TransactionResult]],
) -> list[dict]:
    """Flatten a bus log into printable rows."""
    rows = []
    for txn, result in log:
        op = {
            BusOp.READ: "read",
            BusOp.WRITE: "write",
            BusOp.NONE: "addr-only",
        }.get(txn.op, str(txn.op))
        rows.append(
            {
                "#": txn.serial,
                "master": txn.master,
                "signals": txn.signals.notation(),
                "col": txn.event.note,
                "op": op,
                "line": f"0x{txn.address:x}",
                "responses": result.aggregate.notation() or "-",
                "supplier": result.supplier or "-",
                "connectors": ",".join(result.connectors) or "-",
                "retries": result.retries,
                "ns": round(result.duration_ns),
            }
        )
    return rows


def format_bus_trace(
    log: Iterable[tuple[Transaction, TransactionResult]],
    title: Optional[str] = None,
) -> str:
    """One analyzer-style line per transaction."""
    rows = trace_rows(log)
    return format_rows(rows, title or "Bus transaction trace")

"""The unified front door: plan/execute, sessions, typed results.

Everything the toolkit can do -- run a (possibly heterogeneous) system
over a workload, exhaustively verify a protocol mix, fuzz with the
differential oracles, race the protocols against each other, sweep the
batch kernel -- is now expressed in two verbs over frozen spec values
(:mod:`repro.specs`):

* :func:`plan` builds a frozen, picklable, canonically-hashable spec
  (``ExperimentSpec``, ``VerifySpec``, ``FuzzSpec``, ``BatchSpec``,
  ``ShootoutSpec``) describing *what* to compute;
* :func:`execute` runs one and returns the typed result.  Execution
  details that cannot change the answer -- worker counts, backends,
  output directories -- ride on ``execute``, never on the spec, so one
  ``spec.content_hash()`` covers every way of computing the same result
  (the memoization key :mod:`repro.serve` caches under).

Quickstart::

    from repro import plan, execute

    spec = plan("experiment", protocol="illinois", references=500)
    result = execute(spec)
    assert result.ok
    assert execute(spec).report.to_json() == result.report.to_json()

A :class:`Session` still owns one :class:`~repro.obs.trace.Tracer` and
one :class:`~repro.obs.profile.Profiler` and threads them through every
layer; its ``run_experiment``/``verify``/``fuzz_campaign``/``shootout``
methods are thin plan-then-execute wrappers (supported, not deprecated)
so ``execute(plan(...))`` is byte-identical to the legacy calls.  The
old keyword sprawl -- board geometry kwargs passed straight through
``run_experiment(**board_kwargs)`` -- still works but warns once per
process via :mod:`repro.deprecation`; pass
``geometry=GeometrySpec(...)`` instead.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.export import (
    to_jsonl,
    validate_chrome_trace,  # noqa: F401  (re-exported convenience)
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.specs import (
    BatchSpec,
    ExperimentSpec,
    FuzzSpec,
    GeometrySpec,
    ShootoutSpec,
    VerifySpec,
    WorkloadSpec,
    spec_from_canonical,
    spec_from_dict,
)
from repro.system.stats import SystemReport
from repro.system.system import BoardSpec, System
from repro.workloads.trace import Trace

__all__ = [
    "Session",
    "ExperimentResult",
    "VerifyResult",
    "FuzzResult",
    "plan",
    "execute",
    "execute_many",
    "run_experiment",
    "explore",
    "fuzz_campaign",
    "batch_sweep",
    "shutdown_pool",
    "warm_pool",
]

#: The BoardSpec keywords the legacy ``run_experiment(**board_kwargs)``
#: path accepted; anything else was (and is) a TypeError.
_BOARD_KEYWORDS = frozenset(
    ("num_sets", "associativity", "line_size", "replacement")
)


def _write_events(
    events: list, path: Union[str, Path], fmt: str, label: str
) -> Path:
    if fmt == "chrome":
        return write_chrome_trace(path, events, label=label)
    if fmt == "jsonl":
        return write_jsonl(path, events)
    raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")


@dataclasses.dataclass
class ExperimentResult:
    """One workload run: report + coherence verdict + observability."""

    label: str
    report: SystemReport
    #: Final whole-memory coherence sweep (empty means coherent).
    violations: list
    #: Whole-system metrics snapshot (``MetricsRegistry.to_dict``).
    metrics: dict
    #: Exported structured trace events, or None if tracing was off.
    #: Accepts the report's lazy ``(tracer, count)`` handle; the
    #: property installed below exports on first access.
    trace: Optional[list] = None
    profile: Optional[Profiler] = None
    #: The live system, for state inspection after the run.
    system: Optional[System] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return not self.violations

    def write_trace(
        self, path: Union[str, Path], fmt: str = "chrome"
    ) -> Path:
        """Export the attached trace (``chrome`` for Perfetto, or
        ``jsonl``)."""
        if self.trace is None:
            raise ValueError(
                "experiment ran without tracing; pass trace=True"
            )
        return _write_events(self.trace, path, fmt, self.label)

    def to_json(self) -> str:
        return self.report.to_json()


def _result_trace_get(self) -> Optional[list]:
    value = self._trace_value
    if value is None or isinstance(value, list):
        return value
    tracer, count = value
    events = tracer.export()
    if len(events) > count:
        events = events[:count]
    self._trace_value = events
    return events


def _result_trace_set(self, value) -> None:
    self._trace_value = value


#: Same lazy-trace contract as :class:`repro.system.stats.SystemReport`:
#: a traced run hands the result a cheap handle, and the export encoding
#: is paid when (and only when) ``result.trace`` is read.
ExperimentResult.trace = property(  # type: ignore[assignment]
    _result_trace_get,
    _result_trace_set,
    doc="Exported structured trace events, or None if tracing was off.",
)


@dataclasses.dataclass
class VerifyResult:
    """One verification matrix run: per-mix rows + observability."""

    rows: list
    trace: Optional[list] = None
    profile: Optional[Profiler] = None

    @property
    def ok(self) -> bool:
        return all(row["ok"] for row in self.rows)

    @property
    def failures(self) -> list:
        return [row for row in self.rows if not row["ok"]]


@dataclasses.dataclass
class FuzzResult:
    """One fuzz campaign: the deterministic report + observability."""

    report: object  # CampaignReport, or runner.ScenarioReplayReport
    trace: Optional[list] = None
    profile: Optional[Profiler] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def failures(self) -> list:
        return self.report.failures


# ----------------------------------------------------------------------
# plan(...): kwargs -> frozen spec.
# ----------------------------------------------------------------------
def _geometry_from_board_kwargs(
    geometry: Optional[GeometrySpec], board_kwargs: dict
) -> GeometrySpec:
    """The legacy keyword path: loose BoardSpec kwargs -> GeometrySpec.

    Warns once per process per keyword set; ``geometry=GeometrySpec(...)``
    is the supported spelling."""
    unknown = sorted(set(board_kwargs) - _BOARD_KEYWORDS)
    if unknown:
        raise TypeError(
            f"unknown board keyword(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_BOARD_KEYWORDS))}"
        )
    from repro.deprecation import warn_legacy_keywords

    warn_legacy_keywords(
        "run_experiment", board_kwargs, "geometry=GeometrySpec(...)"
    )
    return dataclasses.replace(geometry or GeometrySpec(), **board_kwargs)


#: Stand-in workload for the legacy facade path: when a caller hands
#: ``Session.run_experiment`` an already-built Trace, the trace goes to
#: execution directly and the ephemeral spec carries this empty literal
#: instead of paying the O(references) record embed.
_ELIDED_WORKLOAD = WorkloadSpec(source="literal", records=())


def plan_experiment(
    protocol: str = "moesi",
    protocols: Optional[Sequence[str]] = None,
    workload: Optional[Union[Trace, WorkloadSpec]] = None,
    processors: int = 4,
    references: int = 2000,
    seed: int = 7,
    p_shared: float = 0.3,
    p_write: float = 0.3,
    timed: bool = False,
    check: bool = True,
    label: Optional[str] = None,
    discipline: Optional[str] = None,
    geometry: Optional[GeometrySpec] = None,
    trace: bool = False,
    metrics: bool = True,
    **board_kwargs,
) -> ExperimentSpec:
    """Plan one system run.  ``workload`` may be a literal
    :class:`~repro.workloads.trace.Trace` (embedded record-for-record), a
    :class:`~repro.specs.WorkloadSpec`, or ``None`` for the synthetic
    recipe ``(processors, references, seed, p_shared, p_write)``."""
    if board_kwargs:
        geometry = _geometry_from_board_kwargs(geometry, board_kwargs)
    if workload is None:
        workload_spec = WorkloadSpec(
            processors=processors,
            references=references,
            seed=seed,
            p_shared=p_shared,
            p_write=p_write,
        )
    elif isinstance(workload, WorkloadSpec):
        workload_spec = workload
    else:
        workload_spec = WorkloadSpec.literal(workload)
    return ExperimentSpec(
        protocol=protocol,
        protocols=tuple(protocols) if protocols else None,
        workload=workload_spec,
        geometry=geometry or GeometrySpec(),
        timed=timed,
        check=check,
        discipline=discipline,
        label=label,
        trace=trace,
        metrics=metrics,
    )


def plan_verify(
    suites: Optional[Sequence[str]] = None,
    trace: bool = False,
    metrics: bool = True,
) -> VerifySpec:
    """Plan the verification matrix (all suites by default; names from
    :data:`repro.verify.mixes.SUITES`)."""
    kwargs = {} if suites is None else {"suites": tuple(suites)}
    return VerifySpec(trace=trace, metrics=metrics, **kwargs)


def plan_fuzz(
    config=None,
    seeds: Optional[int] = None,
    seed_base: int = 0,
    scenario=None,
    shrink: bool = True,
    scenario_json: Optional[str] = None,
    trace: bool = False,
    metrics: bool = True,
) -> FuzzSpec:
    """Plan a fuzz campaign.  ``config`` (a
    :class:`~repro.fuzz.campaign.CampaignConfig`) is the legacy bundle
    and excludes every other campaign knob; ``scenario_json`` (a
    canonical :meth:`Scenario.canonical` string) plans a single-scenario
    replay instead of a seeded campaign."""
    if config is not None:
        if seeds is not None:
            raise ValueError("pass either config or seeds, not both")
        return FuzzSpec(
            seeds=config.seeds,
            seed_base=config.seed_base,
            scenario=config.scenario,
            shrink=config.shrink,
            scenario_json=scenario_json,
            trace=trace,
            metrics=metrics,
        )
    return FuzzSpec(
        seeds=200 if seeds is None else seeds,
        seed_base=seed_base,
        scenario=scenario,
        shrink=shrink,
        scenario_json=scenario_json,
        trace=trace,
        metrics=metrics,
    )


def plan_shootout(
    workload: Optional[Union[Trace, WorkloadSpec]] = None,
    protocols: Optional[Sequence[str]] = None,
    references: int = 4000,
    seed: int = 7,
    timed: bool = True,
    trace: bool = False,
    metrics: bool = True,
) -> ShootoutSpec:
    """Plan the protocol shootout.  ``protocols`` resolves to the
    comparison defaults *now* (at plan time), so the hash pins the
    protocol list rather than "whatever the registry holds later"."""
    from repro.analysis.compare import DEFAULT_PROTOCOLS

    if workload is not None and not isinstance(workload, WorkloadSpec):
        workload = WorkloadSpec.literal(workload)
    return ShootoutSpec(
        protocols=tuple(protocols) if protocols else tuple(DEFAULT_PROTOCOLS),
        references=references,
        seed=seed,
        timed=timed,
        workload=workload,
        trace=trace,
        metrics=metrics,
    )


def plan_batch(
    protocols: Optional[Sequence[str]] = None,
    rows: int = 64,
    events_per_row: int = 100,
    seed: int = 0,
    n_units: int = 2,
    geometry: Sequence[int] = (4, 2, 32, 8),
    metrics: bool = True,
) -> BatchSpec:
    """Plan a batch-kernel population sweep; ``protocols`` resolves to
    every batchable registry spec at plan time."""
    if protocols is None:
        from repro.perf.batch import batchable_specs

        protocols = batchable_specs()
    return BatchSpec(
        protocols=tuple(protocols),
        rows=rows,
        events_per_row=events_per_row,
        seed=seed,
        n_units=n_units,
        geometry=tuple(geometry),
        metrics=metrics,
    )


_PLANNERS = {
    "experiment": plan_experiment,
    "verify": plan_verify,
    "fuzz": plan_fuzz,
    "shootout": plan_shootout,
    "batch": plan_batch,
}


def plan(kind: str = "experiment", **kwargs):
    """Build a frozen spec for ``kind`` (``experiment``, ``verify``,
    ``fuzz``, ``shootout``, ``batch``); the first of the two verbs."""
    planner = _PLANNERS.get(kind)
    if planner is None:
        known = ", ".join(sorted(_PLANNERS))
        raise ValueError(f"unknown plan kind {kind!r}; known: {known}")
    return planner(**kwargs)


def _coerce_spec(spec):
    """Accept a spec object, its dict payload, or its canonical string."""
    if isinstance(spec, str):
        return spec_from_canonical(spec)
    if isinstance(spec, dict):
        return spec_from_dict(spec)
    return spec


class Session:
    """One observability context threaded through every entry point.

    ``trace=True`` attaches a structured :class:`Tracer` (logical time,
    deterministic); ``profile=True`` a wall-clock :class:`Profiler`.
    Both default off, preserving the zero-overhead discipline.  Results
    returned by a session share the session's tracer stream, so one
    session tracing several runs yields one merged timeline.

    :meth:`execute` is the session-level second verb; the named methods
    below (``run_experiment``, ``verify``, ...) plan a spec from their
    keyword arguments and execute it, so both spellings take exactly the
    same code path and produce byte-identical results.
    """

    def __init__(
        self,
        label: str = "session",
        trace: bool = False,
        profile: bool = False,
    ) -> None:
        self.label = label
        self.tracer: Optional[Tracer] = Tracer(stream=label) if trace else None
        self.profiler: Optional[Profiler] = Profiler() if profile else None

    # ------------------------------------------------------------------
    def _snapshot_trace(self) -> Optional[list]:
        return None if self.tracer is None else self.tracer.export()

    # ------------------------------------------------------------------
    # The second verb.
    # ------------------------------------------------------------------
    def execute(
        self,
        spec,
        *,
        workers: Optional[int] = None,
        out_dir: Optional[Union[str, Path]] = None,
        backend: Optional[str] = None,
        timing=None,
        **kwargs,
    ):
        """Execute a spec under this session's observability.

        ``spec`` may be a spec object, its ``to_dict()`` payload, or its
        canonical string.  ``workers``/``out_dir``/``backend``/``timing``
        are execution details: they select *how* the answer is computed
        (and where artifacts land) without entering the spec's content
        hash.  Tracing follows the session, not ``spec.trace`` -- the
        module-level :func:`execute` honours the flag by building the
        session from it.
        """
        spec = _coerce_spec(spec)
        if isinstance(spec, ExperimentSpec):
            return self._execute_experiment(spec, timing=timing)
        if isinstance(spec, VerifySpec):
            return self._execute_verify(spec, workers=workers, **kwargs)
        if isinstance(spec, FuzzSpec):
            return self._execute_fuzz(
                spec, workers=workers or 0, out_dir=out_dir
            )
        if isinstance(spec, ShootoutSpec):
            return self._execute_shootout(spec, workers=workers, **kwargs)
        if isinstance(spec, BatchSpec):
            return self._execute_batch(
                spec, backend=backend, workers=workers, **kwargs
            )
        raise TypeError(
            f"cannot execute {type(spec).__name__}; expected a repro.specs "
            "spec, its dict payload, or its canonical string"
        )

    # ------------------------------------------------------------------
    def _execute_experiment(
        self, spec: ExperimentSpec, timing=None, workload: Optional[Trace] = None
    ) -> ExperimentResult:
        # The legacy wrapper passes its already-built Trace so the facade
        # does not pay a rebuild; spec.workload.build() yields the same
        # records, so both paths drive the System identically.
        if workload is None:
            workload = spec.workload.build()
        units = workload.units()
        names = (
            list(spec.protocols)
            if spec.protocols
            else [spec.protocol] * len(units)
        )
        if len(names) < len(units):
            raise ValueError(
                f"{len(units)} workload units but only "
                f"{len(names)} protocols"
            )
        run_label = spec.label or (
            spec.protocol if not spec.protocols else "+".join(names)
        )
        boards = [
            BoardSpec(
                unit_id=unit, protocol=name, **spec.geometry.board_kwargs()
            )
            for unit, name in zip(units, names)
        ]
        system = System(
            boards, timing=timing, check=spec.check, label=run_label
        )
        if self.tracer is not None:
            system.attach_tracer(self.tracer)

        def _run() -> SystemReport:
            if spec.discipline is not None:
                from repro.system.arbitrated import arbitrated_run_from_trace

                return arbitrated_run_from_trace(
                    system, workload, arbiter=spec.discipline
                ).run()
            if spec.timed:
                from repro.system.runner import timed_run_from_trace

                return timed_run_from_trace(system, workload).run()
            system.run_trace(workload)
            return system.report()

        if self.profiler is not None:
            with self.profiler.region(
                "experiment", label=run_label, references=len(workload)
            ):
                report = _run()
        else:
            report = _run()
        violations = system.check_coherence()
        return ExperimentResult(
            label=run_label,
            report=report,
            violations=violations,
            metrics=report.metrics or {},
            trace=report.trace_handle(),
            profile=self.profiler,
            system=system,
        )

    def _execute_verify(
        self, spec: VerifySpec, workers: Optional[int] = None, **kwargs
    ) -> VerifyResult:
        from repro.verify.mixes import SUITES, run_matrix

        cases = []
        for name in spec.suites:
            factory = SUITES.get(name)
            if factory is None:
                known = ", ".join(SUITES)
                raise ValueError(
                    f"unknown verify suite {name!r}; known: {known}"
                )
            cases.extend(factory())
        rows = run_matrix(
            cases,
            workers=workers,
            tracer=self.tracer,
            profiler=self.profiler,
            **kwargs,
        )
        return VerifyResult(
            rows=rows,
            trace=self._snapshot_trace(),
            profile=self.profiler,
        )

    def _execute_fuzz(
        self,
        spec: FuzzSpec,
        workers: int = 0,
        out_dir: Optional[Union[str, Path]] = None,
        shards: Optional[int] = None,
    ) -> FuzzResult:
        if spec.scenario_json is not None:
            from repro.fuzz.runner import run_fuzz_spec

            report = run_fuzz_spec(spec)
            if self.tracer is not None:
                self.tracer.mark(
                    "fuzz.replay",
                    seed=report.scenario.seed,
                    ok=report.ok,
                    steps=report.steps_run,
                )
            return FuzzResult(
                report=report,
                trace=self._snapshot_trace(),
                profile=self.profiler,
            )
        from repro.fuzz.campaign import (
            CampaignConfig,
            _run_campaign,
            run_sharded_campaign,
        )

        config = CampaignConfig(
            seeds=spec.seeds,
            seed_base=spec.seed_base,
            scenario=spec.scenario_config(),
            shrink=spec.shrink,
        )
        if shards is not None:
            report = run_sharded_campaign(
                config,
                shards=shards,
                workers=workers,
                out_dir=out_dir,
                profiler=self.profiler,
                tracer=self.tracer,
            )
        else:
            report = _run_campaign(
                config,
                workers=workers,
                out_dir=out_dir,
                profiler=self.profiler,
                tracer=self.tracer,
            )
        return FuzzResult(
            report=report,
            trace=self._snapshot_trace(),
            profile=self.profiler,
        )

    def _execute_shootout(
        self,
        spec: ShootoutSpec,
        workers: Optional[int] = None,
        workload: Optional[Trace] = None,
        **kwargs,
    ) -> list:
        from repro.analysis.compare import protocol_comparison

        if workload is None and spec.workload is not None:
            workload = spec.workload.build()
        return protocol_comparison(
            trace=workload,
            protocols=spec.protocols,
            references=spec.references,
            seed=spec.seed,
            timed=spec.timed,
            workers=workers,
            tracer=self.tracer,
            profiler=self.profiler,
            **kwargs,
        )

    def _execute_batch(
        self,
        spec: BatchSpec,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        **kwargs,
    ) -> list:
        from repro.perf.sweeps import batch_protocol_sweep

        return batch_protocol_sweep(
            protocols=spec.protocols,
            rows=spec.rows,
            events_per_row=spec.events_per_row,
            seed=spec.seed,
            n_units=spec.n_units,
            geometry=spec.geometry,
            backend=backend,
            workers=workers,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Thin plan-then-execute wrappers (the pre-split entry points).
    # ------------------------------------------------------------------
    def run_experiment(
        self,
        protocol: str = "moesi",
        protocols: Optional[Sequence[str]] = None,
        workload: Optional[Trace] = None,
        processors: int = 4,
        references: int = 2000,
        seed: int = 7,
        timed: bool = False,
        timing=None,
        check: bool = True,
        label: Optional[str] = None,
        discipline: Optional[str] = None,
        geometry: Optional[GeometrySpec] = None,
        **board_kwargs,
    ) -> ExperimentResult:
        """Run one system over one workload and return a typed result.

        ``protocols`` gives each board its own protocol (the paper's
        mixed-backplane capability); otherwise every board runs
        ``protocol``.  Without an explicit ``workload`` a synthetic
        shared-memory trace is generated from ``(processors, seed)``.
        ``discipline`` selects a bus arbitration service discipline
        (``"fcfs"``, ``"priority[:m=p,...]"``, ``"round-robin"``) and
        implies a timed, arbitrated run.

        Plans an :class:`~repro.specs.ExperimentSpec` and executes it;
        loose board-geometry kwargs (``num_sets=...``) still work but
        warn once -- pass ``geometry=GeometrySpec(...)``.
        """
        # An explicit Trace is threaded straight to execution instead of
        # being embedded in the (ephemeral, never hashed) spec: record
        # embedding is O(references) and would tax every facade call.
        # plan_experiment() embeds for real when a hashable spec matters.
        direct = workload is not None and not isinstance(
            workload, WorkloadSpec
        )
        spec = plan_experiment(
            protocol=protocol,
            protocols=protocols,
            workload=_ELIDED_WORKLOAD if direct else workload,
            processors=processors,
            references=references,
            seed=seed,
            timed=timed,
            check=check,
            label=label,
            discipline=discipline,
            geometry=geometry,
            trace=self.tracer is not None,
            **board_kwargs,
        )
        return self._execute_experiment(
            spec, timing=timing, workload=workload if direct else None
        )

    def explore(self, protocol_specs, label=None, **kwargs):
        """Exhaustively explore a protocol mix (the model checker); see
        :func:`repro.verify.explorer.explore`."""
        from repro.verify.explorer import Explorer

        explorer = Explorer(
            protocol_specs, label=label, profiler=self.profiler, **kwargs
        )
        result = explorer.run()
        if self.tracer is not None:
            self.tracer.mark(
                "explore.result",
                label=result.label,
                consistent=result.consistent,
                states=result.states_explored,
                transitions=result.transitions_taken,
            )
        return result

    def verify(
        self,
        cases=None,
        workers: Optional[int] = None,
        suites: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> VerifyResult:
        """Run the verification matrix (all suites by default).

        ``suites`` names :data:`~repro.verify.mixes.SUITES` subsets and
        plans a :class:`~repro.specs.VerifySpec`; an explicit ``cases``
        list (arbitrary, possibly unpicklable case objects) bypasses the
        spec layer and runs directly."""
        if cases is not None:
            if suites is not None:
                raise ValueError("pass either cases or suites, not both")
            from repro.verify.mixes import run_matrix

            rows = run_matrix(
                cases,
                workers=workers,
                tracer=self.tracer,
                profiler=self.profiler,
                **kwargs,
            )
            return VerifyResult(
                rows=rows,
                trace=self._snapshot_trace(),
                profile=self.profiler,
            )
        spec = plan_verify(suites=suites, trace=self.tracer is not None)
        return self._execute_verify(spec, workers=workers, **kwargs)

    def fuzz_campaign(
        self,
        config=None,
        seeds: Optional[int] = None,
        workers: int = 0,
        out_dir: Optional[Union[str, Path]] = None,
        shards: Optional[int] = None,
    ) -> FuzzResult:
        """Run a differential fuzz campaign (see :mod:`repro.fuzz`).

        ``shards`` switches to the range-partitioned driver
        (:func:`repro.fuzz.campaign.run_sharded_campaign`); the report
        is byte-identical to the per-seed driver's at any count."""
        spec = plan_fuzz(
            config=config, seeds=seeds, trace=self.tracer is not None
        )
        return self._execute_fuzz(
            spec, workers=workers, out_dir=out_dir, shards=shards
        )

    def shootout(
        self,
        trace: Optional[Trace] = None,
        protocols: Optional[Sequence[str]] = None,
        references: int = 4000,
        seed: int = 7,
        timed: bool = True,
        workers: Optional[int] = None,
    ) -> list:
        """The [Arch85]-style protocol comparison, one row per protocol.
        Traced runs absorb per-protocol streams in protocol order --
        byte-identical serial vs pooled."""
        direct = trace is not None and not isinstance(trace, WorkloadSpec)
        spec = plan_shootout(
            workload=_ELIDED_WORKLOAD if direct else trace,
            protocols=protocols,
            references=references,
            seed=seed,
            timed=timed,
            trace=self.tracer is not None,
        )
        return self._execute_shootout(
            spec, workers=workers, workload=trace if direct else None
        )

    def batch_sweep(
        self,
        protocols=None,
        rows: int = 64,
        events_per_row: int = 100,
        seed: int = 0,
        n_units: int = 2,
        geometry: Sequence[int] = (4, 2, 32, 8),
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        **kwargs,
    ) -> list:
        """Plan-then-execute over the batch kernel; see
        :func:`repro.perf.sweeps.batch_protocol_sweep`."""
        spec = plan_batch(
            protocols=protocols,
            rows=rows,
            events_per_row=events_per_row,
            seed=seed,
            n_units=n_units,
            geometry=geometry,
        )
        return self._execute_batch(
            spec, backend=backend, workers=workers, **kwargs
        )

    # ------------------------------------------------------------------
    def write_trace(
        self, path: Union[str, Path], fmt: str = "chrome"
    ) -> Path:
        """Export everything this session's tracer has collected."""
        if self.tracer is None:
            raise ValueError("session created without trace=True")
        return _write_events(self.tracer.export(), path, fmt, self.label)

    def trace_jsonl(self) -> str:
        """The session's trace as JSON-lines text (byte-stable)."""
        if self.tracer is None:
            raise ValueError("session created without trace=True")
        return to_jsonl(self.tracer.export())


# ----------------------------------------------------------------------
# Module-level verbs and conveniences (one-shot sessions).
# ----------------------------------------------------------------------
def execute(
    spec,
    *,
    profile: bool = False,
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, Path]] = None,
    backend: Optional[str] = None,
    timing=None,
    **kwargs,
):
    """Execute a spec in a fresh one-shot session; the second verb.

    The spec's ``trace`` flag decides whether the session traces, so
    ``execute(spec)`` of a ``trace=True`` spec is byte-identical to a
    ``Session(trace=True)`` legacy call with the same parameters --
    including the exported event stream."""
    spec = _coerce_spec(spec)
    session = Session(trace=bool(getattr(spec, "trace", False)),
                      profile=profile)
    return session.execute(
        spec,
        workers=workers,
        out_dir=out_dir,
        backend=backend,
        timing=timing,
        **kwargs,
    )


def execute_many(
    specs,
    *,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> list:
    """Execute several specs, coalescing compatible batch sweeps.

    The local (in-process) face of the serve tier's continuous
    batching: specs whose :meth:`~repro.specs._SpecBase.batch_key` is
    non-``None`` merge into shared SoA kernel populations via
    :func:`repro.perf.batch.run_batch_specs`; everything else runs
    through :func:`execute` one at a time.  Results return in input
    order.  Coalesced entries yield the sweep row-lists ``execute``
    would for the same :class:`~repro.specs.BatchSpec`, minus the
    wall-clock ``transitions_per_sec`` column (a merged run has no
    per-spec wall time)."""
    specs = [_coerce_spec(spec) for spec in specs]
    results: list = [None] * len(specs)
    coalesced = [
        index
        for index, spec in enumerate(specs)
        if spec.batch_key() is not None
    ]
    if len(coalesced) >= 2:
        from repro.perf.batch import run_batch_specs

        rows = run_batch_specs(
            [specs[index] for index in coalesced], backend=backend
        )
        for index, spec_rows in zip(coalesced, rows):
            results[index] = spec_rows
    else:
        coalesced = []
    merged = set(coalesced)
    for index, spec in enumerate(specs):
        if index not in merged:
            results[index] = execute(
                spec, workers=workers, backend=backend
            )
    return results


def warm_pool(workers: Optional[int] = None) -> int:
    """Pre-start the persistent worker pool (see :mod:`repro.perf.engine`).

    Optional: the pool starts lazily on the first ``parallel_map``
    anyway; warming it moves the fork cost out of the first timed
    region.  Returns the worker count started (or already running)."""
    from repro.perf.engine import get_executor, resolve_workers

    workers = resolve_workers(workers)
    get_executor(workers)
    return workers


def shutdown_pool(wait: bool = False) -> None:
    """Shut down the persistent worker pool (no-op when not running).

    Normally unnecessary -- the pool is reclaimed at interpreter exit --
    but long-lived embedders can release the worker processes early."""
    from repro.perf.engine import shutdown_pool as _shutdown

    _shutdown(wait=wait)


def run_experiment(
    protocol: str = "moesi",
    trace: bool = False,
    profile: bool = False,
    **kwargs,
) -> ExperimentResult:
    """One-shot :meth:`Session.run_experiment`."""
    session = Session(label=protocol, trace=trace, profile=profile)
    return session.run_experiment(protocol=protocol, **kwargs)


def explore(protocol_specs, label=None, **kwargs):
    """Exhaustively explore a protocol mix; identical to
    :func:`repro.verify.explorer.explore` (kept on the facade so
    ``from repro import explore`` keeps meaning the model checker)."""
    from repro.verify.explorer import explore as _explore

    return _explore(protocol_specs, label=label, **kwargs)


def fuzz_campaign(
    config=None,
    seeds: Optional[int] = None,
    workers: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
    trace: bool = False,
    profile: bool = False,
    shards: Optional[int] = None,
) -> FuzzResult:
    """One-shot :meth:`Session.fuzz_campaign`."""
    session = Session(label="fuzz", trace=trace, profile=profile)
    return session.fuzz_campaign(
        config=config,
        seeds=seeds,
        workers=workers,
        out_dir=out_dir,
        shards=shards,
    )


def batch_sweep(
    protocols=None,
    rows: int = 64,
    events_per_row: int = 100,
    seed: int = 0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> list:
    """Run the struct-of-arrays batch kernel over synthetic populations,
    one per protocol spec; returns the per-protocol summary rows.

    The facade over :func:`repro.perf.sweeps.batch_protocol_sweep`:
    ``protocols`` defaults to every registry spec the table lowering
    accepts, ``backend`` to the fastest available (numpy when importable,
    the pure-Python ``array`` kernel otherwise)."""
    return Session(label="batch").batch_sweep(
        protocols=protocols,
        rows=rows,
        events_per_row=events_per_row,
        seed=seed,
        backend=backend,
        workers=workers,
        **kwargs,
    )

"""The unified front door: sessions, experiments, typed results.

Everything the toolkit can do -- run a (possibly heterogeneous) system
over a workload, exhaustively verify a protocol mix, fuzz with the
differential oracles, race the protocols against each other -- is
reachable from here with observability built in: a :class:`Session`
owns one :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.profile.Profiler`, threads them through every layer,
and hands back typed results that carry their trace, metrics snapshot
and profile alongside the domain payload.

Quickstart::

    from repro import Session

    session = Session(trace=True)
    result = session.run_experiment(protocol="illinois", references=500)
    assert result.ok
    result.write_trace("out.trace.json")      # open in Perfetto

The pre-facade entry points (``System`` + ``run_trace``,
``fuzz.campaign.run_campaign``, ``system.runner.Runner``) keep working;
the deprecated ones warn once and point here.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.export import (
    to_jsonl,
    validate_chrome_trace,  # noqa: F401  (re-exported convenience)
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.system.stats import SystemReport
from repro.system.system import BoardSpec, System
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Trace

__all__ = [
    "Session",
    "ExperimentResult",
    "VerifyResult",
    "FuzzResult",
    "run_experiment",
    "explore",
    "fuzz_campaign",
    "batch_sweep",
    "shutdown_pool",
    "warm_pool",
]


def _default_workload(
    processors: int, references: int, seed: int
) -> Trace:
    config = SyntheticConfig(
        processors=processors, p_shared=0.3, p_write=0.3
    )
    return SyntheticWorkload(config, seed=seed).trace(references)


def _write_events(
    events: list, path: Union[str, Path], fmt: str, label: str
) -> Path:
    if fmt == "chrome":
        return write_chrome_trace(path, events, label=label)
    if fmt == "jsonl":
        return write_jsonl(path, events)
    raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")


@dataclasses.dataclass
class ExperimentResult:
    """One workload run: report + coherence verdict + observability."""

    label: str
    report: SystemReport
    #: Final whole-memory coherence sweep (empty means coherent).
    violations: list
    #: Whole-system metrics snapshot (``MetricsRegistry.to_dict``).
    metrics: dict
    #: Exported structured trace events, or None if tracing was off.
    #: Accepts the report's lazy ``(tracer, count)`` handle; the
    #: property installed below exports on first access.
    trace: Optional[list] = None
    profile: Optional[Profiler] = None
    #: The live system, for state inspection after the run.
    system: Optional[System] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return not self.violations

    def write_trace(
        self, path: Union[str, Path], fmt: str = "chrome"
    ) -> Path:
        """Export the attached trace (``chrome`` for Perfetto, or
        ``jsonl``)."""
        if self.trace is None:
            raise ValueError(
                "experiment ran without tracing; pass trace=True"
            )
        return _write_events(self.trace, path, fmt, self.label)

    def to_json(self) -> str:
        return self.report.to_json()


def _result_trace_get(self) -> Optional[list]:
    value = self._trace_value
    if value is None or isinstance(value, list):
        return value
    tracer, count = value
    events = tracer.export()
    if len(events) > count:
        events = events[:count]
    self._trace_value = events
    return events


def _result_trace_set(self, value) -> None:
    self._trace_value = value


#: Same lazy-trace contract as :class:`repro.system.stats.SystemReport`:
#: a traced run hands the result a cheap handle, and the export encoding
#: is paid when (and only when) ``result.trace`` is read.
ExperimentResult.trace = property(  # type: ignore[assignment]
    _result_trace_get,
    _result_trace_set,
    doc="Exported structured trace events, or None if tracing was off.",
)


@dataclasses.dataclass
class VerifyResult:
    """One verification matrix run: per-mix rows + observability."""

    rows: list
    trace: Optional[list] = None
    profile: Optional[Profiler] = None

    @property
    def ok(self) -> bool:
        return all(row["ok"] for row in self.rows)

    @property
    def failures(self) -> list:
        return [row for row in self.rows if not row["ok"]]


@dataclasses.dataclass
class FuzzResult:
    """One fuzz campaign: the deterministic report + observability."""

    report: object  # repro.fuzz.campaign.CampaignReport
    trace: Optional[list] = None
    profile: Optional[Profiler] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def failures(self) -> list:
        return self.report.failures


class Session:
    """One observability context threaded through every entry point.

    ``trace=True`` attaches a structured :class:`Tracer` (logical time,
    deterministic); ``profile=True`` a wall-clock :class:`Profiler`.
    Both default off, preserving the zero-overhead discipline.  Results
    returned by a session share the session's tracer stream, so one
    session tracing several runs yields one merged timeline.
    """

    def __init__(
        self,
        label: str = "session",
        trace: bool = False,
        profile: bool = False,
    ) -> None:
        self.label = label
        self.tracer: Optional[Tracer] = Tracer(stream=label) if trace else None
        self.profiler: Optional[Profiler] = Profiler() if profile else None

    # ------------------------------------------------------------------
    def _snapshot_trace(self) -> Optional[list]:
        return None if self.tracer is None else self.tracer.export()

    def run_experiment(
        self,
        protocol: str = "moesi",
        protocols: Optional[Sequence[str]] = None,
        workload: Optional[Trace] = None,
        processors: int = 4,
        references: int = 2000,
        seed: int = 7,
        timed: bool = False,
        timing=None,
        check: bool = True,
        label: Optional[str] = None,
        discipline: Optional[str] = None,
        **board_kwargs,
    ) -> ExperimentResult:
        """Run one system over one workload and return a typed result.

        ``protocols`` gives each board its own protocol (the paper's
        mixed-backplane capability); otherwise every board runs
        ``protocol``.  Without an explicit ``workload`` a synthetic
        shared-memory trace is generated from ``(processors, seed)``.
        ``discipline`` selects a bus arbitration service discipline
        (``"fcfs"``, ``"priority[:m=p,...]"``, ``"round-robin"``) and
        implies a timed, arbitrated run.
        """
        if workload is None:
            workload = _default_workload(processors, references, seed)
        units = workload.units()
        names = list(protocols) if protocols else [protocol] * len(units)
        if len(names) < len(units):
            raise ValueError(
                f"{len(units)} workload units but only "
                f"{len(names)} protocols"
            )
        run_label = label or (
            protocol if not protocols else "+".join(names)
        )
        boards = [
            BoardSpec(unit_id=unit, protocol=name, **board_kwargs)
            for unit, name in zip(units, names)
        ]
        system = System(
            boards, timing=timing, check=check, label=run_label
        )
        if self.tracer is not None:
            system.attach_tracer(self.tracer)

        def _run() -> SystemReport:
            if discipline is not None:
                from repro.system.arbitrated import arbitrated_run_from_trace

                return arbitrated_run_from_trace(
                    system, workload, arbiter=discipline
                ).run()
            if timed:
                from repro.system.runner import timed_run_from_trace

                return timed_run_from_trace(system, workload).run()
            system.run_trace(workload)
            return system.report()

        if self.profiler is not None:
            with self.profiler.region(
                "experiment", label=run_label, references=len(workload)
            ):
                report = _run()
        else:
            report = _run()
        violations = system.check_coherence()
        return ExperimentResult(
            label=run_label,
            report=report,
            violations=violations,
            metrics=report.metrics or {},
            trace=report.trace_handle(),
            profile=self.profiler,
            system=system,
        )

    def explore(self, protocol_specs, label=None, **kwargs):
        """Exhaustively explore a protocol mix (the model checker); see
        :func:`repro.verify.explorer.explore`."""
        from repro.verify.explorer import Explorer

        explorer = Explorer(
            protocol_specs, label=label, profiler=self.profiler, **kwargs
        )
        result = explorer.run()
        if self.tracer is not None:
            self.tracer.mark(
                "explore.result",
                label=result.label,
                consistent=result.consistent,
                states=result.states_explored,
                transitions=result.transitions_taken,
            )
        return result

    def verify(
        self,
        cases=None,
        workers: Optional[int] = None,
        **kwargs,
    ) -> VerifyResult:
        """Run the verification matrix (all suites by default)."""
        from repro.verify.mixes import SUITES, run_matrix

        if cases is None:
            cases = [
                case for suite in SUITES.values() for case in suite()
            ]
        rows = run_matrix(
            cases,
            workers=workers,
            tracer=self.tracer,
            profiler=self.profiler,
            **kwargs,
        )
        return VerifyResult(
            rows=rows,
            trace=self._snapshot_trace(),
            profile=self.profiler,
        )

    def fuzz_campaign(
        self,
        config=None,
        seeds: Optional[int] = None,
        workers: int = 0,
        out_dir: Optional[Union[str, Path]] = None,
    ) -> FuzzResult:
        """Run a differential fuzz campaign (see :mod:`repro.fuzz`)."""
        from repro.fuzz.campaign import CampaignConfig, _run_campaign

        if config is None:
            config = CampaignConfig(
                **({"seeds": seeds} if seeds is not None else {})
            )
        elif seeds is not None:
            raise ValueError("pass either config or seeds, not both")
        report = _run_campaign(
            config,
            workers=workers,
            out_dir=out_dir,
            profiler=self.profiler,
            tracer=self.tracer,
        )
        return FuzzResult(
            report=report,
            trace=self._snapshot_trace(),
            profile=self.profiler,
        )

    def shootout(
        self,
        trace: Optional[Trace] = None,
        protocols: Optional[Sequence[str]] = None,
        references: int = 4000,
        seed: int = 7,
        timed: bool = True,
        workers: Optional[int] = None,
    ) -> list:
        """The [Arch85]-style protocol comparison, one row per protocol.
        Traced runs absorb per-protocol streams in protocol order --
        byte-identical serial vs pooled."""
        from repro.analysis.compare import (
            DEFAULT_PROTOCOLS,
            protocol_comparison,
        )

        return protocol_comparison(
            trace=trace,
            protocols=tuple(protocols) if protocols else DEFAULT_PROTOCOLS,
            references=references,
            seed=seed,
            timed=timed,
            workers=workers,
            tracer=self.tracer,
            profiler=self.profiler,
        )

    # ------------------------------------------------------------------
    def write_trace(
        self, path: Union[str, Path], fmt: str = "chrome"
    ) -> Path:
        """Export everything this session's tracer has collected."""
        if self.tracer is None:
            raise ValueError("session created without trace=True")
        return _write_events(self.tracer.export(), path, fmt, self.label)

    def trace_jsonl(self) -> str:
        """The session's trace as JSON-lines text (byte-stable)."""
        if self.tracer is None:
            raise ValueError("session created without trace=True")
        return to_jsonl(self.tracer.export())


# ----------------------------------------------------------------------
# Module-level conveniences (one-shot sessions).
# ----------------------------------------------------------------------
def warm_pool(workers: Optional[int] = None) -> int:
    """Pre-start the persistent worker pool (see :mod:`repro.perf.engine`).

    Optional: the pool starts lazily on the first ``parallel_map``
    anyway; warming it moves the fork cost out of the first timed
    region.  Returns the worker count started (or already running)."""
    from repro.perf.engine import get_executor, resolve_workers

    workers = resolve_workers(workers)
    get_executor(workers)
    return workers


def shutdown_pool(wait: bool = False) -> None:
    """Shut down the persistent worker pool (no-op when not running).

    Normally unnecessary -- the pool is reclaimed at interpreter exit --
    but long-lived embedders can release the worker processes early."""
    from repro.perf.engine import shutdown_pool as _shutdown

    _shutdown(wait=wait)


def run_experiment(
    protocol: str = "moesi",
    trace: bool = False,
    profile: bool = False,
    **kwargs,
) -> ExperimentResult:
    """One-shot :meth:`Session.run_experiment`."""
    session = Session(label=protocol, trace=trace, profile=profile)
    return session.run_experiment(protocol=protocol, **kwargs)


def explore(protocol_specs, label=None, **kwargs):
    """Exhaustively explore a protocol mix; identical to
    :func:`repro.verify.explorer.explore` (kept on the facade so
    ``from repro import explore`` keeps meaning the model checker)."""
    from repro.verify.explorer import explore as _explore

    return _explore(protocol_specs, label=label, **kwargs)


def fuzz_campaign(
    config=None,
    seeds: Optional[int] = None,
    workers: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
    trace: bool = False,
    profile: bool = False,
) -> FuzzResult:
    """One-shot :meth:`Session.fuzz_campaign`."""
    session = Session(label="fuzz", trace=trace, profile=profile)
    return session.fuzz_campaign(
        config=config, seeds=seeds, workers=workers, out_dir=out_dir
    )


def batch_sweep(
    protocols=None,
    rows: int = 64,
    events_per_row: int = 100,
    seed: int = 0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> list:
    """Run the struct-of-arrays batch kernel over synthetic populations,
    one per protocol spec; returns the per-protocol summary rows.

    The facade over :func:`repro.perf.sweeps.batch_protocol_sweep`:
    ``protocols`` defaults to every registry spec the table lowering
    accepts, ``backend`` to the fastest available (numpy when importable,
    the pure-Python ``array`` kernel otherwise)."""
    from repro.perf.sweeps import batch_protocol_sweep

    return batch_protocol_sweep(
        protocols=protocols,
        rows=rows,
        events_per_row=events_per_row,
        seed=seed,
        backend=backend,
        workers=workers,
        **kwargs,
    )

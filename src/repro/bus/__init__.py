"""Futurebus substrate: open-collector lines, the broadcast address
handshake, timing, arbitration, and the transaction engine (paper
section 2)."""

from repro.bus.arbiter import ArbitrationRequest, FcfsArbiter, PriorityArbiter
from repro.bus.futurebus import (
    BusAgent,
    BusLivelockError,
    Futurebus,
    MemoryPort,
)
from repro.bus.handshake import (
    HandshakeTrace,
    SlaveTiming,
    run_address_handshake,
)
from repro.bus.timing import DEFAULT_TIMING, BusTiming
from repro.bus.transaction import Transaction, TransactionResult
from repro.bus.wired_or import Glitch, LineSample, WiredOrLine

__all__ = [
    "ArbitrationRequest",
    "FcfsArbiter",
    "PriorityArbiter",
    "BusAgent",
    "BusLivelockError",
    "Futurebus",
    "MemoryPort",
    "HandshakeTrace",
    "SlaveTiming",
    "run_address_handshake",
    "DEFAULT_TIMING",
    "BusTiming",
    "Transaction",
    "TransactionResult",
    "Glitch",
    "LineSample",
    "WiredOrLine",
]

"""Bus arbitration for the timed simulator.

The Futurebus is a single shared resource; when several masters want it,
an arbiter picks who goes next.  The untimed transaction engine does not
need one (callers are already serialized); the discrete-event simulator
uses an arbiter to order queued requests and to model fairness effects.

Two disciplines are provided:

* :class:`FcfsArbiter` -- first come, first served (the default);
* :class:`PriorityArbiter` -- fixed per-master priority with FCFS among
  equals, modeling a priority-slot backplane.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Optional

__all__ = ["ArbitrationRequest", "FcfsArbiter", "PriorityArbiter"]


@dataclasses.dataclass(frozen=True)
class ArbitrationRequest:
    """One master's pending request for bus ownership."""

    master: str
    time: float


class FcfsArbiter:
    """Grant the bus in request order (ties broken by arrival sequence)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ArbitrationRequest]] = []
        self._counter = itertools.count()

    def request(self, master: str, time: float) -> None:
        req = ArbitrationRequest(master, time)
        heapq.heappush(self._heap, (time, next(self._counter), req))

    def grant(self) -> Optional[ArbitrationRequest]:
        """Pop the next request to service, or None if the queue is empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    @property
    def pending(self) -> int:
        return len(self._heap)


class PriorityArbiter(FcfsArbiter):
    """Fixed-priority arbitration (lower number wins); FCFS among equals.

    Priorities default to 100 for masters not explicitly listed, so a
    priority arbiter with an empty table degenerates to FCFS.
    """

    def __init__(self, priorities: Optional[dict[str, int]] = None) -> None:
        super().__init__()
        self.priorities = dict(priorities or {})

    def request(self, master: str, time: float) -> None:
        req = ArbitrationRequest(master, time)
        priority = self.priorities.get(master, 100)
        heapq.heappush(
            self._heap, ((priority, time), next(self._counter), req)  # type: ignore[arg-type]
        )

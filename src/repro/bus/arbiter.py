"""Bus arbitration for the timed simulator.

The Futurebus is a single shared resource; when several masters want it,
an arbiter picks who goes next.  The untimed transaction engine does not
need one (callers are already serialized); the discrete-event simulator
uses an arbiter to order queued requests and to model fairness effects.

Three service disciplines are provided, mirroring the comparative study
of Nikolov & Lerato (arXiv:1004.3560) on bus-arbiter service disciplines:

* :class:`FcfsArbiter` -- first come, first served (the default);
* :class:`PriorityArbiter` -- fixed per-master priority with FCFS among
  equals, modeling a priority-slot backplane;
* :class:`RoundRobinArbiter` -- cyclic service over the masters,
  starvation-free regardless of request rates.

:func:`arbiter_by_name` turns the spec strings used by experiment specs
and the fuzzer's scenario generator (``"fcfs"``, ``"priority"``,
``"priority:io=1,cpu=10"``, ``"round-robin"``) into instances.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections import deque
from typing import Optional, Union

__all__ = [
    "ArbitrationRequest",
    "FcfsArbiter",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "Arbiter",
    "ARBITER_DISCIPLINES",
    "arbiter_by_name",
]


@dataclasses.dataclass(frozen=True)
class ArbitrationRequest:
    """One master's pending request for bus ownership."""

    master: str
    time: float


class FcfsArbiter:
    """Grant the bus in request order (ties broken by arrival sequence)."""

    discipline = "fcfs"

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ArbitrationRequest]] = []
        self._counter = itertools.count()

    def request(self, master: str, time: float) -> None:
        req = ArbitrationRequest(master, time)
        heapq.heappush(self._heap, (time, next(self._counter), req))

    def grant(self) -> Optional[ArbitrationRequest]:
        """Pop the next request to service, or None if the queue is empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    @property
    def pending(self) -> int:
        return len(self._heap)


class PriorityArbiter(FcfsArbiter):
    """Fixed-priority arbitration (lower number wins); FCFS among equals.

    Priorities default to 100 for masters not explicitly listed, so a
    priority arbiter with an empty table degenerates to FCFS.
    """

    discipline = "priority"

    def __init__(self, priorities: Optional[dict[str, int]] = None) -> None:
        super().__init__()
        self.priorities = dict(priorities or {})

    def request(self, master: str, time: float) -> None:
        req = ArbitrationRequest(master, time)
        priority = self.priorities.get(master, 100)
        heapq.heappush(
            self._heap, ((priority, time), next(self._counter), req)  # type: ignore[arg-type]
        )


class RoundRobinArbiter:
    """Cyclic service: after granting a master, every *other* pending
    master is served before that master is granted again.

    Masters join the rotation in first-request order.  Each master keeps
    a FIFO of its own requests, so a master issuing several requests
    still takes exactly one bus tenure per rotation -- the
    starvation-free discipline of the Nikolov & Lerato study.
    """

    discipline = "round-robin"

    def __init__(self) -> None:
        #: Rotation order (masters in first-request order).
        self._rotation: list[str] = []
        #: Per-master FIFO of outstanding requests.
        self._queues: dict[str, deque[ArbitrationRequest]] = {}
        #: Index into the rotation of the next master to consider.
        self._cursor = 0

    def request(self, master: str, time: float) -> None:
        if master not in self._queues:
            self._queues[master] = deque()
            self._rotation.append(master)
        self._queues[master].append(ArbitrationRequest(master, time))

    def grant(self) -> Optional[ArbitrationRequest]:
        if not self._rotation:
            return None
        n = len(self._rotation)
        for offset in range(n):
            index = (self._cursor + offset) % n
            queue = self._queues[self._rotation[index]]
            if queue:
                self._cursor = (index + 1) % n
                return queue.popleft()
        return None

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())


Arbiter = Union[FcfsArbiter, PriorityArbiter, RoundRobinArbiter]

#: The selectable service disciplines, by spec-string name.
ARBITER_DISCIPLINES = ("fcfs", "priority", "round-robin")


def arbiter_by_name(spec: Union[str, Arbiter]) -> Arbiter:
    """Instantiate an arbiter from a discipline spec string.

    Accepts ``"fcfs"``, ``"round-robin"`` (alias ``"rr"``),
    ``"priority"``, and ``"priority:io=1,cpu=10"`` (explicit per-master
    priorities; lower wins).  An arbiter instance passes through
    unchanged, so callers can accept either form.

    >>> arbiter_by_name("round-robin").discipline
    'round-robin'
    >>> arbiter_by_name("priority:io=1").priorities
    {'io': 1}
    """
    if not isinstance(spec, str):
        return spec
    name, _, args = spec.partition(":")
    if name == "fcfs":
        return FcfsArbiter()
    if name in ("round-robin", "rr"):
        return RoundRobinArbiter()
    if name == "priority":
        priorities: dict[str, int] = {}
        if args:
            for item in args.split(","):
                master, _, value = item.partition("=")
                if not master or not value:
                    raise ValueError(
                        f"bad priority entry {item!r} in {spec!r} "
                        "(expected master=level)"
                    )
                priorities[master.strip()] = int(value)
        return PriorityArbiter(priorities)
    known = ", ".join(ARBITER_DISCIPLINES)
    raise ValueError(f"unknown arbitration discipline {spec!r}; known: {known}")

"""The Futurebus transaction engine.

This module implements the *semantics* of one bus transaction against a set
of snooping agents and main memory, exactly as the paper's facilities
provide them (sections 2 and 3.2):

* the address cycle is broadcast: every attached agent snoops every
  transaction and contributes its CH/DI/SL/BS response, combined wired-OR;
* if any agent asserts **BS**, the transaction aborts; the asserting
  agent(s) perform their push (an ordinary write transaction of their own),
  and the original transaction then restarts from scratch;
* on reads, the **DI** agent (the owner) preempts memory and supplies the
  data;
* on non-broadcast writes, the DI agent *captures* the write -- memory is
  not updated (the rest of the owner's line may be newer than memory);
* on broadcast transfers, every **SL** connector updates itself, and so
  does main memory ("when a broadcast write is done on the Futurebus, it
  affects all caches holding the line and also main memory", section 4.2);
* the master finally learns the aggregate (notably CH, resolving its
  ``CH:O/M`` / ``CH:S/E`` conditional result states), and every snooper
  applies its chosen transition.

The engine is deliberately *untimed* at this layer -- a transaction is one
atomic step, which is precisely the abstraction of the paper's tables.  A
:class:`~repro.bus.timing.BusTiming` prices each transaction so the
discrete-event simulator (and the statistics) can account for bus
occupancy, including wasted aborted attempts.
"""

from __future__ import annotations

import abc
from typing import Optional, Protocol as TypingProtocol

from repro.bus.timing import DEFAULT_TIMING, BusTiming
from repro.bus.transaction import Transaction, TransactionResult
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals, ResponseAggregate, SnoopResponse

__all__ = ["BusAgent", "MemoryPort", "BusLivelockError", "Futurebus"]


class BusLivelockError(RuntimeError):
    """A transaction was aborted more times than the retry bound allows.

    With correctly implemented protocols a retried transaction always
    finds the pushing cache in a non-intervenient state, so seeing this
    indicates a protocol bug -- which is exactly what the tests use it
    for.
    """


class MemoryPort(TypingProtocol):
    """What the bus needs from a main-memory module."""

    def read(self, address: int) -> int: ...

    def write(self, address: int, value: int) -> None: ...


class BusAgent(abc.ABC):
    """A snooping board attached to the Futurebus.

    The bus calls these hooks in transaction order:

    1. :meth:`snoop` on every agent except the master -- decide and stash
       a response;
    2. if the aggregate carries BS: :meth:`abort_push` on each BS
       asserter, :meth:`transaction_aborted` on everyone else, then the
       whole transaction restarts (back to 1);
    3. data phase: :meth:`supply_data` on the DI agent (reads),
       :meth:`capture_write` on the DI agent (non-broadcast writes), or
       :meth:`connect_update` on each SL connector (broadcast transfers);
    4. :meth:`finalize` on every snooper with the full wired-OR aggregate,
       at which point stashed state transitions are applied.
    """

    unit_id: str = "agent"

    @abc.abstractmethod
    def snoop(self, txn: Transaction) -> SnoopResponse:
        """Inspect the broadcast address cycle; return response signals."""

    def abort_push(self, txn: Transaction, bus: "Futurebus") -> None:
        """Perform the BS push: issue a write-back via ``bus`` and update
        local state.  Only called if this agent's response asserted BS."""
        raise NotImplementedError(
            f"{self.unit_id} asserted BS but does not implement abort_push"
        )

    def transaction_aborted(self, txn: Transaction) -> None:
        """The observed transaction aborted; discard any stashed action."""

    def supply_data(self, txn: Transaction) -> int:
        """Provide the line data (this agent asserted DI on a read)."""
        raise NotImplementedError(
            f"{self.unit_id} asserted DI but does not implement supply_data"
        )

    def capture_write(self, txn: Transaction) -> None:
        """Absorb a non-broadcast write (this agent asserted DI)."""
        raise NotImplementedError(
            f"{self.unit_id} asserted DI but does not implement capture_write"
        )

    def connect_update(self, txn: Transaction) -> None:
        """Update own copy from a broadcast transfer (SL asserted)."""

    def finalize(self, txn: Transaction, aggregate: ResponseAggregate) -> None:
        """Apply the stashed state transition, now that CH etc. are known."""


class Futurebus:
    """The shared backplane: agents + memory + the transaction engine."""

    def __init__(
        self,
        memory: MemoryPort,
        timing: Optional[BusTiming] = None,
        max_retries: int = 8,
        stats: Optional[object] = None,
        trace: Optional[list] = None,
    ) -> None:
        self.memory = memory
        self.timing = timing or DEFAULT_TIMING
        self.max_retries = max_retries
        self.stats = stats
        #: Optional transaction log: (Transaction, TransactionResult) pairs.
        self.trace = trace
        #: Optional structured-trace hook, called as ``observer(txn,
        #: result)`` for every completed transaction --
        #: :meth:`repro.obs.trace.Tracer.bus_transaction` subscribes here.
        self.observer = None
        self._agents: dict[str, BusAgent] = {}
        #: master id -> every *other* agent, rebuilt on attach/detach.
        #: ``execute`` runs once per memory reference; recomputing the
        #: snooper list there was a measurable slice of the DES hot path.
        self._snoopers: dict[str, tuple[BusAgent, ...]] = {}
        self._serial = 0
        self.busy_ns = 0.0

    # ------------------------------------------------------------------
    def attach(self, agent: BusAgent) -> None:
        if agent.unit_id in self._agents:
            raise ValueError(f"duplicate unit id {agent.unit_id!r}")
        self._agents[agent.unit_id] = agent
        self._snoopers.clear()

    def detach(self, unit_id: str) -> None:
        self._agents.pop(unit_id, None)
        self._snoopers.clear()

    def _snoopers_for(self, master: str) -> tuple[BusAgent, ...]:
        snoopers = self._snoopers.get(master)
        if snoopers is None:
            snoopers = tuple(
                a for a in self._agents.values() if a.unit_id != master
            )
            self._snoopers[master] = snoopers
        return snoopers

    @property
    def agents(self) -> tuple[BusAgent, ...]:
        return tuple(self._agents.values())

    def agent(self, unit_id: str) -> BusAgent:
        return self._agents[unit_id]

    # ------------------------------------------------------------------
    def execute(
        self,
        master: str,
        address: int,
        signals: MasterSignals,
        op: BusOp,
        value: Optional[int] = None,
        words: Optional[int] = None,
    ) -> TransactionResult:
        """Run one transaction to completion (including aborts/retries)."""
        if op is BusOp.READ_THEN_WRITE:
            raise ValueError(
                "Read>Write is two transactions; the controller must issue "
                "them separately"
            )
        self._serial += 1
        txn = Transaction(
            master=master,
            address=address,
            signals=signals,
            op=op,
            value=value,
            serial=self._serial,
        )
        duration = 0.0

        snoopers = self._snoopers_for(master)
        while True:
            responses = [a.snoop(txn) for a in snoopers]
            aggregate = ResponseAggregate.of(responses)

            if aggregate.bs:
                if txn.retries >= self.max_retries:
                    raise BusLivelockError(
                        f"{txn.describe()} aborted {txn.retries} times"
                    )
                duration += self.timing.abort_ns()
                pushers = [
                    a
                    for a, response in zip(snoopers, responses)
                    if response.bs
                ]
                for agent in snoopers:
                    if agent not in pushers:
                        agent.transaction_aborted(txn)
                for agent in pushers:
                    agent.abort_push(txn, self)
                txn.retries += 1
                continue
            break

        value, supplier, connectors = self._data_phase(
            txn, snoopers, responses, aggregate
        )
        duration += self.timing.transaction_ns(
            txn.op,
            txn.signals,
            intervened=aggregate.di,
            words=words,
            connectors=len(connectors),
        )
        result = TransactionResult(
            aggregate=aggregate,
            value=value,
            supplier=supplier,
            retries=txn.retries,
            connectors=connectors,
            duration_ns=duration,
        )
        self.busy_ns += duration
        if self.stats is not None:
            self.stats.record_transaction(txn, result)
        if self.trace is not None:
            self.trace.append((txn, result))
        if self.observer is not None:
            self.observer(txn, result)
        return result

    # ------------------------------------------------------------------
    def _data_phase(
        self,
        txn: Transaction,
        snoopers: tuple[BusAgent, ...],
        responses: list[SnoopResponse],
        aggregate: ResponseAggregate,
    ) -> tuple[Optional[int], Optional[str], tuple[str, ...]]:
        """Move the data; returns ``(value, supplier, connectors)``.

        ``execute`` folds these into the single final
        :class:`TransactionResult` once the duration is known."""
        supplier: Optional[str] = None
        value: Optional[int] = txn.value
        connectors: list[str] = []

        di_agents: list[BusAgent] = []
        sl_agents: list[BusAgent] = []
        for agent, response in zip(snoopers, responses):
            if response.di:
                di_agents.append(agent)
            if response.sl:
                sl_agents.append(agent)

        if len(di_agents) > 1:
            names = ", ".join(a.unit_id for a in di_agents)
            raise RuntimeError(
                f"{txn.describe()}: multiple intervenient responders ({names}) "
                "-- single-owner invariant broken on the bus"
            )

        if txn.op is BusOp.READ:
            if di_agents:
                supplier = di_agents[0].unit_id
                value = di_agents[0].supply_data(txn)
            else:
                supplier = "memory"
                value = self.memory.read(txn.address)
            txn.value = value
        elif txn.op is BusOp.WRITE:
            if value is None:
                raise ValueError(f"{txn.describe()}: write without data")
            broadcast = txn.signals.bc
            if broadcast or sl_agents:
                # Multi-party transfer: memory and every connector update.
                self.memory.write(txn.address, value)
                for agent in sl_agents:
                    agent.connect_update(txn)
                    connectors.append(agent.unit_id)
                if di_agents:
                    # An owner responding DI to a broadcast is a protocol
                    # bug; owners connect via SL on broadcasts.
                    raise RuntimeError(
                        f"{txn.describe()}: DI asserted on broadcast write"
                    )
            elif di_agents:
                # The owner captures; memory is deliberately not updated.
                di_agents[0].capture_write(txn)
                supplier = di_agents[0].unit_id
            else:
                self.memory.write(txn.address, value)
        # BusOp.NONE: address-only (invalidate); no data moves.

        for agent in snoopers:
            agent.finalize(txn, aggregate)

        return (
            value if txn.op is BusOp.READ else None,
            supplier,
            tuple(connectors),
        )

"""The Futurebus broadcast address handshake (paper section 2.1-2.2).

Every address cycle is broadcast to all subsystems.  The three-wire
protocol of Figure 2:

1. the master places the address on the AD lines, then asserts **AS***
   (address strobe);
2. every other module asserts **AK*** (address acknowledge) immediately,
   and holds **AI*** (address acknowledge inverse) asserted;
3. each module releases AI* only once it is finished with the address --
   for a cache, after the directory lookup and any CH/DI/SL/BS response;
4. AI* is wired-OR, so it rises only when *all* modules have released it;
   only then may the master remove the address.

Because the AI* rise is a multi-driver release, it suffers the wired-OR
glitch and must pass the 25 ns inertial filter; that is the "broadcast
handshakes are 25 ns slower" penalty quantified in
:class:`repro.bus.timing.BusTiming` and reproduced as Figure 1/2.

:func:`run_address_handshake` runs one handshake over explicit
:class:`~repro.bus.wired_or.WiredOrLine` instances and returns the full
signal history, so the figure generator can print the waveform and the
timing model can be cross-checked against it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.bus.wired_or import WiredOrLine

__all__ = ["SlaveTiming", "HandshakeTrace", "run_address_handshake"]


@dataclasses.dataclass(frozen=True)
class SlaveTiming:
    """Per-slave delays for one handshake, in nanoseconds.

    ``ack_delay`` -- from seeing AS* to asserting AK*;
    ``done_delay`` -- from seeing AS* to releasing AI* (directory lookup,
    consistency response decision, etc.).
    """

    name: str
    ack_delay: float = 5.0
    done_delay: float = 30.0
    #: Backplane slot position, for wired-OR glitch geometry.
    position: float = 0.0


@dataclasses.dataclass
class HandshakeTrace:
    """Everything observable about one completed address handshake."""

    lines: dict[str, WiredOrLine]
    address_valid_from: float
    as_asserted_at: float
    ai_released_at: float
    ai_observed_high_at: float
    address_removed_at: float
    complete_at: float
    glitch_count: int

    @property
    def duration(self) -> float:
        return self.complete_at - self.address_valid_from


def run_address_handshake(
    slaves: Sequence[SlaveTiming],
    address_setup: float = 5.0,
    filter_window: float = 25.0,
    start_time: float = 0.0,
) -> HandshakeTrace:
    """Simulate one broadcast address cycle and return its trace.

    All modules participate (the broadcast requirement): the handshake
    completes when the slowest slave has released AI* *and* the release
    has survived the inertial filter.
    """
    if not slaves:
        raise ValueError("a broadcast handshake needs at least one slave")

    positions = {s.name: s.position for s in slaves}
    positions["master"] = 0.0
    as_line = WiredOrLine("AS*", positions, filter_window)
    ak_line = WiredOrLine("AK*", positions, filter_window)
    ai_line = WiredOrLine("AI*", positions, filter_window)
    ad_line = WiredOrLine("AD", positions, filter_window)  # address valid

    t0 = start_time
    # Idle condition: all slaves hold AI* asserted ("arrange to have them
    # all pulling the signal low initially and wait for it to go high").
    for slave in slaves:
        ai_line.assert_(slave.name, t0)

    # 1. Master drives the address, then strobes.
    ad_line.assert_("master", t0)
    as_time = t0 + address_setup
    as_line.assert_("master", as_time)

    # 2-3. Slaves acknowledge, then release AI* when done.  Releases are
    # fed in time order so the wired-OR model sees a valid sequence.
    for slave in sorted(slaves, key=lambda s: s.ack_delay):
        ak_line.assert_(slave.name, as_time + slave.ack_delay)
    releases = sorted(slaves, key=lambda s: s.done_delay)
    for slave in releases:
        ai_line.release(slave.name, as_time + slave.done_delay)

    ai_released_at = as_time + releases[-1].done_delay
    # 4. The release must pass the asymmetric inertial filter before the
    # master may believe it.
    ai_observed = ai_line.release_observed_time(ai_released_at)

    # Master removes the address and releases AS*.
    ad_line.release("master", ai_observed)
    as_line.release("master", ai_observed)
    for slave in slaves:
        ak_line.release(slave.name, ai_observed + 1.0)

    return HandshakeTrace(
        lines={"AD": ad_line, "AS*": as_line, "AK*": ak_line, "AI*": ai_line},
        address_valid_from=t0,
        as_asserted_at=as_time,
        ai_released_at=ai_released_at,
        ai_observed_high_at=ai_observed,
        address_removed_at=ai_observed,
        complete_at=ai_observed + 1.0,
        glitch_count=len(ai_line.glitches),
    )

"""Bus timing model: how long each transaction occupies the Futurebus.

The paper gives one hard number -- broadcast handshaking costs 25 ns over
single-slave transactions (the wired-OR glitch filter, section 2.2) -- and
describes the structure of a transaction: one broadcast address cycle in
which every module participates, followed by data cycles in which "only
those units participating need monitor ... which can therefore proceed at
a high rate" (section 2.3).

Remaining parameters are configurable; the defaults are chosen to be
representative of a mid-1980s high-performance backplane and, more
importantly, to preserve the *relative* costs the paper's performance
discussion leans on (section 5.2: "the preferred protocol is sensitive to
the implementation of the bus, the memory and the caches").
"""

from __future__ import annotations

import dataclasses

from repro.core.actions import BusOp
from repro.core.signals import MasterSignals

__all__ = ["BusTiming", "DEFAULT_TIMING"]


@dataclasses.dataclass(frozen=True)
class BusTiming:
    """All durations in nanoseconds."""

    #: Bus arbitration before the transaction may start.
    arbitration_ns: float = 20.0
    #: Broadcast address cycle (all modules handshake AS*/AK*/AI*).
    address_cycle_ns: float = 75.0
    #: Extra inertial-filter delay whenever a *data* transfer is broadcast
    #: (multi-party connection; the paper's 25 ns wired-OR penalty).
    broadcast_surcharge_ns: float = 25.0
    #: One data beat (one word) on the parallel data path.
    data_beat_ns: float = 50.0
    #: First-word access latency of a main-memory slave.
    memory_latency_ns: float = 200.0
    #: First-word latency when an intervenient cache supplies the data
    #: (faster than memory: the line is already in SRAM).
    intervention_latency_ns: float = 100.0
    #: Lost time when a transaction is aborted via BS (handshake wasted,
    #: plus re-arbitration before the retry).
    abort_penalty_ns: float = 40.0
    #: Words per cache line transferred on line fills and write-backs.
    words_per_line: int = 4

    def transaction_ns(
        self,
        op: BusOp,
        signals: MasterSignals,
        *,
        intervened: bool = False,
        words: int | None = None,
        connectors: int = 0,
    ) -> float:
        """Duration of one (non-aborted) transaction.

        ``words`` defaults to a full line for cache-master transfers and a
        single word for uncached/write-through accesses.  ``connectors``
        is the number of third parties that SL-connected; any connection
        makes the data phase a broadcast transfer.
        """
        if words is None:
            words = self.words_per_line if signals.ca else 1
        total = self.arbitration_ns + self.address_cycle_ns
        if op is BusOp.NONE:
            # Address-only invalidate: no data phase at all.
            return total
        if op is BusOp.READ:
            total += (
                self.intervention_latency_ns
                if intervened
                else self.memory_latency_ns
            )
        total += words * self.data_beat_ns
        if signals.bc or connectors > 0:
            total += self.broadcast_surcharge_ns
        return total

    def abort_ns(self) -> float:
        """Time burned by one aborted attempt (before its push + retry)."""
        return self.arbitration_ns + self.address_cycle_ns + self.abort_penalty_ns


DEFAULT_TIMING = BusTiming()

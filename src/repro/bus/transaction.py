"""Bus transactions and their observable results."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.actions import BusOp
from repro.core.events import BusEvent
from repro.core.signals import MasterSignals, ResponseAggregate

__all__ = ["Transaction", "TransactionResult"]


@dataclasses.dataclass(slots=True)
class Transaction:
    """One bus transaction: a broadcast address cycle plus a data phase.

    ``value`` carries the written data token on writes (the reproduction
    tracks line data as opaque version tokens, which is all coherence
    checking needs); on reads it is filled in by the supplier.
    """

    master: str
    address: int
    signals: MasterSignals
    op: BusOp
    value: Optional[int] = None
    retries: int = 0
    #: Sequence number assigned by the bus, for tracing.
    serial: int = 0
    #: How snooping third parties classify this transaction.  Computed
    #: once at construction (``signals`` never changes after that):
    #: every snooper on every retry reads it, so recomputing the signal
    #: classification per access was pure hot-path waste.
    event: BusEvent = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        self.event = BusEvent.from_signals(self.signals)

    def describe(self) -> str:
        op = self.op.value or "addr-only"
        return (
            f"#{self.serial} {self.master} {self.signals.notation()} "
            f"{op} @0x{self.address:x}"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


@dataclasses.dataclass(frozen=True, slots=True)
class TransactionResult:
    """Outcome of a completed (possibly retried) transaction."""

    aggregate: ResponseAggregate
    #: Data returned to the master on reads (None for writes/addr-only).
    value: Optional[int]
    #: Unit that supplied read data ("memory" or a cache's unit id).
    supplier: Optional[str]
    #: Number of BS aborts suffered before completion.
    retries: int
    #: Third parties that SL-connected to the data phase.
    connectors: tuple[str, ...] = ()
    #: Total bus occupancy in nanoseconds (aborts + pushes + final try).
    duration_ns: float = 0.0

    @property
    def shared(self) -> bool:
        """CH observed: some other cache retains a copy."""
        return self.aggregate.ch

    @property
    def intervened(self) -> bool:
        return self.aggregate.di

"""Timed model of an open-collector (wired-OR) backplane line.

Paper section 2.2: every Futurebus signal is open-collector driven and
passively terminated -- "drive low, float high".  Any single driver can
hold the line asserted (low); the line only rises once *all* drivers have
let go.  This gives the two broadcast idioms the consistency protocols
rely on:

* to learn when the *first* module reaches a state, have it pull the line
  low;
* to learn when *all* modules have reached a state, have them all pull the
  line low initially and wait for it to rise.

The model also reproduces the **wired-OR glitch**: when one driver
releases a line still asserted by another, the sink current redistributes
and a short spurious high pulse appears on the line.  The deterministic
fix is an asymmetric inertial delay (low-pass filter) on the receiver:
high levels shorter than the filter window are ignored.  The exacted
penalty is that broadcast handshakes are 25 ns slower than single-slave
transactions (see :class:`repro.bus.timing.BusTiming`).

Levels use positive logic for readability: ``True`` = asserted (electrically
low), ``False`` = released (electrically high).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

__all__ = ["LineSample", "Glitch", "WiredOrLine"]


@dataclasses.dataclass(frozen=True)
class LineSample:
    """One edge in a line's history: at ``time`` the line became ``asserted``."""

    time: float
    asserted: bool


@dataclasses.dataclass(frozen=True)
class Glitch:
    """A wired-OR glitch: a spurious release pulse.

    ``duration`` and ``amplitude`` model the physical description: both
    grow with the backplane distance between the releasing driver and the
    driver left sinking the current, and with the released current.
    """

    time: float
    releasing_driver: str
    remaining_driver: str
    duration: float
    amplitude: float


class WiredOrLine:
    """An open-collector line with named drivers and a recorded history.

    Drivers assert and release at explicit times; times must be fed in
    non-decreasing order (the simulator guarantees this).  The *observed*
    level applies the receiver's inertial filter: glitches and released
    pulses shorter than ``filter_window`` never reach the observer.
    """

    def __init__(
        self,
        name: str,
        driver_positions: Optional[dict[str, float]] = None,
        filter_window: float = 25.0,
    ) -> None:
        self.name = name
        #: Backplane slot positions (arbitrary units) for glitch geometry.
        self.driver_positions = dict(driver_positions or {})
        self.filter_window = filter_window
        self._asserting: set[str] = set()
        self._history: list[LineSample] = [LineSample(0.0, False)]
        self._glitches: list[Glitch] = []
        self._last_time = 0.0

    # ------------------------------------------------------------------
    def _check_time(self, time: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"line {self.name}: time went backwards "
                f"({time} < {self._last_time})"
            )
        self._last_time = time

    def assert_(self, driver: str, time: float) -> None:
        """Driver turns its open-collector transistor on (pulls low)."""
        self._check_time(time)
        was_asserted = bool(self._asserting)
        self._asserting.add(driver)
        if not was_asserted:
            self._history.append(LineSample(time, True))

    def release(self, driver: str, time: float) -> None:
        """Driver lets go.  The line rises only if no one else is driving;
        otherwise a wired-OR glitch is recorded."""
        self._check_time(time)
        if driver not in self._asserting:
            return
        self._asserting.discard(driver)
        if self._asserting:
            remaining = min(self._asserting)  # deterministic pick
            distance = abs(
                self.driver_positions.get(driver, 0.0)
                - self.driver_positions.get(remaining, 0.0)
            )
            self._glitches.append(
                Glitch(
                    time=time,
                    releasing_driver=driver,
                    remaining_driver=remaining,
                    # Simple linear models: enough to make geometry and
                    # current visible in the figure reproduction.
                    duration=1.0 + 0.5 * distance,
                    amplitude=0.1 + 0.05 * distance,
                )
            )
        else:
            self._history.append(LineSample(time, False))

    # ------------------------------------------------------------------
    @property
    def asserted(self) -> bool:
        """Raw (unfiltered) line level right now."""
        return bool(self._asserting)

    @property
    def asserting_drivers(self) -> frozenset[str]:
        return frozenset(self._asserting)

    @property
    def history(self) -> tuple[LineSample, ...]:
        return tuple(self._history)

    @property
    def glitches(self) -> tuple[Glitch, ...]:
        return tuple(self._glitches)

    def raw_level_at(self, time: float) -> bool:
        """Raw line level at ``time`` (ignoring the inertial filter)."""
        level = False
        for sample in self._history:
            if sample.time > time:
                break
            level = sample.asserted
        return level

    def observed_level_at(self, time: float) -> bool:
        """Level after the asymmetric inertial filter.

        The filter is asymmetric: falling edges (assertions) pass
        immediately, but a rise (release) is only believed once the line
        has stayed released for ``filter_window``.  This is what makes
        broadcast handshakes deterministic despite wired-OR glitches --
        and what costs the extra 25 ns.
        """
        level = False
        pending_release: Optional[float] = None
        for sample in self._history:
            if sample.time > time:
                break
            if sample.asserted:
                level = True
                pending_release = None
            else:
                pending_release = sample.time
        if level and pending_release is not None:
            if time - pending_release >= self.filter_window:
                level = False
        return level

    def release_observed_time(self, release_time: float) -> float:
        """When a release occurring at ``release_time`` becomes visible."""
        return release_time + self.filter_window

    def rose_clean(self) -> bool:
        """Whether the last release happened with no glitch after it."""
        if self.asserted:
            return False
        if not self._glitches:
            return True
        last_edge = self._history[-1].time
        return all(g.time <= last_edge for g in self._glitches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "asserted" if self.asserted else "released"
        return f"<WiredOrLine {self.name} {state} drivers={sorted(self._asserting)}>"


def all_released(lines: Iterable[WiredOrLine]) -> bool:
    """Whether every given line has been fully released."""
    return all(not line.asserted for line in lines)

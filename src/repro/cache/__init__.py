"""Cache substrate: lines, replacement, set-associative directory, and the
snooping controller."""

from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import (
    CacheController,
    ControllerStats,
    NonCachingMaster,
)
from repro.cache.line import CacheLine
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    replacement_by_name,
)

__all__ = [
    "SetAssociativeCache",
    "CacheController",
    "ControllerStats",
    "NonCachingMaster",
    "CacheLine",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "replacement_by_name",
]

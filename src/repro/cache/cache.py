"""Set-associative cache directory and data store.

Geometry follows the classic decomposition: a byte address maps to a line
address (``byte // line_size``), the line address to a set
(``line % num_sets``) and a tag (``line // num_sets``).  The paper's
section 5.1 requires the line size to be uniform system-wide; the
:mod:`repro.ext.linesize` demonstrator shows what breaks when it is not.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.line import CacheLine
from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.core.states import LineState

__all__ = ["SetAssociativeCache"]

_INVALID = LineState.INVALID


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssociativeCache:
    """Tags, states and data tokens for one cache.

    The controller drives it; the cache itself knows nothing about the
    protocol beyond storing each line's :class:`LineState`.
    """

    def __init__(
        self,
        num_sets: int = 64,
        associativity: int = 2,
        line_size: int = 32,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        if not _is_power_of_two(num_sets):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if not _is_power_of_two(line_size):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if associativity < 1:
            raise ValueError("associativity must be at least 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self.line_size = line_size
        self.replacement = replacement or LruPolicy(num_sets, associativity)
        if (
            self.replacement.num_sets != num_sets
            or self.replacement.associativity != associativity
        ):
            raise ValueError("replacement policy geometry mismatch")
        self._sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(associativity)] for _ in range(num_sets)
        ]

    # ------------------------------------------------------------------
    # Address arithmetic.
    # ------------------------------------------------------------------
    def line_address(self, byte_address: int) -> int:
        return byte_address // self.line_size

    def set_index(self, line_address: int) -> int:
        return line_address % self.num_sets

    def tag(self, line_address: int) -> int:
        return line_address // self.num_sets

    def address_of(self, set_index: int, tag: int) -> int:
        """Reconstruct the line address held by (set, tag)."""
        return tag * self.num_sets + set_index

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.associativity * self.line_size

    # ------------------------------------------------------------------
    # Lookup and allocation.
    # ------------------------------------------------------------------
    def lookup(self, line_address: int) -> Optional[tuple[int, int, CacheLine]]:
        """Find a valid line; returns (set_index, way, line) or None.

        Every processor reference and every snooped transaction probes
        here, so the loop stays free of property/method dispatch: the
        tag compare comes first (a plain attribute), and validity is an
        identity test against INVALID rather than the ``valid``
        property chain.
        """
        tag, set_index = divmod(line_address, self.num_sets)
        invalid = _INVALID
        for way, line in enumerate(self._sets[set_index]):
            if line.tag == tag and line.state is not invalid:
                return set_index, way, line
        return None

    def probe_state(self, line_address: int) -> LineState:
        """The directory's answer during snooping: the line's state
        (INVALID when not present)."""
        found = self.lookup(line_address)
        return found[2].state if found else LineState.INVALID

    def touch(self, set_index: int, way: int) -> None:
        self.replacement.touch(set_index, way)

    def recency(self, set_index: int, way: int) -> float:
        return self.replacement.recency(set_index, way)

    def choose_victim(self, line_address: int) -> tuple[int, int, CacheLine]:
        """Pick the way a fill of ``line_address`` will (re)use.

        Prefers an invalid way; otherwise defers to the replacement
        policy.  Does not modify anything -- the controller first evicts
        the victim (possibly writing it back), then calls :meth:`fill`.
        """
        set_index = self.set_index(line_address)
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if not line.valid:
                return set_index, way, line
        way = self.replacement.victim(set_index, range(self.associativity))
        return set_index, way, ways[way]

    def fill(
        self,
        line_address: int,
        state: LineState,
        value: int,
        way: Optional[int] = None,
    ) -> tuple[int, int, CacheLine]:
        """Install ``line_address`` in the given (or chosen) way."""
        set_index = self.set_index(line_address)
        if way is None:
            set_index, way, _ = self.choose_victim(line_address)
        line = self._sets[set_index][way]
        line.tag = self.tag(line_address)
        line.state = state
        line.value = value
        self.replacement.fill(set_index, way)
        return set_index, way, line

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def valid_lines(self) -> Iterator[tuple[int, CacheLine]]:
        """Yield (line_address, line) for every valid line."""
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    yield self.address_of(set_index, line.tag), line

    def occupancy(self) -> int:
        return sum(1 for _ in self.valid_lines())

    def ways_of(self, set_index: int) -> tuple[CacheLine, ...]:
        return tuple(self._sets[set_index])

    def __contains__(self, line_address: int) -> bool:
        return self.lookup(line_address) is not None

"""The snooping cache controller: where protocol, cache and bus meet.

A controller serves its processor's reads and writes against its local
:class:`~repro.cache.cache.SetAssociativeCache`, consults its
:class:`~repro.core.protocol.Protocol` for every local event and every
snooped bus event, and issues/answers Futurebus transactions accordingly.

The paper's central requirement (section 2.1) is honored structurally:
every controller participates in every broadcast address cycle -- the bus
calls :meth:`CacheController.snoop` for each transaction, the controller
checks its directory for a hit and contributes its CH/DI/SL/BS response
before the address cycle may complete.

Execution of one local event covers all the shapes Table 1 can produce:

* silent hits (no bus activity);
* a single read or write transaction, with the master's conditional result
  state (``CH:S/E``, ``CH:O/M``) resolved from the observed CH line;
* address-only invalidates (IM without a data phase);
* ``Read>Write`` -- two chained transactions, the write chosen by the
  protocol *from the state the read landed in*;
* allocation with eviction, where the victim line is flushed through the
  protocol's own FLUSH action (write-back if owned, silent drop if not).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional

from repro.bus.futurebus import BusAgent, Futurebus
from repro.bus.transaction import Transaction
from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.core.actions import BusOp, LocalAction, SnoopAction, resolve_next_state
from repro.core.events import LocalEvent
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    ProtocolGapError,
    SnoopContext,
)
from repro.core.signals import MasterSignals, ResponseAggregate, SnoopResponse
from repro.core.states import LineState

__all__ = ["ControllerStats", "CacheController", "NonCachingMaster"]


@dataclasses.dataclass
class ControllerStats:
    """Per-controller event counters."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_backs: int = 0
    evictions: int = 0
    invalidations_received: int = 0
    updates_received: int = 0
    interventions_supplied: int = 0
    writes_captured: int = 0
    abort_pushes: int = 0
    bus_transactions: int = 0
    #: Hits keyed by the MOESI state letter the line was found in -- the
    #: per-state breakdown section 5.2's analysis needs.
    hits_by_state: Counter = dataclasses.field(default_factory=Counter)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def miss_ratio(self) -> float:
        return 0.0 if not self.accesses else 1 - self.hits / self.accesses

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            if field.name == "hits_by_state":
                self.hits_by_state.clear()
            else:
                setattr(self, field.name, 0)


@dataclasses.dataclass
class _PendingSnoop:
    """The snoop decision stashed between address cycle and finalize."""

    serial: int
    line: CacheLine
    action: SnoopAction
    was_valid: bool


class CacheController(BusAgent):
    """A caching board: processor port on one side, Futurebus on the other."""

    def __init__(
        self,
        unit_id: str,
        protocol: Protocol,
        cache: Optional[SetAssociativeCache] = None,
        bus: Optional[Futurebus] = None,
    ) -> None:
        self.unit_id = unit_id
        self.protocol = protocol
        self.cache = cache or SetAssociativeCache()
        self.stats = ControllerStats()
        self._seq = 0
        self._pending: Optional[_PendingSnoop] = None
        self.bus: Optional[Futurebus] = None
        #: Optional hook called as ``observer(unit_id, side, state, event,
        #: action)`` for every protocol decision this board takes --
        #: ``side`` is ``"local"`` or ``"snoop"``.  The fuzzer's
        #: differential oracle subscribes here to cross-check each observed
        #: transition against the canonical tables.
        self.transition_observer = None
        #: Optional structured-trace hook with the same signature --
        #: :meth:`repro.obs.trace.Tracer.transition` subscribes here.  Kept
        #: separate from :attr:`transition_observer` so tracing a fuzzed
        #: run never displaces the oracle.
        self.trace_observer = None
        if bus is not None:
            self.attach_to(bus)

    def attach_to(self, bus: Futurebus) -> None:
        self.bus = bus
        bus.attach(self)

    def _require_bus(self) -> Futurebus:
        if self.bus is None:
            raise RuntimeError(f"{self.unit_id} is not attached to a bus")
        return self.bus

    def _next_ctx(self, address: int) -> LocalContext:
        self._seq += 1
        return LocalContext(address=address, sequence=self._seq)

    def _choose_local(
        self, state: LineState, event: LocalEvent, ctx: LocalContext
    ) -> LocalAction:
        """Consult the protocol for a local event, notifying the observer."""
        action = self.protocol.local_action(state, event, ctx)
        if self.transition_observer is not None:
            self.transition_observer(self.unit_id, "local", state, event, action)
        if self.trace_observer is not None:
            self.trace_observer(self.unit_id, "local", state, event, action)
        return action

    # ------------------------------------------------------------------
    # Processor port.
    # ------------------------------------------------------------------
    def read(self, byte_address: int) -> int:
        """Processor load; returns the line's data token."""
        line_address = self.cache.line_address(byte_address)
        self.stats.reads += 1
        found = self.cache.lookup(line_address)
        if found is not None:
            set_index, way, line = found
            self.stats.read_hits += 1
            self.stats.hits_by_state[line.state.letter] += 1
            action = self._choose_local(
                line.state, LocalEvent.READ, self._next_ctx(line_address)
            )
            self._apply_silent(line, action)
            self.cache.touch(set_index, way)
            return line.value
        self.stats.read_misses += 1
        action = self._choose_local(
            LineState.INVALID, LocalEvent.READ, self._next_ctx(line_address)
        )
        return self._run_local_action(
            line_address, LocalEvent.READ, action, new_value=None
        )

    def write(self, byte_address: int, value: int) -> None:
        """Processor store of data token ``value``."""
        line_address = self.cache.line_address(byte_address)
        self.stats.writes += 1
        found = self.cache.lookup(line_address)
        if found is not None:
            set_index, way, line = found
            self.stats.write_hits += 1
            self.stats.hits_by_state[line.state.letter] += 1
            action = self._choose_local(
                line.state, LocalEvent.WRITE, self._next_ctx(line_address)
            )
            self._run_local_action(
                line_address, LocalEvent.WRITE, action, new_value=value
            )
            self.cache.touch(set_index, way)
            return
        self.stats.write_misses += 1
        action = self._choose_local(
            LineState.INVALID, LocalEvent.WRITE, self._next_ctx(line_address)
        )
        self._run_local_action(
            line_address, LocalEvent.WRITE, action, new_value=value
        )

    def flush_line(self, line_address: int) -> None:
        """Evict a specific line (push it first if owned)."""
        found = self.cache.lookup(line_address)
        if found is None:
            return
        self._evict(found[2], line_address)

    def clean_line(self, line_address: int) -> None:
        """Proactively push a dirty line but keep the copy (PASS)."""
        found = self.cache.lookup(line_address)
        if found is None:
            return
        line = found[2]
        try:
            action = self._choose_local(
                line.state, LocalEvent.PASS, self._next_ctx(line_address)
            )
        except IllegalTransitionError:
            return  # nothing to push (clean states have no PASS entry)
        self._run_local_action(line_address, LocalEvent.PASS, action, None)

    # ------------------------------------------------------------------
    # Local-action execution.
    # ------------------------------------------------------------------
    def _apply_silent(self, line: CacheLine, action: LocalAction) -> None:
        if not action.is_silent:
            raise AssertionError(
                f"{self.unit_id}: hit action expected silent, got {action}"
            )
        next_state = resolve_next_state(action.next_state, ch_observed=False)
        line.state = next_state

    def _run_local_action(
        self,
        line_address: int,
        event: LocalEvent,
        action: LocalAction,
        new_value: Optional[int],
    ) -> int:
        """Execute one Table-1 action to completion; returns the data token
        the processor observes."""
        found = self.cache.lookup(line_address)
        line = found[2] if found else None

        if action.bus_op is BusOp.READ_THEN_WRITE:
            return self._read_then_write(line_address, action, new_value)

        if action.is_silent:
            # Silent transitions require the line to be present unless the
            # result is invalid (e.g. a clean drop).
            next_state = resolve_next_state(action.next_state, False)
            if line is None:
                if next_state.valid:
                    raise AssertionError(
                        f"{self.unit_id}: silent transition to {next_state} "
                        "without a cached line"
                    )
                return new_value if new_value is not None else 0
            if next_state.valid:
                line.state = next_state
                if event is LocalEvent.WRITE:
                    assert new_value is not None
                    line.value = new_value
            else:
                line.invalidate()
            return line.value

        # A bus transaction is required.
        bus = self._require_bus()
        op = action.bus_op
        wire_value: Optional[int] = None
        if op is BusOp.WRITE:
            if event is LocalEvent.WRITE:
                assert new_value is not None
                wire_value = new_value
            else:
                # PASS/FLUSH push the line's current contents.
                assert line is not None
                wire_value = line.value
        result = bus.execute(
            self.unit_id,
            line_address,
            action.signals,
            op if op is not BusOp.NONE else BusOp.NONE,
            wire_value,
        )
        self.stats.bus_transactions += 1
        resolved = resolve_next_state(action.next_state, result.aggregate.ch)

        # Determine the data token the processor/line ends up with: a local
        # write always ends with the newly written value (even when the bus
        # part was an address-only invalidate or a read-for-ownership whose
        # fetched data is immediately overwritten); a read ends with the
        # supplied data; pushes keep the line's own contents.
        if event is LocalEvent.WRITE:
            token = new_value
        elif op is BusOp.READ:
            assert result.value is not None
            token = result.value
        else:
            token = line.value if line is not None else 0

        if resolved.valid:
            if line is None:
                line = self._install(line_address, resolved, token)
            else:
                line.state = resolved
                line.value = token  # type: ignore[assignment]
        elif line is not None:
            line.invalidate()
        if event in (LocalEvent.PASS, LocalEvent.FLUSH):
            self.stats.write_backs += 1
        assert token is not None
        return token

    def _read_then_write(
        self,
        line_address: int,
        action: LocalAction,
        new_value: Optional[int],
    ) -> int:
        """Two transactions: a read (landing per the action's conditional
        state), then the protocol's write action from that state."""
        assert new_value is not None, "Read>Write only arises from writes"
        bus = self._require_bus()
        result = bus.execute(
            self.unit_id, line_address, action.signals, BusOp.READ, None
        )
        self.stats.bus_transactions += 1
        landed = resolve_next_state(action.next_state, result.aggregate.ch)
        assert result.value is not None
        if landed.valid:
            self._install(line_address, landed, result.value)
        write_action = self._choose_local(
            landed, LocalEvent.WRITE, self._next_ctx(line_address)
        )
        if write_action.bus_op is BusOp.READ_THEN_WRITE:
            raise AssertionError(
                f"{self.protocol.name}: Read>Write may not chain into "
                "another Read>Write"
            )
        return self._run_local_action(
            line_address, LocalEvent.WRITE, write_action, new_value
        )

    # ------------------------------------------------------------------
    # Allocation and eviction.
    # ------------------------------------------------------------------
    def _install(
        self, line_address: int, state: LineState, value: int
    ) -> CacheLine:
        set_index, way, victim = self.cache.choose_victim(line_address)
        if victim.valid:
            victim_address = self.cache.address_of(set_index, victim.tag)
            self._evict(victim, victim_address)
            self.stats.evictions += 1
        _, _, line = self.cache.fill(line_address, state, value, way=way)
        return line

    def _evict(self, line: CacheLine, line_address: int) -> None:
        action = self._choose_local(
            line.state, LocalEvent.FLUSH, self._next_ctx(line_address)
        )
        self._run_local_action(line_address, LocalEvent.FLUSH, action, None)

    # ------------------------------------------------------------------
    # BusAgent interface (the snooping side).
    # ------------------------------------------------------------------
    def snoop(self, txn: Transaction) -> SnoopResponse:
        found = self.cache.lookup(txn.address)
        if found is None:
            return SnoopResponse.NONE
        set_index, way, line = found
        ctx = SnoopContext(
            address=txn.address,
            sequence=self._seq,
            recency_source=(self.cache, set_index, way),
        )
        try:
            action = self.protocol.snoop_action(line.state, txn.event, ctx)
        except IllegalTransitionError as exc:
            raise ProtocolGapError(
                f"{self.unit_id} snooping {txn.describe()}: {exc}"
            ) from exc
        if self.transition_observer is not None:
            self.transition_observer(
                self.unit_id, "snoop", line.state, txn.event, action
            )
        if self.trace_observer is not None:
            self.trace_observer(
                self.unit_id, "snoop", line.state, txn.event, action
            )
        self._pending = _PendingSnoop(
            serial=txn.serial, line=line, action=action, was_valid=line.valid
        )
        return action.response

    def transaction_aborted(self, txn: Transaction) -> None:
        if self._pending is not None and self._pending.serial == txn.serial:
            self._pending = None

    def abort_push(self, txn: Transaction, bus: Futurebus) -> None:
        pending = self._pending
        assert pending is not None and pending.serial == txn.serial
        assert pending.action.abort_push
        self._pending = None
        signals = pending.action.push_signals or MasterSignals(ca=True)
        bus.execute(
            self.unit_id, txn.address, signals, BusOp.WRITE, pending.line.value
        )
        self.stats.abort_pushes += 1
        self.stats.write_backs += 1
        next_state = resolve_next_state(pending.action.next_state, False)
        if next_state.valid:
            pending.line.state = next_state
        else:
            pending.line.invalidate()

    def supply_data(self, txn: Transaction) -> int:
        pending = self._pending
        assert pending is not None and pending.serial == txn.serial
        self.stats.interventions_supplied += 1
        return pending.line.value

    def capture_write(self, txn: Transaction) -> None:
        pending = self._pending
        assert pending is not None and pending.serial == txn.serial
        assert txn.value is not None
        pending.line.value = txn.value
        self.stats.writes_captured += 1

    def connect_update(self, txn: Transaction) -> None:
        pending = self._pending
        assert pending is not None and pending.serial == txn.serial
        assert txn.value is not None
        pending.line.value = txn.value
        self.stats.updates_received += 1

    def finalize(self, txn: Transaction, aggregate: ResponseAggregate) -> None:
        pending = self._pending
        if pending is None or pending.serial != txn.serial:
            return
        self._pending = None
        resolved = resolve_next_state(pending.action.next_state, aggregate.ch)
        if resolved.valid:
            pending.line.state = resolved
        else:
            if pending.was_valid:
                self.stats.invalidations_received += 1
            pending.line.invalidate()

    # ------------------------------------------------------------------
    # Inspection (invariant checking, tests).
    # ------------------------------------------------------------------
    def state_of(self, line_address: int) -> LineState:
        return self.cache.probe_state(line_address)

    def value_of(self, line_address: int) -> Optional[int]:
        found = self.cache.lookup(line_address)
        return found[2].value if found else None

    def probe_copy(self, line_address: int) -> Optional[tuple[LineState, int]]:
        """(state, value) of a valid copy, or None -- one directory probe
        where ``state_of`` + ``value_of`` would take two (the per-access
        invariant checker's loop)."""
        found = self.cache.lookup(line_address)
        if found is None:
            return None
        line = found[2]
        return line.state, line.value

    def cached_lines(self):
        """Yield (line_address, state, value) for every valid line."""
        for line_address, line in self.cache.valid_lines():
            yield line_address, line.state, line.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CacheController {self.unit_id} {self.protocol.name}>"


class NonCachingMaster(BusAgent):
    """A board without a cache (I/O processor): every access goes to the
    bus, nothing is retained, bus events are never answered."""

    def __init__(
        self,
        unit_id: str,
        protocol: Protocol,
        bus: Optional[Futurebus] = None,
    ) -> None:
        self.unit_id = unit_id
        self.protocol = protocol
        self.stats = ControllerStats()
        self.bus: Optional[Futurebus] = None
        #: Same hooks as on :class:`CacheController`.
        self.transition_observer = None
        self.trace_observer = None
        if bus is not None:
            self.attach_to(bus)

    def attach_to(self, bus: Futurebus) -> None:
        self.bus = bus
        bus.attach(self)

    def _require_bus(self) -> Futurebus:
        if self.bus is None:
            raise RuntimeError(f"{self.unit_id} is not attached to a bus")
        return self.bus

    def _choose_local(self, event: LocalEvent) -> LocalAction:
        action = self.protocol.local_action(LineState.INVALID, event, None)
        if self.transition_observer is not None:
            self.transition_observer(
                self.unit_id, "local", LineState.INVALID, event, action
            )
        if self.trace_observer is not None:
            self.trace_observer(
                self.unit_id, "local", LineState.INVALID, event, action
            )
        return action

    def read(self, byte_address: int) -> int:
        self.stats.reads += 1
        self.stats.read_misses += 1
        action = self._choose_local(LocalEvent.READ)
        result = self._require_bus().execute(
            self.unit_id, self._line_address(byte_address), action.signals,
            BusOp.READ, None,
        )
        self.stats.bus_transactions += 1
        assert result.value is not None
        return result.value

    def write(self, byte_address: int, value: int) -> None:
        self.stats.writes += 1
        self.stats.write_misses += 1
        action = self._choose_local(LocalEvent.WRITE)
        self._require_bus().execute(
            self.unit_id, self._line_address(byte_address), action.signals,
            BusOp.WRITE, value,
        )
        self.stats.bus_transactions += 1

    #: Non-caching masters still address whole lines on the bus; the line
    #: size must match the system-wide standard (paper section 5.1).
    line_size: int = 32

    def _line_address(self, byte_address: int) -> int:
        return byte_address // self.line_size

    def snoop(self, txn: Transaction) -> SnoopResponse:
        return SnoopResponse.NONE

    def state_of(self, line_address: int) -> LineState:
        return LineState.INVALID

    def probe_copy(self, line_address: int) -> None:
        return None

    def cached_lines(self):
        return iter(())

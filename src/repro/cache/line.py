"""A cache line: tag, MOESI state, and its data token."""

from __future__ import annotations

import dataclasses

from repro.core.states import LineState

__all__ = ["CacheLine"]


@dataclasses.dataclass
class CacheLine:
    """One way of one set.

    ``value`` is the opaque data token (a system-wide version number);
    tracking real bytes would add nothing to consistency checking.
    """

    tag: int = 0
    state: LineState = LineState.INVALID
    value: int = 0

    @property
    def valid(self) -> bool:
        return self.state.valid

    @property
    def dirty(self) -> bool:
        """Owned data must be written back before being discarded."""
        return self.state.valid and self.state.owned

    def invalidate(self) -> None:
        self.state = LineState.INVALID

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[tag=0x{self.tag:x} {self.state} v{self.value}]"

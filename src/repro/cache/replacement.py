"""Replacement policies for set-associative caches.

Besides choosing victims, a policy exposes each line's **recency** --
its normalized position in the replacement order -- because the paper's
section 5.2 refinement (after Puzak et al.) lets a snooping cache decide
whether to *update* or *discard* a line written by another cache based on
exactly that: "if the line is quite recently used ... it can be updated,
and if it is nearing time for replacement ... it can be discarded."
"""

from __future__ import annotations

import abc
import random
from typing import Sequence

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "replacement_by_name",
]


class ReplacementPolicy(abc.ABC):
    """Per-set replacement bookkeeping.

    Ways are identified by integer index within a set.  ``touch`` records
    a use, ``fill`` records an allocation, ``victim`` picks the way to
    evict among candidates, and ``recency`` reports a way's position in
    the replacement order normalized to [0, 1] (0 = safest from eviction,
    1 = next to go).
    """

    name = "abstract"

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """A hit (or other use) of this way."""

    @abc.abstractmethod
    def fill(self, set_index: int, way: int) -> None:
        """The way was (re)allocated."""

    @abc.abstractmethod
    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        """Choose the way to evict; ``candidates`` is never empty."""

    @abc.abstractmethod
    def recency(self, set_index: int, way: int) -> float:
        """Normalized replacement-order position (0 newest .. 1 oldest)."""


class _OrderedPolicy(ReplacementPolicy):
    """Shared machinery for policies that keep a per-set use order.

    ``_order[s]`` lists ways from most- to least-protected; victims come
    from the back.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._order: list[list[int]] = [
            list(range(associativity)) for _ in range(num_sets)
        ]

    def _move_to_front(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        candidate_set = set(candidates)
        for way in reversed(self._order[set_index]):
            if way in candidate_set:
                return way
        raise ValueError("no candidate way available")

    def recency(self, set_index: int, way: int) -> float:
        order = self._order[set_index]
        if len(order) == 1:
            return 0.0
        return order.index(way) / (len(order) - 1)


class LruPolicy(_OrderedPolicy):
    """Least recently used: every use protects the way."""

    name = "lru"

    def touch(self, set_index: int, way: int) -> None:
        self._move_to_front(set_index, way)

    def fill(self, set_index: int, way: int) -> None:
        self._move_to_front(set_index, way)


class FifoPolicy(_OrderedPolicy):
    """First in, first out: only allocation affects the order."""

    name = "fifo"

    def touch(self, set_index: int, way: int) -> None:
        pass  # hits do not refresh FIFO order

    def fill(self, set_index: int, way: int) -> None:
        self._move_to_front(set_index, way)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded, hence reproducible)."""

    name = "random"

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, candidates: Sequence[int]) -> int:
        return self._rng.choice(list(candidates))

    def recency(self, set_index: int, way: int) -> float:
        # No order is kept; report the midpoint so recency-based policies
        # behave neutrally.
        return 0.5


_POLICIES = {"lru": LruPolicy, "fifo": FifoPolicy, "random": RandomPolicy}


def replacement_by_name(
    name: str, num_sets: int, associativity: int, **kwargs
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random')."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return cls(num_sets, associativity, **kwargs)

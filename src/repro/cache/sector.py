"""Sector (sub-block) caches, section 5.1.

    "There is also the problem of supporting sector caches [Hill84].  The
    implications of that design have not been fully explored at this
    time, and it is undetermined whether the address sector size, the
    transfer subsector size or both must be standardized.  (The latter
    almost certainly needs to be fixed ... Consistency status also
    appears to be necessarily associated with the transfer subsector,
    rather than the address sector.)"

This module realizes the structure the paper sketches: one address tag per
**sector**, with validity *and MOESI consistency state per transfer
subsector* -- the paper's conclusion made concrete.  It is provided as an
exploratory substrate (with full tests) rather than wired into the main
controller, mirroring the paper's own status for the idea; the subsector
is what a bus transaction moves, so a system mixing sector caches and
plain caches must standardize the subsector size to the system line size.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.states import LineState

__all__ = ["SectorFrame", "SectorCache", "tag_economics"]


@dataclasses.dataclass
class SectorFrame:
    """One sector: a single tag plus per-subsector state and data."""

    tag: int = 0
    valid: bool = False
    states: list[LineState] = dataclasses.field(default_factory=list)
    values: list[int] = dataclasses.field(default_factory=list)

    def any_valid(self) -> bool:
        return self.valid and any(s.valid for s in self.states)

    def owned_subsectors(self) -> list[int]:
        return [
            i for i, s in enumerate(self.states) if s.valid and s.owned
        ]


class SectorCache:
    """Set-associative sector cache keyed by sector address.

    Addresses are bytes; a sector holds ``subsectors_per_sector``
    subsectors of ``subsector_size`` bytes each.  Consistency state lives
    on subsectors; allocation and tag matching happen on sectors.
    """

    def __init__(
        self,
        num_sets: int = 16,
        associativity: int = 2,
        subsector_size: int = 32,
        subsectors_per_sector: int = 4,
    ) -> None:
        if num_sets < 1 or associativity < 1:
            raise ValueError("geometry must be positive")
        if subsectors_per_sector < 1:
            raise ValueError("need at least one subsector per sector")
        self.num_sets = num_sets
        self.associativity = associativity
        self.subsector_size = subsector_size
        self.subsectors_per_sector = subsectors_per_sector
        self.sector_size = subsector_size * subsectors_per_sector
        self._sets: list[list[SectorFrame]] = [
            [self._empty_frame() for _ in range(associativity)]
            for _ in range(num_sets)
        ]
        #: Simple per-set LRU over frames.
        self._order: list[list[int]] = [
            list(range(associativity)) for _ in range(num_sets)
        ]

    def _empty_frame(self) -> SectorFrame:
        return SectorFrame(
            states=[LineState.INVALID] * self.subsectors_per_sector,
            values=[0] * self.subsectors_per_sector,
        )

    # ------------------------------------------------------------------
    # Address arithmetic.
    # ------------------------------------------------------------------
    def sector_address(self, byte_address: int) -> int:
        return byte_address // self.sector_size

    def subsector_index(self, byte_address: int) -> int:
        return (byte_address % self.sector_size) // self.subsector_size

    def subsector_address(self, byte_address: int) -> int:
        """The bus-visible line address (subsector granularity)."""
        return byte_address // self.subsector_size

    def _set_of(self, sector_address: int) -> int:
        return sector_address % self.num_sets

    def _tag_of(self, sector_address: int) -> int:
        return sector_address // self.num_sets

    # ------------------------------------------------------------------
    def find_frame(self, byte_address: int) -> Optional[SectorFrame]:
        sector = self.sector_address(byte_address)
        set_index = self._set_of(sector)
        tag = self._tag_of(sector)
        for frame in self._sets[set_index]:
            if frame.valid and frame.tag == tag:
                return frame
        return None

    def probe_state(self, byte_address: int) -> LineState:
        """Consistency state of the *subsector* holding the address."""
        frame = self.find_frame(byte_address)
        if frame is None:
            return LineState.INVALID
        return frame.states[self.subsector_index(byte_address)]

    def value_of(self, byte_address: int) -> Optional[int]:
        frame = self.find_frame(byte_address)
        if frame is None:
            return None
        index = self.subsector_index(byte_address)
        if not frame.states[index].valid:
            return None
        return frame.values[index]

    # ------------------------------------------------------------------
    def allocate(self, byte_address: int) -> tuple[SectorFrame, list[tuple[int, LineState, int]]]:
        """Ensure a frame exists for the sector; returns (frame, evicted).

        ``evicted`` lists (subsector byte address, state, value) for every
        valid subsector displaced from the victim frame -- owned ones must
        be written back by the caller, exactly one transaction per
        subsector (the transfer unit).
        """
        sector = self.sector_address(byte_address)
        set_index = self._set_of(sector)
        tag = self._tag_of(sector)
        frames = self._sets[set_index]
        for way, frame in enumerate(frames):
            if frame.valid and frame.tag == tag:
                self._touch(set_index, way)
                return frame, []
        # Prefer an empty frame, else LRU.
        for way, frame in enumerate(frames):
            if not frame.any_valid():
                victim_way = way
                break
        else:
            victim_way = self._order[set_index][-1]
        victim = frames[victim_way]
        evicted = []
        if victim.valid:
            base_sector = victim.tag * self.num_sets + set_index
            for i, state in enumerate(victim.states):
                if state.valid:
                    evicted.append(
                        (
                            base_sector * self.sector_size
                            + i * self.subsector_size,
                            state,
                            victim.values[i],
                        )
                    )
        frames[victim_way] = self._empty_frame()
        frames[victim_way].tag = tag
        frames[victim_way].valid = True
        self._touch(set_index, victim_way)
        return frames[victim_way], evicted

    def fill_subsector(
        self, byte_address: int, state: LineState, value: int
    ) -> SectorFrame:
        """Install one subsector (allocating its sector frame if needed).

        The caller is responsible for writing back any owned subsectors in
        the returned eviction list *before* calling this again.
        """
        frame, evicted = self.allocate(byte_address)
        if any(s.owned for _, s, _ in evicted):
            raise RuntimeError(
                "allocate() evicted owned subsectors; write them back "
                "before filling"
            )
        index = self.subsector_index(byte_address)
        frame.states[index] = state
        frame.values[index] = value
        return frame

    def set_state(self, byte_address: int, state: LineState) -> None:
        frame = self.find_frame(byte_address)
        if frame is None:
            raise KeyError(f"no frame for 0x{byte_address:x}")
        frame.states[self.subsector_index(byte_address)] = state

    def _touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    # ------------------------------------------------------------------
    def occupancy(self) -> tuple[int, int]:
        """(valid sectors, valid subsectors)."""
        sectors = subsectors = 0
        for frames in self._sets:
            for frame in frames:
                if frame.any_valid():
                    sectors += 1
                    subsectors += sum(1 for s in frame.states if s.valid)
        return sectors, subsectors

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.associativity * self.sector_size


def tag_economics(
    capacity_bytes: int = 64 * 1024,
    line_size: int = 32,
    subsectors_per_sector: int = 4,
    address_bits: int = 32,
    state_bits: int = 3,
) -> dict:
    """Why sector caches exist: directory (tag + state) storage costs.

    Compares a plain cache of ``line_size`` lines against a sector cache
    whose transfer subsector is the same ``line_size`` (the bus-visible
    unit, which section 5.1 says must be standardized) but which shares
    one address tag across ``subsectors_per_sector`` subsectors.
    Consistency state is per transfer subsector in both cases, as the
    paper concludes it must be.

    Returns a dict of bit counts, including the sector design's saving.
    """
    if capacity_bytes % line_size:
        raise ValueError("capacity must be a multiple of the line size")
    lines = capacity_bytes // line_size
    import math

    offset_bits = int(math.log2(line_size))
    plain_tag_bits = address_bits - offset_bits
    plain_total = lines * (plain_tag_bits + state_bits)

    sectors = lines // subsectors_per_sector
    sector_offset_bits = int(
        math.log2(line_size * subsectors_per_sector)
    )
    sector_tag_bits = address_bits - sector_offset_bits
    sector_total = sectors * sector_tag_bits + lines * state_bits

    return {
        "lines": lines,
        "plain_tag_bits": plain_tag_bits,
        "plain_directory_bits": plain_total,
        "sectors": sectors,
        "sector_tag_bits": sector_tag_bits,
        "sector_directory_bits": sector_total,
        "saving_bits": plain_total - sector_total,
        "saving_fraction": round(1 - sector_total / plain_total, 4),
    }

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``      regenerate the paper's Tables 1-7 and diff them
``figures``     regenerate Figures 1-4
``membership``  classify every implemented protocol against the class
``verify``      run the compatibility verification matrix (model checker)
``shootout``    the Arch85-style protocol performance comparison
``hierarchy``   the multi-bus (section 6) demonstration
``diagram``     emit a protocol state diagram (text or Graphviz DOT)
``ablation``    line-size / replacement / geometry sweeps
``run``         run one protocol over a synthetic workload or a trace file
``bench``       serial-vs-parallel performance suite -> BENCH_perf.json
``fuzz``        differential fuzzing campaign / replay a repro file
``serve``       run the memoizing NDJSON daemon over the warm pool
``submit``      submit a spec to a running daemon (or query its status)

Observability
-------------
Every command accepts ``--json`` and prints one machine-readable
envelope ``{"command", "ok", "data", "metrics"}`` instead of the human
report.  The simulation commands (``run``, ``verify``, ``shootout``,
``fuzz``, ``hierarchy``) also accept ``--trace FILE`` -- write the
structured trace in Chrome trace-event format (open it in Perfetto;
name the file ``*.jsonl`` for JSON-lines instead) -- and ``--metrics``
to print the metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Shared plumbing: the --json envelope and the observability flags.
# ----------------------------------------------------------------------
def _emit(args: argparse.Namespace, command: str, ok: bool, data,
          metrics: Optional[dict] = None) -> int:
    """Print the uniform ``--json`` envelope and map ``ok`` to an exit
    code.  Only called when ``args.json`` is set."""
    envelope = {
        "command": command,
        "ok": bool(ok),
        "data": data,
        "metrics": metrics or {},
    }
    print(json.dumps(envelope, indent=2, sort_keys=True, default=str))
    return 0 if ok else 1


def _maybe_write_trace(args: argparse.Namespace, session) -> Optional[str]:
    """Export the session's trace when ``--trace FILE`` was given."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
    return str(session.write_trace(path, fmt=fmt))


def _print_metrics(metrics: dict) -> None:
    if not metrics:
        print("(no metrics)")
        return
    width = max(len(name) for name in metrics)
    print("metrics:")
    for name in sorted(metrics):
        print(f"  {name:<{width}}  {metrics[name]}")


def _add_json_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json", action="store_true",
        help='machine-readable envelope {"command","ok","data","metrics"} '
             "on stdout instead of the human report")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE",
        help="write the structured trace: Chrome trace-event JSON "
             "(Perfetto), or JSON-lines if FILE ends in .jsonl")
    p.add_argument(
        "--metrics", action="store_true",
        help="print the metrics snapshot after the run")


# ----------------------------------------------------------------------
# Commands.
# ----------------------------------------------------------------------
def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import (
        diff_all_tables,
        moesi_local_cells,
        moesi_snoop_cells,
        protocol_cells,
        render_cells,
    )
    from repro.protocols.registry import make_protocol

    diffs = diff_all_tables()
    ok = all(d.matches for d in diffs)
    if args.json:
        data = {
            "diffs": [
                {
                    "summary": d.summary(),
                    "matches": d.matches,
                    "mismatches": list(d.mismatches),
                }
                for d in diffs
            ]
        }
        metrics = {
            "tables.diffed": len(diffs),
            "tables.mismatches": sum(len(d.mismatches) for d in diffs),
        }
        return _emit(args, "tables", ok, data, metrics)
    for diff in diffs:
        print(diff.summary())
        for mismatch in diff.mismatches:
            print("  !!", mismatch)
    if args.render:
        print()
        print(render_cells(moesi_local_cells(), "Table 1: MOESI -- local"))
        print()
        print(render_cells(moesi_snoop_cells(), "Table 2: MOESI -- bus"))
        for number, name, columns in (
            (3, "berkeley", ("Read", "Write", 5, 6)),
            (4, "dragon", ("Read", "Write", 5, 8)),
            (5, "write-once", ("Read", "Write", 5, 6)),
            (6, "illinois", ("Read", "Write", 5, 6)),
            (7, "firefly", ("Read", "Write", 5, 8)),
        ):
            protocol = make_protocol(name)
            print()
            print(render_cells(protocol_cells(protocol, columns),
                               f"Table {number}: {protocol.name}"))
    return 0 if ok else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import (
        figure1_broadcast_handshake,
        figure2_parallel_protocol,
        figure3_characteristics,
        figure4_state_pairs,
    )

    texts = [
        figure1_broadcast_handshake(),
        figure2_parallel_protocol(),
        figure3_characteristics(),
        figure4_state_pairs(),
    ]
    if args.json:
        return _emit(args, "figures", True, {"figures": texts},
                     {"figures.rendered": len(texts)})
    for text in texts:
        print(text)
        print()
    return 0


def _cmd_membership(args: argparse.Namespace) -> int:
    from repro.core.validation import check_membership
    from repro.protocols.registry import make_protocol, protocol_names

    names = args.protocol or protocol_names()
    reports = [(name, check_membership(make_protocol(name)))
               for name in names]
    if args.json:
        data = {
            "reports": [
                {
                    "protocol": name,
                    "summary": report.summary(),
                    "issues": [str(issue) for issue in report.issues],
                }
                for name, report in reports
            ]
        }
        return _emit(args, "membership", True, data,
                     {"membership.checked": len(reports)})
    for _, report in reports:
        print(report.summary())
        if args.verbose:
            for issue in report.issues:
                print("   ", issue)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.api import Session
    from repro.verify.mixes import (
        class_member_mixes,
        homogeneous_foreign,
        incompatible_mixes,
        mutant_mixes,
    )

    cases = class_member_mixes() + homogeneous_foreign()
    if not args.quick:
        cases += incompatible_mixes() + mutant_mixes()
    session = Session(label="verify", trace=bool(args.trace))
    result = session.verify(cases=cases, workers=args.workers)
    rows, bad = result.rows, result.failures
    metrics = {
        "verify.cases": len(rows),
        "verify.failures": len(bad),
        "verify.states": sum(r["states"] for r in rows),
        "verify.transitions": sum(r["transitions"] for r in rows),
    }
    trace_path = _maybe_write_trace(args, session)
    if args.json:
        return _emit(args, "verify", result.ok,
                     {"rows": rows, "trace_path": trace_path}, metrics)
    print(
        format_rows(
            rows,
            "Compatibility verification matrix",
            columns=["mix", "expected", "observed", "ok", "states",
                     "transitions"],
        )
    )
    print(f"\n{len(rows) - len(bad)}/{len(rows)} cases as expected")
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.metrics:
        _print_metrics(metrics)
    return 0 if not bad else 1


def _cmd_shootout(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.api import Session

    session = Session(label="shootout", trace=bool(args.trace))
    rows = session.shootout(
        references=args.references, seed=args.seed, workers=args.workers
    )
    metrics = {
        "shootout.protocols": len(rows),
        "shootout.references": args.references,
    }
    trace_path = _maybe_write_trace(args, session)
    if args.json:
        return _emit(args, "shootout", True,
                     {"rows": rows, "trace_path": trace_path}, metrics)
    print(format_rows(rows, "Protocol comparison (timed Futurebus run)"))
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.metrics:
        _print_metrics(metrics)
    return 0


def _batch_section_rows(section: dict) -> list:
    return [
        {"backend": name, **leg}
        for name, leg in section["backends"].items()
    ]


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.perf.bench import run_bench_suite, write_bench_json

    if getattr(args, "batch", False):
        # Batch-kernel section only: no matrix/DES/obs legs, no JSON
        # artifact -- the quick way to eyeball population throughput.
        from repro.perf.bench import _bench_batch

        section = _bench_batch(args.quick)
        ok = section["verified_ok"]
        if args.json:
            return _emit(
                args, "bench", ok, {"batch": section},
                {"bench.batch_backend": section["default_backend"]},
            )
        print(
            format_rows(
                _batch_section_rows(section),
                f"Batch kernel ({section['rows']} rows x "
                f"{section['events_per_row']} events/row, oracle check on "
                f"{section['verified_rows']} rows: "
                f"{'ok' if ok else 'MISMATCH'})",
            )
        )
        return 0 if ok else 1

    if getattr(args, "serve_batch", False):
        # Continuous-batching section only: coalesced population vs
        # one-at-a-time dispatch on a compatible burst.  Like --batch,
        # this never writes the JSON artifact (baseline hygiene: quick
        # numbers must not overwrite the committed full-suite report).
        from repro.perf.bench import _bench_serve_batch

        section = _bench_serve_batch(args.quick)
        ok = section["identical"]
        if args.json:
            return _emit(
                args, "bench", ok, {"serve_batch": section},
                {"bench.serve_batch_backend": section["backend"]},
            )
        print(
            f"serve batch ({section['requests']} compatible requests, "
            f"{section['backend']} backend): one-at-a-time "
            f"{section['scalar_s']:.4f}s ({section['scalar_rps']}/s), "
            f"coalesced {section['batched_s']:.4f}s "
            f"({section['batched_rps']}/s), speedup "
            f"{section['speedup']}x, payloads "
            f"{'identical' if ok else 'MISMATCH'}"
        )
        return 0 if ok else 1

    report = run_bench_suite(workers=args.workers, quick=args.quick)
    ok = (report["matrix"]["rows_identical"]
          and report["des"]["rows_identical"])
    if args.json:
        return _emit(args, "bench", ok, report,
                     {"bench.workers": report["workers"]})
    print(
        format_rows(
            report["explorer"],
            "Explorer hot path (single worker, exhaustive)",
        )
    )
    section_rows = []
    for name in ("matrix", "des"):
        section = report[name]
        section_rows.append(
            {
                "section": name,
                "serial_s": section["serial_s"],
                "parallel_s": section["parallel_s"],
                "speedup": section["speedup"],
                "identical": section["rows_identical"],
            }
        )
    print()
    print(
        format_rows(
            section_rows,
            f"Serial vs parallel ({report['workers']} workers, "
            f"{report['cpu_count']} cpus)",
        )
    )
    obs = report["obs"]
    print(f"\nobservability tax ({obs['references']} refs, best of "
          f"{obs['repeats']}): disabled {obs['overhead_disabled_pct']:+.2f}%,"
          f" traced {obs['overhead_traced_pct']:+.2f}% vs direct")
    batch = report.get("batch")
    if batch is not None:
        print()
        print(
            format_rows(
                _batch_section_rows(batch),
                f"Batch kernel ({batch['rows']} rows x "
                f"{batch['events_per_row']} events/row, oracle check on "
                f"{batch['verified_rows']} rows: "
                f"{'ok' if batch['verified_ok'] else 'MISMATCH'})",
            )
        )
    serve = report.get("serve")
    if serve is not None:
        cache = serve["cache"]
        print(f"\nserve tier ({serve['references']} refs): miss "
              f"{serve['miss_s']:.4f}s, hit {serve['hit_s']:.6f}s "
              f"({serve['hit_speedup']}x); cache hits {cache['hits']}, "
              f"misses {cache['misses']}")
    serve_batch = report.get("serve_batch")
    if serve_batch is not None:
        print(f"serve batch ({serve_batch['requests']} compatible "
              f"requests, {serve_batch['backend']} backend): "
              f"{serve_batch['scalar_rps']}/s one-at-a-time -> "
              f"{serve_batch['batched_rps']}/s coalesced "
              f"({serve_batch['speedup']}x, payloads "
              f"{'identical' if serve_batch['identical'] else 'MISMATCH'})")
    regression = report.get("regression")
    if regression is not None:
        if regression["explorer"]:
            print()
            print(
                format_rows(
                    regression["explorer"],
                    "Regression vs baseline "
                    f"({regression['baseline_timestamp']})",
                )
            )
        for failure in regression["failures"]:
            print(f"REGRESSION: {failure}")
        if regression["ok"]:
            print("regression check: ok (budgets "
                  f"tps>={regression['budgets']['min_tps_ratio']}x, "
                  "traced<="
                  f"{regression['budgets']['max_traced_overhead_pct']:.0f}%)")
    path = write_bench_json(report, args.out)
    print(f"\nwrote {path}")
    return 0 if ok else 1


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    import random

    from repro.hierarchy import HierarchicalSystem

    h = HierarchicalSystem.grid(args.clusters, args.cpus)
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer, attach_tracer

        tracer = Tracer(stream="hierarchy")
        attach_tracer(h, tracer)
    rng = random.Random(args.seed)
    units = list(h.controllers)
    for _ in range(args.references):
        unit = rng.choice(units)
        address = rng.randrange(args.lines) * 32
        if rng.random() < 0.4:
            h.write(unit, address)
        else:
            h.read(unit, address)
    violations = h.check_coherence()
    traffic = h.traffic()
    metrics = {f"hierarchy.{name}": value
               for name, value in sorted(traffic.items())}
    metrics["hierarchy.violations"] = len(violations)
    trace_path = None
    if tracer is not None:
        from repro.obs.export import write_chrome_trace, write_jsonl

        if str(args.trace).endswith(".jsonl"):
            trace_path = str(write_jsonl(args.trace, tracer.export()))
        else:
            trace_path = str(write_chrome_trace(
                args.trace, tracer.export(), label="hierarchy"))
    ok = not violations
    if args.json:
        data = {
            "clusters": args.clusters,
            "cpus": args.cpus,
            "references": args.references,
            "violations": len(violations),
            "traffic": traffic,
            "trace_path": trace_path,
        }
        return _emit(args, "hierarchy", ok, data, metrics)
    print(f"{args.clusters} clusters x {args.cpus} cpus, "
          f"{args.references} checked references")
    print(f"violations: {len(violations)}")
    print(f"global transactions: {traffic['global_transactions']}")
    print(f"local transactions:  {traffic['local_transactions']}")
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.metrics:
        _print_metrics(metrics)
    return 0 if ok else 1


def _cmd_diagram(args: argparse.Namespace) -> int:
    from repro.analysis.diagram import render_adjacency, to_dot
    from repro.protocols.registry import make_protocol

    protocol = make_protocol(args.protocol)
    text = to_dot(protocol) if args.dot else render_adjacency(protocol)
    if args.json:
        data = {
            "protocol": args.protocol,
            "format": "dot" if args.dot else "text",
            "text": text,
        }
        return _emit(args, "diagram", True, data)
    print(text)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.analysis.ablations import (
        geometry_sweep,
        line_size_sweep,
        replacement_policy_sweep,
    )
    from repro.analysis.report import format_rows

    sweeps = {
        "line-size": (line_size_sweep,
                      "Line-size selection (fixed capacity)"),
        "replacement": (replacement_policy_sweep,
                        "Replacement policy"),
        "geometry": (geometry_sweep,
                     "Associativity vs sets at fixed capacity"),
    }
    fn, title = sweeps[args.sweep]
    rows = fn(references=args.references)
    if args.json:
        return _emit(args, "ablation", True,
                     {"sweep": args.sweep, "rows": rows},
                     {"ablation.rows": len(rows)})
    print(format_rows(rows, title))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.api import Session
    from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
    from repro.workloads.trace import Trace

    protocol = args.protocol_opt or args.protocol or "moesi"
    if args.workload:
        workload = Trace.load(args.workload)
    else:
        config = SyntheticConfig(
            processors=args.processors,
            p_shared=args.p_shared,
            p_write=args.p_write,
        )
        workload = SyntheticWorkload(config, seed=args.seed).trace(
            args.references
        )
    session = Session(label=protocol, trace=bool(args.trace))
    result = session.run_experiment(
        protocol=protocol,
        workload=workload,
        timed=not args.atomic,
        check=args.check,
        discipline=args.discipline,
    )
    trace_path = _maybe_write_trace(args, session)
    if args.json:
        data = {
            "row": result.report.row(),
            "violations": len(result.violations),
            "trace_path": trace_path,
        }
        return _emit(args, "run", result.ok, data, result.metrics)
    print(format_rows([result.report.row()],
                      f"{protocol} over {len(workload)} references"))
    if result.violations:
        print(f"\ncoherence violations: {len(result.violations)}")
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.metrics:
        _print_metrics(result.metrics)
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.api import Session
    from repro.fuzz import (
        INJECTABLE_BUGS,
        CampaignConfig,
        ScenarioConfig,
        load_repro,
        run_scenario,
    )

    if args.replay:
        scenario, recorded, note = load_repro(args.replay)
        result = run_scenario(scenario)
        reproduced = result.failure is not None
        if args.json:
            data = {
                "replay": args.replay,
                "scenario": scenario.label,
                "note": note,
                "reproduced": reproduced,
                "failure": str(result.failure) if reproduced else None,
                "recorded": str(recorded) if recorded is not None else None,
            }
            return _emit(args, "fuzz", not reproduced, data)
        print(f"replaying {args.replay}: {scenario.label}")
        if note:
            print(f"  note: {note}")
        if not reproduced:
            print("  scenario PASSED (the recorded failure did not "
                  "reproduce)")
            if recorded is not None:
                print(f"  recorded was: {recorded}")
            return 0
        print(f"  reproduced: {result.failure}")
        return 1

    scenario_config = ScenarioConfig()
    if args.inject:
        if args.inject not in INJECTABLE_BUGS:
            known = ", ".join(sorted(INJECTABLE_BUGS))
            print(f"unknown bug {args.inject!r}; known: {known}",
                  file=sys.stderr)
            return 2
        scenario_config = dataclasses.replace(scenario_config,
                                              inject=args.inject)
    config = CampaignConfig(
        seeds=args.seeds,
        seed_base=args.seed_base,
        scenario=scenario_config,
        shrink=not args.no_shrink,
    )
    session = Session(label="fuzz", trace=bool(args.trace))
    result = session.fuzz_campaign(
        config=config,
        workers=args.workers,
        out_dir=args.out,
        shards=args.shards,
    )
    report = result.report
    metrics = {
        "fuzz.seeds_run": report.seeds_run,
        "fuzz.steps_run": report.steps_run,
        "fuzz.transitions_checked": report.transitions_checked,
        "fuzz.failures": len(report.failures),
    }
    trace_path = _maybe_write_trace(args, session)
    if args.json:
        data = dict(report.to_dict(), trace_path=trace_path)
        return _emit(args, "fuzz", result.ok, data, metrics)
    print(report.summary_text(), end="")
    if trace_path:
        print(f"trace written to {trace_path}")
    if args.metrics:
        _print_metrics(metrics)
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.server import run_server

    config = ServeConfig(
        host=args.host,
        port=None if args.unix and args.port is None else (args.port or 0),
        unix_socket=args.unix,
        concurrency=args.concurrency,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        workers=args.workers,
        retry_after_s=args.retry_after,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
    )

    def ready(endpoints: dict) -> None:
        # One machine-readable ready line, flushed, so a launcher can
        # parse the OS-assigned port before the daemon blocks.
        print(json.dumps({
            "command": "serve",
            "ok": True,
            "data": {"ready": True, "endpoints": endpoints},
            "metrics": {},
        }, sort_keys=True), flush=True)

    try:
        asyncio.run(run_server(config, ready))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    if args.port is None and not args.unix:
        print("submit: need --port or --unix", file=sys.stderr)
        return 2
    client = ServeClient(
        host=args.host, port=args.port, unix_socket=args.unix,
        timeout_s=args.timeout,
    )
    if args.status:
        envelope = client.status()
    elif args.shutdown:
        envelope = client.shutdown()
    elif args.many:
        # A burst of specs over concurrent connections -- the client
        # shape that actually feeds the daemon's admission window.
        if not args.spec_json:
            print("submit: --many needs --spec-json (a JSON array, "
                  "'-' reads stdin)", file=sys.stderr)
            return 2
        text = (sys.stdin.read() if args.spec_json == "-"
                else args.spec_json)
        specs = json.loads(text)
        if not isinstance(specs, list):
            print("submit: --many expects a JSON array of specs",
                  file=sys.stderr)
            return 2
        results = client.execute_many(
            specs, deadline=args.deadline, stream=args.stream
        )
        envelope = {
            "command": "execute-many",
            "ok": all(r.get("ok") for r in results),
            "data": {"count": len(results), "results": results},
            "metrics": None,
        }
    else:
        if args.spec_json:
            text = (sys.stdin.read() if args.spec_json == "-"
                    else args.spec_json)
            spec = json.loads(text)
        else:
            from repro.api import plan

            kwargs = {}
            if args.kind == "experiment":
                kwargs = {
                    "protocol": args.protocol,
                    "references": args.references,
                    "processors": args.processors,
                    "seed": args.seed,
                    "timed": args.timed,
                    "check": args.check,
                    "discipline": args.discipline,
                    "trace": args.with_trace,
                }
            spec = plan(args.kind, **kwargs)
        envelope = client.execute(
            spec, deadline=args.deadline, stream=args.stream
        )
    print(json.dumps(envelope, sort_keys=True))
    return 0 if envelope.get("ok") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOESI / Futurebus (Sweazey & Smith, ISCA 1986) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate + diff Tables 1-7")
    p.add_argument("--render", action="store_true",
                   help="print the full tables, not just the diffs")
    _add_json_arg(p)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("figures", help="regenerate Figures 1-4")
    _add_json_arg(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("membership", help="classify protocols vs the class")
    p.add_argument("protocol", nargs="*", help="registry names (default all)")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_json_arg(p)
    p.set_defaults(func=_cmd_membership)

    p = sub.add_parser("verify", help="run the model-checking matrix")
    p.add_argument("--quick", action="store_true",
                   help="positive cases only")
    p.add_argument("--workers", type=int, default=None,
                   help="fan cases out across N worker processes")
    _add_obs_args(p)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("shootout", help="protocol performance comparison")
    p.add_argument("--references", type=int, default=4000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="fan protocols out across N worker processes")
    _add_obs_args(p)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_shootout)

    p = sub.add_parser("hierarchy", help="multi-bus demonstration")
    p.add_argument("--clusters", type=int, default=2)
    p.add_argument("--cpus", type=int, default=2)
    p.add_argument("--references", type=int, default=2000)
    p.add_argument("--lines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    _add_obs_args(p)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("diagram", help="emit a protocol state diagram")
    p.add_argument("protocol", help="registry name")
    p.add_argument("--dot", action="store_true", help="Graphviz DOT output")
    _add_json_arg(p)
    p.set_defaults(func=_cmd_diagram)

    p = sub.add_parser("ablation", help="design-choice sweeps")
    p.add_argument("sweep", choices=["line-size", "replacement", "geometry"])
    p.add_argument("--references", type=int, default=4000)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("run", help="run one protocol over a workload")
    p.add_argument("protocol", nargs="?", default=None,
                   help="registry name, e.g. moesi, berkeley "
                        "(default moesi)")
    p.add_argument("--protocol", dest="protocol_opt", metavar="NAME",
                   help="registry name (same as the positional)")
    p.add_argument("--workload", metavar="FILE",
                   help="trace file (unit R/W addr per line) instead of "
                        "the synthetic workload")
    p.add_argument("--references", type=int, default=4000)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--p-shared", type=float, default=0.3)
    p.add_argument("--p-write", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--atomic", action="store_true",
                   help="atomic trace-order run instead of timed")
    p.add_argument("--discipline", default=None, metavar="NAME",
                   help="bus arbitration service discipline: fcfs, "
                        "round-robin, or priority[:master=level,...] "
                        "(implies an arbitrated timed run)")
    p.add_argument("--check", action="store_true",
                   help="runtime coherence checking on")
    _add_obs_args(p)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "bench",
        help="serial-vs-parallel performance suite -> BENCH_perf.json",
    )
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes for the parallel legs")
    p.add_argument("--quick", action="store_true",
                   help="small bounds (smoke-test sized)")
    p.add_argument("--batch", action="store_true",
                   help="run only the struct-of-arrays batch-kernel "
                        "section (skips matrix/DES/obs; writes no file)")
    p.add_argument("--serve-batch", action="store_true",
                   help="run only the continuous-batching section "
                        "(coalesced vs one-at-a-time serve dispatch; "
                        "writes no file)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="where to write the machine-readable report")
    _add_json_arg(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign (or --replay a repro file)",
    )
    p.add_argument("--seeds", type=int, default=200,
                   help="number of seeds to run")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first seed (campaigns are pure functions of seeds)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes; 0 = serial (identical output)")
    p.add_argument("--shards", type=int, default=None,
                   help="partition the seed range into N pool tasks "
                        "(byte-identical report at any count; default: "
                        "one task per seed)")
    p.add_argument("--out", default="fuzz_repros",
                   help="directory for shrunk repro_seed<N>.json files")
    p.add_argument("--inject", metavar="BUG",
                   help="plant a known-broken protocol in every scenario "
                   "(fuzzer self-test)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample minimisation")
    p.add_argument("--replay", metavar="FILE",
                   help="re-execute a repro file verbatim instead of "
                   "running a campaign")
    _add_obs_args(p)
    _add_json_arg(p)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the memoizing NDJSON daemon over the warm worker pool",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default 0 = OS-assigned; read it back "
                        "from the ready line)")
    p.add_argument("--unix", metavar="PATH", default=None,
                   help="also (or instead) listen on a unix socket")
    p.add_argument("--concurrency", type=int, default=2,
                   help="jobs executing at once")
    p.add_argument("--max-pending", type=int, default=8,
                   help="jobs allowed to queue beyond --concurrency before "
                        "requests are refused with retry_after")
    p.add_argument("--cache-size", type=int, default=128,
                   help="memoized results kept (LRU)")
    p.add_argument("--workers", type=int, default=None,
                   help="warm-pool worker processes per job")
    p.add_argument("--retry-after", type=float, default=0.5,
                   help="seconds suggested in busy rejections")
    p.add_argument("--batch-window", type=float, default=0.005,
                   help="continuous-batching admission window (seconds): "
                        "compatible batch specs arriving within it "
                        "coalesce into one SoA population; 0 = degenerate "
                        "populations of one, negative disables batching")
    p.add_argument("--batch-max", type=int, default=64,
                   help="population cap: a forming batch seals early "
                        "once this many requests have joined")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a spec to a running serve daemon",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--unix", metavar="PATH", default=None)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="client socket timeout (seconds)")
    p.add_argument("--spec-json", metavar="JSON",
                   help="spec as a kind-tagged JSON object "
                        "('-' reads stdin); overrides --kind and its args")
    p.add_argument("--many", action="store_true",
                   help="treat --spec-json as a JSON array and submit "
                        "every spec concurrently (feeds the daemon's "
                        "batching admission window)")
    p.add_argument("--kind", default="experiment",
                   choices=["experiment", "verify", "shootout", "fuzz",
                            "batch"],
                   help="plan this kind of spec from the args below")
    p.add_argument("--protocol", default="moesi")
    p.add_argument("--references", type=int, default=2000)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--timed", action="store_true",
                   help="timed Futurebus run instead of atomic")
    p.add_argument("--check", action="store_true",
                   help="runtime coherence checking on")
    p.add_argument("--discipline", default=None, metavar="NAME",
                   help="bus arbitration service discipline")
    p.add_argument("--with-trace", action="store_true",
                   help="ask for the structured trace in the response")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline (seconds)")
    p.add_argument("--stream", action="store_true",
                   help="stream metrics/trace as incremental frames")
    p.add_argument("--status", action="store_true",
                   help="query daemon status instead of executing")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the daemon to stop")
    p.set_defaults(func=_cmd_submit)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())

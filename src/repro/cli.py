"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``      regenerate the paper's Tables 1-7 and diff them
``figures``     regenerate Figures 1-4
``membership``  classify every implemented protocol against the class
``verify``      run the compatibility verification matrix (model checker)
``shootout``    the Arch85-style protocol performance comparison
``hierarchy``   the multi-bus (section 6) demonstration
``diagram``     emit a protocol state diagram (text or Graphviz DOT)
``ablation``    line-size / replacement / geometry sweeps
``run``         run one protocol over a synthetic workload or a trace file
``bench``       serial-vs-parallel performance suite -> BENCH_perf.json
``fuzz``        differential fuzzing campaign / replay a repro file
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import (
        diff_all_tables,
        moesi_local_cells,
        moesi_snoop_cells,
        protocol_cells,
        render_cells,
    )
    from repro.protocols.registry import make_protocol

    diffs = diff_all_tables()
    for diff in diffs:
        print(diff.summary())
        for mismatch in diff.mismatches:
            print("  !!", mismatch)
    if args.render:
        print()
        print(render_cells(moesi_local_cells(), "Table 1: MOESI -- local"))
        print()
        print(render_cells(moesi_snoop_cells(), "Table 2: MOESI -- bus"))
        for number, name, columns in (
            (3, "berkeley", ("Read", "Write", 5, 6)),
            (4, "dragon", ("Read", "Write", 5, 8)),
            (5, "write-once", ("Read", "Write", 5, 6)),
            (6, "illinois", ("Read", "Write", 5, 6)),
            (7, "firefly", ("Read", "Write", 5, 8)),
        ):
            protocol = make_protocol(name)
            print()
            print(render_cells(protocol_cells(protocol, columns),
                               f"Table {number}: {protocol.name}"))
    return 0 if all(d.matches for d in diffs) else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import (
        figure1_broadcast_handshake,
        figure2_parallel_protocol,
        figure3_characteristics,
        figure4_state_pairs,
    )

    for text in (
        figure1_broadcast_handshake(),
        figure2_parallel_protocol(),
        figure3_characteristics(),
        figure4_state_pairs(),
    ):
        print(text)
        print()
    return 0


def _cmd_membership(args: argparse.Namespace) -> int:
    from repro.core.validation import check_membership
    from repro.protocols.registry import make_protocol, protocol_names

    names = args.protocol or protocol_names()
    for name in names:
        report = check_membership(make_protocol(name))
        print(report.summary())
        if args.verbose:
            for issue in report.issues:
                print("   ", issue)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.verify.mixes import (
        class_member_mixes,
        homogeneous_foreign,
        incompatible_mixes,
        mutant_mixes,
        run_matrix,
    )

    cases = class_member_mixes() + homogeneous_foreign()
    if not args.quick:
        cases += incompatible_mixes() + mutant_mixes()
    rows = run_matrix(cases, workers=args.workers)
    print(
        format_rows(
            rows,
            "Compatibility verification matrix",
            columns=["mix", "expected", "observed", "ok", "states",
                     "transitions"],
        )
    )
    bad = [r for r in rows if not r["ok"]]
    print(f"\n{len(rows) - len(bad)}/{len(rows)} cases as expected")
    return 0 if not bad else 1


def _cmd_shootout(args: argparse.Namespace) -> int:
    from repro.analysis.compare import protocol_comparison
    from repro.analysis.report import format_rows

    rows = protocol_comparison(
        references=args.references, seed=args.seed, workers=args.workers
    )
    print(format_rows(rows, "Protocol comparison (timed Futurebus run)"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_rows
    from repro.perf.bench import run_bench_suite, write_bench_json

    report = run_bench_suite(workers=args.workers, quick=args.quick)
    print(
        format_rows(
            report["explorer"],
            "Explorer hot path (single worker, exhaustive)",
        )
    )
    section_rows = []
    for name in ("matrix", "des"):
        section = report[name]
        section_rows.append(
            {
                "section": name,
                "serial_s": section["serial_s"],
                "parallel_s": section["parallel_s"],
                "speedup": section["speedup"],
                "identical": section["rows_identical"],
            }
        )
    print()
    print(
        format_rows(
            section_rows,
            f"Serial vs parallel ({report['workers']} workers, "
            f"{report['cpu_count']} cpus)",
        )
    )
    path = write_bench_json(report, args.out)
    print(f"\nwrote {path}")
    ok = report["matrix"]["rows_identical"] and report["des"]["rows_identical"]
    return 0 if ok else 1


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    import random

    from repro.hierarchy import HierarchicalSystem

    h = HierarchicalSystem.grid(args.clusters, args.cpus)
    rng = random.Random(args.seed)
    units = list(h.controllers)
    for _ in range(args.references):
        unit = rng.choice(units)
        address = rng.randrange(args.lines) * 32
        if rng.random() < 0.4:
            h.write(unit, address)
        else:
            h.read(unit, address)
    violations = h.check_coherence()
    traffic = h.traffic()
    print(f"{args.clusters} clusters x {args.cpus} cpus, "
          f"{args.references} checked references")
    print(f"violations: {len(violations)}")
    print(f"global transactions: {traffic['global_transactions']}")
    print(f"local transactions:  {traffic['local_transactions']}")
    return 0 if not violations else 1


def _cmd_diagram(args: argparse.Namespace) -> int:
    from repro.analysis.diagram import render_adjacency, to_dot
    from repro.protocols.registry import make_protocol

    protocol = make_protocol(args.protocol)
    if args.dot:
        print(to_dot(protocol))
    else:
        print(render_adjacency(protocol))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.analysis.ablations import (
        geometry_sweep,
        line_size_sweep,
        replacement_policy_sweep,
    )
    from repro.analysis.report import format_rows

    sweeps = {
        "line-size": (line_size_sweep,
                      "Line-size selection (fixed capacity)"),
        "replacement": (replacement_policy_sweep,
                        "Replacement policy"),
        "geometry": (geometry_sweep,
                     "Associativity vs sets at fixed capacity"),
    }
    fn, title = sweeps[args.sweep]
    print(format_rows(fn(references=args.references), title))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.compare import run_protocol_on_trace
    from repro.analysis.report import format_rows
    from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
    from repro.workloads.trace import Trace

    if args.trace:
        trace = Trace.load(args.trace)
    else:
        config = SyntheticConfig(
            processors=args.processors,
            p_shared=args.p_shared,
            p_write=args.p_write,
        )
        trace = SyntheticWorkload(config, seed=args.seed).trace(
            args.references
        )
    report = run_protocol_on_trace(
        args.protocol, trace, timed=not args.atomic, check=args.check
    )
    print(format_rows([report.row()], f"{args.protocol} over "
                                      f"{len(trace)} references"))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.fuzz import (
        INJECTABLE_BUGS,
        CampaignConfig,
        ScenarioConfig,
        load_repro,
        run_campaign,
        run_scenario,
    )

    if args.replay:
        scenario, recorded, note = load_repro(args.replay)
        print(f"replaying {args.replay}: {scenario.label}")
        if note:
            print(f"  note: {note}")
        result = run_scenario(scenario)
        if result.failure is None:
            print("  scenario PASSED (the recorded failure did not "
                  "reproduce)")
            if recorded is not None:
                print(f"  recorded was: {recorded}")
            return 0
        print(f"  reproduced: {result.failure}")
        return 1

    scenario_config = ScenarioConfig()
    if args.inject:
        if args.inject not in INJECTABLE_BUGS:
            known = ", ".join(sorted(INJECTABLE_BUGS))
            print(f"unknown bug {args.inject!r}; known: {known}",
                  file=sys.stderr)
            return 2
        scenario_config = dataclasses.replace(scenario_config,
                                              inject=args.inject)
    config = CampaignConfig(
        seeds=args.seeds,
        seed_base=args.seed_base,
        scenario=scenario_config,
        shrink=not args.no_shrink,
    )
    report = run_campaign(config, workers=args.workers, out_dir=args.out)
    print(report.summary_text(), end="")
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(report.summary_json())
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOESI / Futurebus (Sweazey & Smith, ISCA 1986) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate + diff Tables 1-7")
    p.add_argument("--render", action="store_true",
                   help="print the full tables, not just the diffs")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("figures", help="regenerate Figures 1-4")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("membership", help="classify protocols vs the class")
    p.add_argument("protocol", nargs="*", help="registry names (default all)")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_membership)

    p = sub.add_parser("verify", help="run the model-checking matrix")
    p.add_argument("--quick", action="store_true",
                   help="positive cases only")
    p.add_argument("--workers", type=int, default=None,
                   help="fan cases out across N worker processes")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("shootout", help="protocol performance comparison")
    p.add_argument("--references", type=int, default=4000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="fan protocols out across N worker processes")
    p.set_defaults(func=_cmd_shootout)

    p = sub.add_parser("hierarchy", help="multi-bus demonstration")
    p.add_argument("--clusters", type=int, default=2)
    p.add_argument("--cpus", type=int, default=2)
    p.add_argument("--references", type=int, default=2000)
    p.add_argument("--lines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("diagram", help="emit a protocol state diagram")
    p.add_argument("protocol", help="registry name")
    p.add_argument("--dot", action="store_true", help="Graphviz DOT output")
    p.set_defaults(func=_cmd_diagram)

    p = sub.add_parser("ablation", help="design-choice sweeps")
    p.add_argument("sweep", choices=["line-size", "replacement", "geometry"])
    p.add_argument("--references", type=int, default=4000)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("run", help="run one protocol over a workload")
    p.add_argument("protocol", help="registry name, e.g. moesi, berkeley")
    p.add_argument("--trace", help="trace file (unit R/W addr per line)")
    p.add_argument("--references", type=int, default=4000)
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--p-shared", type=float, default=0.3)
    p.add_argument("--p-write", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--atomic", action="store_true",
                   help="atomic trace-order run instead of timed")
    p.add_argument("--check", action="store_true",
                   help="runtime coherence checking on")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "bench",
        help="serial-vs-parallel performance suite -> BENCH_perf.json",
    )
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes for the parallel legs")
    p.add_argument("--quick", action="store_true",
                   help="small bounds (smoke-test sized)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="where to write the machine-readable report")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign (or --replay a repro file)",
    )
    p.add_argument("--seeds", type=int, default=200,
                   help="number of seeds to run")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first seed (campaigns are pure functions of seeds)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes; 0 = serial (identical output)")
    p.add_argument("--out", default="fuzz_repros",
                   help="directory for shrunk repro_seed<N>.json files")
    p.add_argument("--inject", metavar="BUG",
                   help="plant a known-broken protocol in every scenario "
                   "(fuzzer self-test)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample minimisation")
    p.add_argument("--json", metavar="FILE",
                   help="also write the machine-readable campaign summary")
    p.add_argument("--replay", metavar="FILE",
                   help="re-execute a repro file verbatim instead of "
                   "running a campaign")
    p.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())

"""Core MOESI model: states, signals, events, the protocol class tables,
policies, class-membership validation, and consistency invariants.

This package is a direct formalization of sections 3.1-3.4 of Sweazey &
Smith (ISCA '86).
"""

from repro.core.actions import (
    CH_O_OR_M,
    CH_S_OR_E,
    BusOp,
    ConditionalState,
    LocalAction,
    MasterKind,
    NextState,
    SnoopAction,
    resolve_next_state,
)
from repro.core.events import (
    ALL_BUS_EVENTS,
    ALL_LOCAL_EVENTS,
    BusEvent,
    LocalEvent,
)
from repro.core.invariants import (
    CopyView,
    InconsistencyError,
    Invariant,
    InvariantViolation,
    LineView,
    assert_line_consistent,
    check_line,
)
from repro.core.policy import (
    ActionPolicy,
    InvalidatePolicy,
    PreferredPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    UpdatePolicy,
    policy_by_name,
)
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    SnoopContext,
    TableProtocol,
)
from repro.core.signals import (
    MasterSignals,
    ResponseAggregate,
    SignalLine,
    SnoopResponse,
)
from repro.core.states import (
    INTERVENIENT_STATES,
    NON_EXCLUSIVE_STATES,
    SOLE_COPY_STATES,
    STATE_SYNONYMS,
    UNOWNED_STATES,
    VALID_STATES,
    LineState,
    StateCharacteristics,
    parse_state,
    state_from_characteristics,
)
from repro.core.transitions import (
    LOCAL_TABLE,
    SNOOP_TABLE,
    MoesiClassTable,
    local_choices,
    snoop_choices,
)
from repro.core.validation import (
    ComplianceIssue,
    MembershipReport,
    check_membership,
)

__all__ = [name for name in dir() if not name.startswith("_")]

"""Actions: what a cache does in response to a local or bus event.

Each cell of the paper's tables is written in the notation::

    result state (M, O, E, S, I), bus signals (CA, IM, BC, BS, SL, DI, CH),
    action (R, W)

with two twists this module models explicitly:

* **conditional result states** ``CH:O/M`` ("if CH then O else M") and
  ``CH:S/E`` -- the final state of the acting cache depends on whether any
  *other* cache asserted CH during the transaction;
* **compound actions** -- ``Read>Write`` (two back-to-back transactions) and
  the BS-abort sequences of the adapted foreign protocols, written in the
  paper as e.g. ``BS;S,CA,W`` (assert busy to abort the ongoing transaction,
  push the dirty line to memory, land in S; the aborted transaction then
  restarts against an up-to-date memory).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Union

from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = [
    "BusOp",
    "NextState",
    "ConditionalState",
    "LocalAction",
    "SnoopAction",
    "resolve_next_state",
]


class BusOp(enum.Enum):
    """The data-phase operation a master performs on the bus."""

    #: Issue a read on the bus (table notation ``R``).
    READ = "R"
    #: Issue a write on the bus (table notation ``W``).
    WRITE = "W"
    #: Two transactions: a read, followed by a write (``Read>Write``).
    READ_THEN_WRITE = "Read>Write"
    #: Address-only transaction (e.g. invalidate with no data transfer).
    NONE = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class ConditionalState:
    """A result state that depends on the observed CH line.

    ``ConditionalState(LineState.OWNED, LineState.MODIFIED)`` renders as the
    paper's ``CH:O/M``: if any other cache asserted CH (it retains a copy),
    the actor lands in O; otherwise it knows it holds the sole copy and may
    take M.
    """

    if_ch: LineState
    if_not_ch: LineState

    def resolve(self, ch_observed: bool) -> LineState:
        return self.if_ch if ch_observed else self.if_not_ch

    def notation(self) -> str:
        return f"CH:{self.if_ch.letter}/{self.if_not_ch.letter}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation()


#: The canonical conditional result states used by the tables.
CH_O_OR_M = ConditionalState(LineState.OWNED, LineState.MODIFIED)
CH_S_OR_E = ConditionalState(LineState.SHAREABLE, LineState.EXCLUSIVE)

NextState = Union[LineState, ConditionalState]


def resolve_next_state(next_state: NextState, ch_observed: bool) -> LineState:
    """Collapse a possibly-conditional next state given the CH observation."""
    if isinstance(next_state, ConditionalState):
        return next_state.resolve(ch_observed)
    return next_state


class MasterKind(enum.Enum):
    """Which kind of board an action in the class table is intended for.

    The paper annotates Table 1 entries with ``*`` (write-through cache) and
    ``**`` (no cache); unannotated entries belong to copy-back caches.  One
    entry (``I,IM,BC,W``) carries both annotations.
    """

    COPY_BACK = ""
    WRITE_THROUGH = "*"
    NON_CACHING = "**"
    WRITE_THROUGH_OR_NON_CACHING = "*,**"

    @property
    def includes_write_through(self) -> bool:
        return self in (
            MasterKind.WRITE_THROUGH,
            MasterKind.WRITE_THROUGH_OR_NON_CACHING,
        )

    @property
    def includes_non_caching(self) -> bool:
        return self in (
            MasterKind.NON_CACHING,
            MasterKind.WRITE_THROUGH_OR_NON_CACHING,
        )


@dataclasses.dataclass(frozen=True)
class LocalAction:
    """One permitted response to a local event (a Table 1 cell entry).

    Attributes mirror the table notation: the result state, the master
    signals to drive on the address cycle, and the bus operation (if any).
    ``bc_dont_care`` models the ``BC?`` annotation on write-backs, where the
    pushing cache may choose whether to broadcast.
    """

    next_state: NextState
    signals: MasterSignals = MasterSignals()
    bus_op: BusOp = BusOp.NONE
    bc_dont_care: bool = False
    kind: MasterKind = MasterKind.COPY_BACK

    def __post_init__(self) -> None:
        if self.bus_op is BusOp.NONE and self.signals.im and not self.signals.ca:
            raise ValueError("an address-only invalidate must assert CA")
        if self.bc_dont_care and self.signals.bc:
            raise ValueError("BC? (don't care) excludes asserting BC outright")

    @property
    def uses_bus(self) -> bool:
        """Whether this action generates at least one bus transaction."""
        return self.bus_op is not BusOp.NONE or self.signals.im or self.signals.ca

    @property
    def is_silent(self) -> bool:
        """A purely local transition with no bus activity."""
        return not self.uses_bus

    def notation(self) -> str:
        """Render in the paper's cell notation, e.g. ``CH:O/M,CA,IM,BC,W``."""
        parts = [
            self.next_state.notation()
            if isinstance(self.next_state, ConditionalState)
            else self.next_state.letter
        ]
        if self.signals.ca:
            parts.append("CA")
        if self.signals.im:
            parts.append("IM")
        if self.signals.bc:
            parts.append("BC")
        elif self.bc_dont_care:
            parts.append("BC?")
        if self.bus_op in (BusOp.READ, BusOp.WRITE):
            parts.append(self.bus_op.value)
        text = ",".join(parts)
        if self.bus_op is BusOp.READ_THEN_WRITE:
            text = BusOp.READ_THEN_WRITE.value
        return text + self.kind.value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation()


@dataclasses.dataclass(frozen=True)
class SnoopAction:
    """One permitted response to a bus event (a Table 2 cell entry).

    ``abort_push`` models the BS-adapted foreign protocols: when set, the
    snooper asserts BS to abort the observed transaction, performs a
    write-back of its dirty line (optionally asserting the given master
    signals on that push), and only then takes ``next_state``; the aborted
    master subsequently retries.
    """

    next_state: NextState
    response: SnoopResponse = SnoopResponse.NONE
    abort_push: bool = False
    push_signals: Optional[MasterSignals] = None

    def __post_init__(self) -> None:
        if self.abort_push and not self.response.bs:
            raise ValueError("an abort-push action must assert BS")
        if self.push_signals is not None and not self.abort_push:
            raise ValueError("push_signals only apply to abort-push actions")

    @property
    def intervenes(self) -> bool:
        """DI asserted: this snooper preempts memory's response."""
        return self.response.di

    @property
    def connects(self) -> bool:
        """SL asserted: this snooper connects to a broadcast transfer."""
        return self.response.sl

    @property
    def retains_copy(self) -> bool:
        """Whether the snooper still holds a valid copy afterwards.

        Conditional next states on the snoop side (only O on an uncached
        read, ``CH:O/M``) always retain the copy.
        """
        if isinstance(self.next_state, ConditionalState):
            return True
        return self.next_state.valid

    def notation(self) -> str:
        """Render in the paper's cell notation, e.g. ``O,CH,DI``."""
        state_text = (
            self.next_state.notation()
            if isinstance(self.next_state, ConditionalState)
            else self.next_state.letter
        )
        if self.abort_push:
            push = self.push_signals or MasterSignals()
            push_parts = ["BS;" + state_text]
            if push.ca:
                push_parts.append("CA")
            push_parts.append("W")
            return ",".join(push_parts)
        tail = self.response.notation()
        return state_text + ("," + tail if tail else "")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation()


#: The "stay invalid, no response" snoop action shared by every row-I cell.
SNOOP_IGNORE = SnoopAction(LineState.INVALID, SnoopResponse.NONE)

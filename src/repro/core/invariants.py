"""System-wide consistency invariants of the MOESI model.

The paper's definitions (section 3.1) induce properties that must hold for
every line address at every quiescent instant (between bus transactions):

* **single-owner** -- "All data is said to be owned uniquely either by one
  and only one cache or by main memory": at most one cache may hold the
  line in an intervenient state (M or O).
* **exclusive-is-sole** -- a cache in M or E is the only cache holding a
  valid copy.
* **owner-current / copies-current** -- the shared memory image is the set
  of all owned data; every valid cached copy must equal the owner's data
  (a read hit anywhere returns the most recent system-wide write).
* **memory-current-if-unowned** -- main memory is the default owner: when
  no cache owns the line, memory must hold the current data.  As a special
  case this covers "Exclusive data must match the copy in main memory".

Foreign protocols (Illinois, Firefly, Write-Once) give S the stronger
meaning "consistent with main memory"; :func:`check_line` can additionally
enforce that with ``memory_consistent_shared=True`` (valid only for
homogeneous systems running those protocols).

Freshness abstraction: rather than tracking concrete data values, a copy
(or memory) is *fresh* when it equals the last value written to the line
anywhere in the system.  This is exactly the property coherence demands of
a read, and it keeps the model checker's state space finite.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Iterable, Optional, Sequence

from repro.core.states import INTERVENIENT_STATES, SOLE_COPY_STATES, LineState

__all__ = [
    "Invariant",
    "CopyView",
    "LineView",
    "InvariantViolation",
    "PER_STEP_CHECKERS",
    "checker_for",
    "check_line",
    "assert_line_consistent",
]


class Invariant(enum.Enum):
    """Identity of each checked consistency property."""

    SINGLE_OWNER = "single-owner"
    EXCLUSIVE_IS_SOLE = "exclusive-is-sole"
    OWNER_CURRENT = "owner-current"
    COPIES_CURRENT = "copies-current"
    MEMORY_CURRENT_IF_UNOWNED = "memory-current-if-unowned"
    MEMORY_CURRENT_IF_SHARED = "memory-current-if-shared"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class CopyView:
    """One cache's view of a line: who, in what state, fresh or stale."""

    unit: str
    state: LineState
    fresh: bool = True


@dataclasses.dataclass(frozen=True)
class LineView:
    """A quiescent snapshot of one line address across the whole system."""

    copies: tuple[CopyView, ...]
    memory_fresh: bool = True
    address: int = 0

    @classmethod
    def of(
        cls,
        copies: Iterable[CopyView],
        memory_fresh: bool = True,
        address: int = 0,
    ) -> "LineView":
        return cls(tuple(copies), memory_fresh, address)

    @property
    def valid_copies(self) -> tuple[CopyView, ...]:
        return tuple(c for c in self.copies if c.state.valid)

    @property
    def owners(self) -> tuple[CopyView, ...]:
        return tuple(c for c in self.copies if c.state in INTERVENIENT_STATES)


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """A specific broken invariant, with enough context to debug it."""

    invariant: Invariant
    address: int
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant} @0x{self.address:x}: {self.detail}"


class InconsistencyError(AssertionError):
    """Raised by :func:`assert_line_consistent` on any violation."""

    def __init__(self, violations: Sequence[InvariantViolation]) -> None:
        super().__init__("; ".join(str(v) for v in violations))
        self.violations = list(violations)


LineChecker = Callable[[LineView], list[InvariantViolation]]


def _check_single_owner(view: LineView) -> list[InvariantViolation]:
    owners = view.owners
    if len(owners) <= 1:
        return []
    names = ", ".join(f"{c.unit}:{c.state}" for c in owners)
    return [
        InvariantViolation(
            Invariant.SINGLE_OWNER,
            view.address,
            f"multiple owners: {names}",
        )
    ]


def _check_exclusive_is_sole(view: LineView) -> list[InvariantViolation]:
    valid = view.valid_copies
    violations: list[InvariantViolation] = []
    for copy in valid:
        if copy.state in SOLE_COPY_STATES and len(valid) > 1:
            others = ", ".join(
                f"{c.unit}:{c.state}" for c in valid if c is not copy
            )
            violations.append(
                InvariantViolation(
                    Invariant.EXCLUSIVE_IS_SOLE,
                    view.address,
                    f"{copy.unit} holds {copy.state} but copies also at: "
                    f"{others}",
                )
            )
    return violations


def _check_owner_current(view: LineView) -> list[InvariantViolation]:
    return [
        InvariantViolation(
            Invariant.OWNER_CURRENT,
            view.address,
            f"owner {copy.unit} ({copy.state}) holds stale data",
        )
        for copy in view.owners
        if not copy.fresh
    ]


def _check_copies_current(view: LineView) -> list[InvariantViolation]:
    return [
        InvariantViolation(
            Invariant.COPIES_CURRENT,
            view.address,
            f"valid copy at {copy.unit} ({copy.state}) is stale",
        )
        for copy in view.valid_copies
        if not copy.fresh
    ]


def _check_memory_current_if_unowned(view: LineView) -> list[InvariantViolation]:
    if view.owners or view.memory_fresh:
        return []
    return [
        InvariantViolation(
            Invariant.MEMORY_CURRENT_IF_UNOWNED,
            view.address,
            "no cache owns the line but memory is stale",
        )
    ]


def _check_memory_current_if_shared(view: LineView) -> list[InvariantViolation]:
    if view.memory_fresh:
        return []
    shared = [c for c in view.valid_copies if c.state is LineState.SHAREABLE]
    if not shared:
        return []
    names = ", ".join(c.unit for c in shared)
    return [
        InvariantViolation(
            Invariant.MEMORY_CURRENT_IF_SHARED,
            view.address,
            f"S copies at {names} but memory is stale "
            "(foreign-protocol S-state semantics)",
        )
    ]


#: The individual per-step checkers, keyed by the invariant they enforce.
#: :func:`check_line` composes them; external step-wise tooling (the
#: fuzzer's invariant oracle, negative-path tests) can apply each checker
#: in isolation to attribute a failure to one precise property.
#: MEMORY_CURRENT_IF_SHARED is excluded from the default composition: it
#: only holds under the foreign-protocol S-state semantics (see
#: ``memory_consistent_shared``).
PER_STEP_CHECKERS: dict[Invariant, LineChecker] = {
    Invariant.SINGLE_OWNER: _check_single_owner,
    Invariant.EXCLUSIVE_IS_SOLE: _check_exclusive_is_sole,
    Invariant.OWNER_CURRENT: _check_owner_current,
    Invariant.COPIES_CURRENT: _check_copies_current,
    Invariant.MEMORY_CURRENT_IF_UNOWNED: _check_memory_current_if_unowned,
    Invariant.MEMORY_CURRENT_IF_SHARED: _check_memory_current_if_shared,
}

#: Checkers applied by default, in reporting order.
_DEFAULT_CHECKERS: tuple[Invariant, ...] = (
    Invariant.SINGLE_OWNER,
    Invariant.EXCLUSIVE_IS_SOLE,
    Invariant.OWNER_CURRENT,
    Invariant.COPIES_CURRENT,
    Invariant.MEMORY_CURRENT_IF_UNOWNED,
)


def checker_for(invariant: Invariant) -> LineChecker:
    """The standalone checker enforcing exactly one invariant."""
    return PER_STEP_CHECKERS[invariant]


def check_line(
    view: LineView,
    memory_consistent_shared: bool = False,
) -> list[InvariantViolation]:
    """Check all invariants on one line snapshot; return violations found.

    An empty list means the line is consistent.  The check is the
    composition of :data:`PER_STEP_CHECKERS`; a stale owner is reported
    under both OWNER_CURRENT and COPIES_CURRENT (they name different
    invariants), but a caller only needs the list to be non-empty to fail.
    """
    violations: list[InvariantViolation] = []
    for invariant in _DEFAULT_CHECKERS:
        violations.extend(PER_STEP_CHECKERS[invariant](view))
    if memory_consistent_shared:
        violations.extend(_check_memory_current_if_shared(view))
    return violations


def assert_line_consistent(
    view: LineView, memory_consistent_shared: bool = False
) -> None:
    """Raise :class:`InconsistencyError` if any invariant is violated."""
    violations = check_line(view, memory_consistent_shared)
    if violations:
        raise InconsistencyError(violations)

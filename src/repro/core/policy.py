"""Action-selection policies over the MOESI class choice sets.

Where a cell of Tables 1/2 offers several permitted actions, something must
pick one.  The paper (section 3.4) stresses that *any* selection rule keeps
the system consistent -- "as an extreme case, it would introduce no errors
if a board were to select an action at each instant from the available set
using a random number generator or a selection algorithm such as round
robin."  Policies make that statement executable:

* :class:`PreferredPolicy` -- always the first (paper-preferred) entry;
* :class:`InvalidatePolicy` -- bias toward invalidation (Berkeley-style
  write behaviour: take M via an address-only invalidate, drop snooped
  lines on broadcast writes);
* :class:`UpdatePolicy` -- bias toward broadcast/update (Dragon-style);
* :class:`RandomPolicy` -- seeded uniform choice (the paper's extreme case);
* :class:`RoundRobinPolicy` -- cycle deterministically through the set.

The Puzak-style recency-aware refinement of section 5.2 lives in
:mod:`repro.ext.puzak` and plugs into the same interface.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from repro.core.actions import LocalAction, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import LocalContext, SnoopContext
from repro.core.states import LineState

__all__ = [
    "ActionPolicy",
    "PreferredPolicy",
    "InvalidatePolicy",
    "UpdatePolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "policy_by_name",
]


class ActionPolicy(abc.ABC):
    """Chooses one action out of a non-empty permitted set."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_local(
        self,
        state: LineState,
        event: LocalEvent,
        choices: Sequence[LocalAction],
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        """Select the local action to perform; ``choices`` is never empty."""

    @abc.abstractmethod
    def choose_snoop(
        self,
        state: LineState,
        event: BusEvent,
        choices: Sequence[SnoopAction],
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        """Select the snoop response; ``choices`` is never empty."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class PreferredPolicy(ActionPolicy):
    """Always take the paper-preferred (first) entry of each cell."""

    name = "preferred"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return choices[0]


class InvalidatePolicy(ActionPolicy):
    """Prefer invalidation over broadcast-update.

    Locally: writes to shared lines use the address-only invalidate and
    take M.  On the snoop side: when offered the update-or-invalidate
    choice (broadcast writes, columns 8/10), drop the line.
    """

    name = "invalidate"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        for choice in choices:
            if choice.signals.im and not choice.signals.bc:
                return choice
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        for choice in choices:
            if not choice.retains_copy:
                return choice
        return choices[0]


class UpdatePolicy(ActionPolicy):
    """Prefer broadcast-update over invalidation (Dragon-style)."""

    name = "update"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        for choice in choices:
            if choice.signals.bc:
                return choice
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        for choice in choices:
            if choice.retains_copy:
                return choice
        return choices[0]


class RandomPolicy(ActionPolicy):
    """Uniform random selection -- the paper's "extreme case".

    Deterministic given the seed, so model-checking and test runs remain
    reproducible.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return self._rng.choice(list(choices))

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return self._rng.choice(list(choices))


class RoundRobinPolicy(ActionPolicy):
    """Cycle through each cell's permitted actions in order.

    A separate counter is kept per (state, event) cell so each cell's
    choices are exercised evenly.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: dict[tuple, int] = {}

    def _pick(self, key: tuple, choices: Sequence):
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        return choices[index % len(choices)]

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return self._pick(("local", state, event), choices)

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return self._pick(("snoop", state, event), choices)


_POLICIES = {
    "preferred": PreferredPolicy,
    "invalidate": InvalidatePolicy,
    "update": UpdatePolicy,
    "random": RandomPolicy,
    "round-robin": RoundRobinPolicy,
}


def policy_by_name(name: str, **kwargs) -> ActionPolicy:
    """Instantiate a policy by its registry name.

    >>> policy_by_name("preferred").name
    'preferred'
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return cls(**kwargs)

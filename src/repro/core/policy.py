"""Action-selection policies over the MOESI class choice sets.

Where a cell of Tables 1/2 offers several permitted actions, something must
pick one.  The paper (section 3.4) stresses that *any* selection rule keeps
the system consistent -- "as an extreme case, it would introduce no errors
if a board were to select an action at each instant from the available set
using a random number generator or a selection algorithm such as round
robin."  Policies make that statement executable:

* :class:`PreferredPolicy` -- always the first (paper-preferred) entry;
* :class:`InvalidatePolicy` -- bias toward invalidation (Berkeley-style
  write behaviour: take M via an address-only invalidate, drop snooped
  lines on broadcast writes);
* :class:`UpdatePolicy` -- bias toward broadcast/update (Dragon-style);
* :class:`RandomPolicy` -- seeded uniform choice (the paper's extreme case);
* :class:`RoundRobinPolicy` -- cycle deterministically through the set;
* :class:`ThresholdAdaptivePolicy` / :class:`CompetitiveAdaptivePolicy` --
  per-line adaptive update/invalidate hybrids in the style of Dovgopol &
  Rosonke (arXiv:1502.00101): broadcast updates while sharing pays off,
  switch to invalidation when it stops.

Because every adaptive policy still picks from the *permitted* choice
set, section 3.4's guarantee applies unchanged: the hybrids are full
members of the MOESI class, and :func:`repro.core.validation.check_membership`
proves it mechanically.

The Puzak-style recency-aware refinement of section 5.2 lives in
:mod:`repro.ext.puzak` and plugs into the same interface.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from repro.core.actions import LocalAction, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import LocalContext, SnoopContext
from repro.core.states import LineState

__all__ = [
    "ActionPolicy",
    "PreferredPolicy",
    "InvalidatePolicy",
    "UpdatePolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ThresholdAdaptivePolicy",
    "CompetitiveAdaptivePolicy",
    "policy_by_name",
]

#: Bus events that carry a broadcast update to snooping sharers.
_BROADCAST_EVENTS = (
    BusEvent.CACHE_BROADCAST_WRITE,
    BusEvent.UNCACHED_BROADCAST_WRITE,
)

#: Bus events that signal another cache is actively reading the line.
_REMOTE_READ_EVENTS = (
    BusEvent.CACHE_READ,
    BusEvent.CACHE_READ_FOR_MODIFY,
    BusEvent.UNCACHED_READ,
)


class ActionPolicy(abc.ABC):
    """Chooses one action out of a non-empty permitted set."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_local(
        self,
        state: LineState,
        event: LocalEvent,
        choices: Sequence[LocalAction],
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        """Select the local action to perform; ``choices`` is never empty."""

    @abc.abstractmethod
    def choose_snoop(
        self,
        state: LineState,
        event: BusEvent,
        choices: Sequence[SnoopAction],
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        """Select the snoop response; ``choices`` is never empty."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class PreferredPolicy(ActionPolicy):
    """Always take the paper-preferred (first) entry of each cell."""

    name = "preferred"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return choices[0]


class InvalidatePolicy(ActionPolicy):
    """Prefer invalidation over broadcast-update.

    Locally: writes to shared lines use the address-only invalidate and
    take M.  On the snoop side: when offered the update-or-invalidate
    choice (broadcast writes, columns 8/10), drop the line.
    """

    name = "invalidate"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        for choice in choices:
            if choice.signals.im and not choice.signals.bc:
                return choice
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        for choice in choices:
            if not choice.retains_copy:
                return choice
        return choices[0]


class UpdatePolicy(ActionPolicy):
    """Prefer broadcast-update over invalidation (Dragon-style)."""

    name = "update"

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        for choice in choices:
            if choice.signals.bc:
                return choice
        return choices[0]

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        for choice in choices:
            if choice.retains_copy:
                return choice
        return choices[0]


class RandomPolicy(ActionPolicy):
    """Uniform random selection -- the paper's "extreme case".

    Deterministic given the seed, so model-checking and test runs remain
    reproducible.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return self._rng.choice(list(choices))

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return self._rng.choice(list(choices))


class RoundRobinPolicy(ActionPolicy):
    """Cycle through each cell's permitted actions in order.

    A separate counter is kept per (state, event) cell so each cell's
    choices are exercised evenly.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: dict[tuple, int] = {}

    def _pick(self, key: tuple, choices: Sequence):
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        return choices[index % len(choices)]

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        return self._pick(("local", state, event), choices)

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        return self._pick(("snoop", state, event), choices)


class _AdaptiveHybridPolicy(ActionPolicy):
    """Shared machinery of the per-line update/invalidate hybrids.

    Both hybrids delegate the actual pick to :class:`UpdatePolicy` or
    :class:`InvalidatePolicy` behaviour, so every choice is drawn from
    the permitted set and class membership is untouched; the adaptive
    part is only *which* bias applies to a given line at a given moment.
    Counters key on the line address from the choice context; calls
    without a context fall back to a single shared key.
    """

    def __init__(self) -> None:
        self._update = UpdatePolicy()
        self._invalidate = InvalidatePolicy()

    @staticmethod
    def _key(ctx) -> object:
        return ctx.address if ctx is not None else None

    def _bias_local(self, key) -> ActionPolicy:
        raise NotImplementedError

    def _bias_snoop(self, key) -> ActionPolicy:
        raise NotImplementedError

    def choose_local(self, state, event, choices, ctx=None) -> LocalAction:
        key = self._key(ctx)
        self._note_local(key, event)
        return self._bias_local(key).choose_local(state, event, choices, ctx)

    def choose_snoop(self, state, event, choices, ctx=None) -> SnoopAction:
        key = self._key(ctx)
        self._note_snoop(key, event)
        return self._bias_snoop(key).choose_snoop(state, event, choices, ctx)

    def _note_local(self, key, event: LocalEvent) -> None:
        raise NotImplementedError

    def _note_snoop(self, key, event: BusEvent) -> None:
        raise NotImplementedError


class ThresholdAdaptivePolicy(_AdaptiveHybridPolicy):
    """Per-line threshold hybrid (Dovgopol & Rosonke's threshold scheme).

    Writer side: broadcast updates until ``threshold`` consecutive local
    writes pass without any other cache reading the line, then switch
    that line to invalidation (the sharers evidently stopped caring);
    an observed remote read resets the line to update mode.

    Snooper side: keep connecting to broadcast updates until
    ``threshold`` consecutive updates arrive without a local access to
    the line, then drop the copy instead -- the receiver half of the
    same bet.
    """

    name = "adaptive-threshold"

    def __init__(self, threshold: int = 3) -> None:
        super().__init__()
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        #: Consecutive local writes since a remote read, per line.
        self._local_writes: dict[object, int] = {}
        #: Consecutive snooped updates since a local access, per line.
        self._snooped_updates: dict[object, int] = {}

    def _bias_local(self, key) -> ActionPolicy:
        if self._local_writes.get(key, 0) > self.threshold:
            return self._invalidate
        return self._update

    def _bias_snoop(self, key) -> ActionPolicy:
        if self._snooped_updates.get(key, 0) > self.threshold:
            return self._invalidate
        return self._update

    def _note_local(self, key, event: LocalEvent) -> None:
        self._snooped_updates[key] = 0
        if event is LocalEvent.WRITE:
            self._local_writes[key] = self._local_writes.get(key, 0) + 1

    def _note_snoop(self, key, event: BusEvent) -> None:
        if event in _REMOTE_READ_EVENTS:
            self._local_writes[key] = 0
        elif event in _BROADCAST_EVENTS:
            self._snooped_updates[key] = (
                self._snooped_updates.get(key, 0) + 1
            )


class CompetitiveAdaptivePolicy(_AdaptiveHybridPolicy):
    """Per-line competitive hybrid (competitive-update snooping).

    Each snooper gives every line a budget of update credits.  A snooped
    broadcast update costs one credit; a local access refills the line.
    While credits remain the snooper connects to updates; at zero it
    invalidates itself.  The writer always prefers broadcasting -- once
    every sharer has dropped out, the ``CH:O/M`` conditional resolves to
    M and subsequent writes go silent, so the scheme self-limits without
    any writer-side bookkeeping (the 2-competitive argument of the
    competitive-snooping literature).
    """

    name = "adaptive-competitive"

    def __init__(self, budget: int = 4) -> None:
        super().__init__()
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        #: Remaining update credits, per line.
        self._credits: dict[object, int] = {}

    def _bias_local(self, key) -> ActionPolicy:
        return self._update

    def _bias_snoop(self, key) -> ActionPolicy:
        if self._credits.get(key, self.budget) <= 0:
            return self._invalidate
        return self._update

    def _note_local(self, key, event: LocalEvent) -> None:
        self._credits[key] = self.budget

    def _note_snoop(self, key, event: BusEvent) -> None:
        if event in _BROADCAST_EVENTS:
            self._credits[key] = self._credits.get(key, self.budget) - 1


_POLICIES = {
    "preferred": PreferredPolicy,
    "invalidate": InvalidatePolicy,
    "update": UpdatePolicy,
    "random": RandomPolicy,
    "round-robin": RoundRobinPolicy,
    "adaptive-threshold": ThresholdAdaptivePolicy,
    "adaptive-competitive": CompetitiveAdaptivePolicy,
}


def policy_by_name(name: str, **kwargs) -> ActionPolicy:
    """Instantiate a policy by its registry name.

    >>> policy_by_name("preferred").name
    'preferred'
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return cls(**kwargs)

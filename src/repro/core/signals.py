"""Futurebus consistency signal lines (paper section 3.2).

Two groups of lines are defined:

**Cache master signals**, asserted by the unit that owns the transaction
during the broadcast address cycle:

* ``CA`` -- *cache master*: "I am a copy-back cache and at the end of this
  transaction I will retain a copy of the referenced data, or I am a
  write-through cache and have just read this data."
* ``IM`` -- *intent to modify*: "in this transaction I will modify the
  referenced data."
* ``BC`` -- *broadcast*: "if I do modify the data, I will place the
  modifications on the bus so that you and/or the memory can update itself."

**Response signals**, asserted wired-OR by any other unit during the address
handshake:

* ``CH`` -- *cache hit*: "I have a copy of the referenced data, which I will
  retain at the end of this transaction."
* ``DI`` -- *data intervention*: the asserting unit owns the line and
  preempts the response from memory.
* ``SL`` -- *select*: a third party (slave cache or memory) connects to a
  broadcast transfer to update its own copy.
* ``BS`` -- *busy*: aborts the transaction; needed only by adapted foreign
  protocols (Write-Once, Illinois, Firefly) that require memory to be
  updated during an intervenient transfer, which the Futurebus cannot do
  directly.

Because every bus line is open-collector ("drive low, float high"), the
observed value of each response line is the logical OR over all responders;
:class:`ResponseAggregate` performs that reduction.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Optional

__all__ = [
    "MasterSignals",
    "SnoopResponse",
    "ResponseAggregate",
    "SignalLine",
]


class SignalLine(enum.Enum):
    """Names of the seven consistency signal lines on the backplane."""

    CA = "CA"
    IM = "IM"
    BC = "BC"
    CH = "CH"
    DI = "DI"
    SL = "SL"
    BS = "BS"

    @property
    def is_master_signal(self) -> bool:
        return self in (SignalLine.CA, SignalLine.IM, SignalLine.BC)

    @property
    def is_response_signal(self) -> bool:
        return not self.is_master_signal

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class MasterSignals:
    """The (CA, IM, BC) triple asserted by the transaction master.

    The triple fully determines which of the paper's bus-event columns
    (notes 5-10 of the tables) the other units observe; see
    :func:`repro.core.events.BusEvent.from_signals`.
    """

    ca: bool = False
    im: bool = False
    bc: bool = False

    # Note: BC without IM is permitted.  The paper's tables only enumerate
    # BC together with IM (columns 8 and 10), but the write-back ("push")
    # entries of Table 1 carry a ``BC?`` annotation with IM *not* asserted:
    # a push copies data to memory without modifying it, and the pusher may
    # choose to broadcast the transfer so third parties can refresh
    # themselves.  Snoopers classify such a transfer like a non-modifying
    # access (see :meth:`repro.core.events.BusEvent.from_signals`).

    @property
    def is_write(self) -> bool:
        """IM asserted: the master will modify the referenced data."""
        return self.im

    @property
    def is_broadcast(self) -> bool:
        """BC asserted: modifications will be placed on the bus."""
        return self.bc

    def notation(self) -> str:
        """Render in the paper's table-heading notation, e.g. ``CA,~IM,~BC``."""
        parts = []
        for name, value in (("CA", self.ca), ("IM", self.im), ("BC", self.bc)):
            parts.append(name if value else "~" + name)
        return ",".join(parts)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation()


@dataclasses.dataclass(frozen=True)
class SnoopResponse:
    """Response-line assertions contributed by one snooping unit.

    ``ch`` may be ``None`` to express the paper's ``CH?`` ("don't care")
    entries -- cases where no other unit would be listening so the value of
    the line does not matter.  The aggregate treats ``None`` as
    not-asserted; the table-diff machinery preserves the distinction.
    """

    ch: Optional[bool] = False
    di: bool = False
    sl: bool = False
    bs: bool = False

    NONE: "SnoopResponse" = None  # type: ignore[assignment]  # set below

    @property
    def asserts_anything(self) -> bool:
        return bool(self.ch) or self.di or self.sl or self.bs

    def notation(self) -> str:
        """Signals in table notation, e.g. ``CH,DI`` or '' for silence."""
        parts = []
        if self.ch is None:
            parts.append("CH?")
        elif self.ch:
            parts.append("CH")
        if self.di:
            parts.append("DI")
        if self.sl:
            parts.append("SL")
        if self.bs:
            parts.append("BS")
        return ",".join(parts)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation() or "(none)"


SnoopResponse.NONE = SnoopResponse()


@dataclasses.dataclass(frozen=True)
class ResponseAggregate:
    """Wired-OR reduction of every unit's response-line contribution.

    On the physical bus each open-collector line is pulled low by any
    asserting driver, so the master (and every third party) observes the OR
    over all responders.  ``CH?`` don't-cares contribute nothing.
    """

    ch: bool = False
    di: bool = False
    sl: bool = False
    bs: bool = False

    @classmethod
    def of(cls, responses: Iterable[SnoopResponse]) -> "ResponseAggregate":
        ch = di = sl = bs = False
        for response in responses:
            ch = ch or bool(response.ch)
            di = di or response.di
            sl = sl or response.sl
            bs = bs or response.bs
        return _AGGREGATES[(ch, di, sl, bs)]

    @property
    def aborted(self) -> bool:
        """BS observed: the transaction must abort and later retry."""
        return self.bs

    @property
    def intervened(self) -> bool:
        """DI observed: an owning cache preempts the memory response."""
        return self.di

    @property
    def shared(self) -> bool:
        """CH observed: some other cache retains a copy of the line."""
        return self.ch

    def notation(self) -> str:
        parts = []
        if self.ch:
            parts.append("CH")
        if self.di:
            parts.append("DI")
        if self.sl:
            parts.append("SL")
        if self.bs:
            parts.append("BS")
        return ",".join(parts)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.notation() or "(none)"


#: The wired-OR reduction has only 16 outcomes; :meth:`ResponseAggregate.of`
#: runs once per bus transaction, so it hands out interned instances
#: instead of constructing a frozen dataclass each time.
_AGGREGATES = {
    (ch, di, sl, bs): ResponseAggregate(ch=ch, di=di, sl=sl, bs=bs)
    for ch in (False, True)
    for di in (False, True)
    for sl in (False, True)
    for bs in (False, True)
}

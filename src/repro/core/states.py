"""The MOESI cache-line states and their defining characteristics.

Sweazey & Smith (ISCA '86, section 3.1) observe that every line held in a
copy-back cache can be described by three pairwise-partitioning boolean
characteristics:

* **validity** -- whether the cached copy is usable at all;
* **exclusiveness** -- whether this is guaranteed to be the only cached copy;
* **ownership** -- whether this cache (rather than main memory) is
  responsible for the accuracy of the data for the entire system.

Of the eight combinations only five are meaningful (exclusiveness and
ownership are undefined for invalid data), giving the famous state set:

======================  ==========  =============  ==========
state                   valid       exclusive      owned
======================  ==========  =============  ==========
``MODIFIED``   (M)      yes         yes            yes
``OWNED``      (O)      yes         no             yes
``EXCLUSIVE``  (E)      yes         yes            no
``SHAREABLE``  (S)      yes         no             no
``INVALID``    (I)      no          --             --
======================  ==========  =============  ==========

This module is the single source of truth for the state lattice; the paper's
Figure 3 (three characteristics) and Figure 4 (state pairs) are regenerated
from the predicates defined here (see :mod:`repro.analysis.figures`).
"""

from __future__ import annotations

import enum
from typing import Iterable

__all__ = [
    "LineState",
    "StateCharacteristics",
    "STATE_SYNONYMS",
    "INTERVENIENT_STATES",
    "SOLE_COPY_STATES",
    "UNOWNED_STATES",
    "NON_EXCLUSIVE_STATES",
    "VALID_STATES",
    "state_from_characteristics",
    "parse_state",
]


class LineState(enum.Enum):
    """One of the five MOESI states of a cached line.

    The enum value is the single-letter abbreviation used throughout the
    paper's tables, so ``str(state)`` round-trips with the table notation.
    """

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHAREABLE = "S"
    INVALID = "I"

    # ------------------------------------------------------------------
    # The three characteristics (paper section 3.1.1 - 3.1.3).
    # ------------------------------------------------------------------
    # ``valid`` (section 3.1.1: whether the cached data is usable) is a
    # plain per-member attribute, assigned below -- the coherence checker
    # and cache lookup read it on every access, and a property call there
    # is measurable.  ``code`` is the member's interned integer id (table
    # row order M,O,E,S,I -> 0..4), the row index of the compiled flat
    # transition tables in :mod:`repro.core.transitions`.

    @property
    def exclusive(self) -> bool:
        """Whether this is guaranteed the only cached copy (section 3.1.2).

        Raises :class:`ValueError` for the invalid state, for which
        exclusiveness is undefined ("it is pointless to consider the
        exclusiveness or ownership of a data line that is known to be
        invalid").
        """
        if not self.valid:
            raise ValueError("exclusiveness is undefined for invalid data")
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    @property
    def owned(self) -> bool:
        """Whether this cache is responsible for the data (section 3.1.3)."""
        if not self.valid:
            raise ValueError("ownership is undefined for invalid data")
        return self in (LineState.MODIFIED, LineState.OWNED)

    # ------------------------------------------------------------------
    # Derived pairwise qualities (paper section 3.1.4, Figure 4).
    # ------------------------------------------------------------------
    @property
    def intervenient(self) -> bool:
        """M and O data are *intervenient*: the holder must intervene on bus
        accesses so that no other module reads stale data from memory."""
        return self.valid and self.owned

    @property
    def sole_copy(self) -> bool:
        """M and E data are the only cached copy; a local modification needs
        no warning to other caches."""
        return self.valid and self.exclusive

    @property
    def must_announce_writes(self) -> bool:
        """S and O data are non-exclusive; a local modification requires a
        bus message (broadcast or invalidate) to the other caches."""
        return self.valid and not self.exclusive

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


for _code, _state in enumerate(LineState):
    _state.code = _code
    _state.valid = _state is not LineState.INVALID
    #: The single-letter abbreviation ('M', 'O', 'E', 'S' or 'I') --
    #: interned alongside ``code`` so hot paths skip a property call.
    _state.letter = _state.value
del _code, _state


#: The paper gives three completely equivalent naming schemes for each state
#: (section 3.1.4); the "salient feature" names are preferred.  Keyed by
#: state, values ordered (salient, modified-terminology, owned-terminology).
STATE_SYNONYMS: dict[LineState, tuple[str, str, str]] = {
    LineState.MODIFIED: ("Modified", "Exclusive modified", "Exclusive owned"),
    LineState.OWNED: ("Owned", "Shareable modified", "Shareable owned"),
    LineState.EXCLUSIVE: ("Exclusive", "Exclusive unmodified", "Exclusive unowned"),
    LineState.SHAREABLE: ("Shareable", "Shareable unmodified", "Shareable unowned"),
    LineState.INVALID: ("Invalid", "Invalid", "Invalid"),
}

#: The four state pairs of Figure 4 and their shared quality.
INTERVENIENT_STATES = frozenset({LineState.MODIFIED, LineState.OWNED})
SOLE_COPY_STATES = frozenset({LineState.MODIFIED, LineState.EXCLUSIVE})
UNOWNED_STATES = frozenset({LineState.EXCLUSIVE, LineState.SHAREABLE})
NON_EXCLUSIVE_STATES = frozenset({LineState.OWNED, LineState.SHAREABLE})

VALID_STATES = frozenset(s for s in LineState if s.valid)


class StateCharacteristics:
    """Explicit (validity, exclusiveness, ownership) triple for a state.

    Provided mainly so the figure generator and the property-based tests can
    enumerate the characteristic space independently from the enum.
    """

    __slots__ = ("valid", "exclusive", "owned")

    def __init__(self, valid: bool, exclusive: bool, owned: bool) -> None:
        self.valid = bool(valid)
        self.exclusive = bool(exclusive)
        self.owned = bool(owned)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateCharacteristics):
            return NotImplemented
        return (self.valid, self.exclusive, self.owned) == (
            other.valid,
            other.exclusive,
            other.owned,
        )

    def __hash__(self) -> int:
        return hash((self.valid, self.exclusive, self.owned))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateCharacteristics(valid={self.valid}, "
            f"exclusive={self.exclusive}, owned={self.owned})"
        )


def state_from_characteristics(
    valid: bool, exclusive: bool = False, owned: bool = False
) -> LineState:
    """Map a (validity, exclusiveness, ownership) triple to its MOESI state.

    All four (exclusive, owned) combinations of an invalid line collapse to
    :attr:`LineState.INVALID`, reflecting the paper's collapse of eight
    combinations to five states.
    """
    if not valid:
        return LineState.INVALID
    if exclusive and owned:
        return LineState.MODIFIED
    if owned:
        return LineState.OWNED
    if exclusive:
        return LineState.EXCLUSIVE
    return LineState.SHAREABLE


_LETTER_TO_STATE = {state.value: state for state in LineState}


def parse_state(text: str) -> LineState:
    """Parse a state from its single-letter abbreviation or full name.

    >>> parse_state("M") is LineState.MODIFIED
    True
    >>> parse_state("shareable") is LineState.SHAREABLE
    True
    """
    token = text.strip()
    if token.upper() in _LETTER_TO_STATE:
        return _LETTER_TO_STATE[token.upper()]
    for state, names in STATE_SYNONYMS.items():
        if token.lower() in (name.lower() for name in names):
            return state
    raise ValueError(f"unknown MOESI state: {text!r}")


def states_holding_copy(states: Iterable[LineState]) -> list[LineState]:
    """Filter an iterable of states down to those that hold a valid copy."""
    return [s for s in states if s.valid]

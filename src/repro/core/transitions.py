"""The MOESI class of compatible protocols: Tables 1 and 2 as data.

This module is the heart of the reproduction.  The paper defines its class
of compatible protocols by two tables:

* **Table 1** ("MOESI Protocol: Result State and Bus Signals -- Local")
  gives, for each current state and each local event (read, write, pass,
  flush), the *set* of permitted actions.  Entries marked ``*`` are the
  write-through-cache members of the class, ``**`` the non-caching members.
* **Table 2** (same title, "Bus Event" side) gives the permitted responses
  of a snooping cache to each of the six bus-event columns.

Where a cell offers a choice, *the first entry is preferred* (paper
section 3.3); policies in :mod:`repro.core.policy` select among the rest.

Section 3.3 additionally licenses four relaxations (items 9-12) that close
the class under further substitutions:

9.  any ``CH:O/M`` may be replaced by O; M may change to O at any time;
10. any ``CH:S/E`` may be replaced by S; E may change to S at any time;
11. any transition to (or remaining in) E or S on a *bus* event may be
    changed to I (without asserting CH);
12. the state E may be replaced by M (at a loss of efficiency, since a
    write-back then becomes required).

:func:`local_choices` / :func:`snoop_choices` expose the literal table
cells; :class:`MoesiClassTable` additionally implements the relaxation
closure used by the class-membership validator
(:mod:`repro.core.validation`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.actions import (
    CH_O_OR_M,
    CH_S_OR_E,
    BusOp,
    ConditionalState,
    LocalAction,
    MasterKind,
    NextState,
    SnoopAction,
)
from repro.core.events import (
    ALL_BUS_EVENTS,
    ALL_LOCAL_EVENTS,
    BusEvent,
    LocalEvent,
)
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = [
    "LOCAL_TABLE",
    "SNOOP_TABLE",
    "local_choices",
    "snoop_choices",
    "MoesiClassTable",
    "N_STATES",
    "N_LOCAL_EVENTS",
    "N_BUS_EVENTS",
    "CompiledCells",
    "TableCompilationError",
    "compile_cells",
    "verify_compiled",
    "compile_deterministic",
    "shared_class_table",
    "compiled_class_cells",
    "fast_tables_enabled",
    "set_fast_tables",
    "tables_epoch",
    "BatchTables",
    "BATCH_LOCAL_WIDTH",
    "BATCH_SNOOP_WIDTH",
    "batchable",
    "lower_batch_tables",
    "verify_batch_tables",
    "bus_event_code_table",
]

#: Dimensions of the compiled flat tables.  Rows are indexed by
#: ``LineState.code`` (M,O,E,S,I -> 0..4), columns by ``LocalEvent.code``
#: (notes 1-4 -> 0..3) or ``BusEvent.code`` (notes 5-10 -> 0..5).
N_STATES = 5
N_LOCAL_EVENTS = 4
N_BUS_EVENTS = 6

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

_CB = MasterKind.COPY_BACK
_WT = MasterKind.WRITE_THROUGH
_NC = MasterKind.NON_CACHING
_WT_NC = MasterKind.WRITE_THROUGH_OR_NON_CACHING


def _sig(ca: bool = False, im: bool = False, bc: bool = False) -> MasterSignals:
    return MasterSignals(ca=ca, im=im, bc=bc)


def _local(
    next_state: NextState,
    *,
    ca: bool = False,
    im: bool = False,
    bc: bool = False,
    op: BusOp = BusOp.NONE,
    bc_dont_care: bool = False,
    kind: MasterKind = _CB,
) -> LocalAction:
    return LocalAction(
        next_state=next_state,
        signals=_sig(ca, im, bc),
        bus_op=op,
        bc_dont_care=bc_dont_care,
        kind=kind,
    )


def _snoop(
    next_state: NextState,
    *,
    ch: Optional[bool] = False,
    di: bool = False,
    sl: bool = False,
) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di, sl=sl))


# ---------------------------------------------------------------------------
# Table 1: local events.  Cell values are tuples of permitted actions, the
# first entry being the preferred one.  An empty tuple renders as the
# paper's "--" (not a legal case / nothing to do).
# ---------------------------------------------------------------------------

#: Silent hit: remain in place, no bus activity.
def _stay(state: LineState) -> LocalAction:
    return _local(state)


LOCAL_TABLE: dict[tuple[LineState, LocalEvent], tuple[LocalAction, ...]] = {
    # ----- state M ------------------------------------------------------
    (M, LocalEvent.READ): (_stay(M),),
    (M, LocalEvent.WRITE): (_stay(M),),
    # Push the dirty line, keep the copy: "E,CA,BC?,W".
    (M, LocalEvent.PASS): (
        _local(E, ca=True, op=BusOp.WRITE, bc_dont_care=True),
    ),
    # Push the dirty line and discard: "I,BC?,W".
    (M, LocalEvent.FLUSH): (
        _local(I, op=BusOp.WRITE, bc_dont_care=True),
    ),
    # ----- state O ------------------------------------------------------
    (O, LocalEvent.READ): (_stay(O),),
    # "CH:O/M,CA,IM,BC,W  or  M,CA,IM": broadcast the modification and
    # remain owner, or send an address-only invalidate and take M.
    (O, LocalEvent.WRITE): (
        _local(CH_O_OR_M, ca=True, im=True, bc=True, op=BusOp.WRITE),
        _local(M, ca=True, im=True),
    ),
    # "CH:S/E,CA,BC?,W": push but keep the (now clean) copy.
    (O, LocalEvent.PASS): (
        _local(CH_S_OR_E, ca=True, op=BusOp.WRITE, bc_dont_care=True),
    ),
    (O, LocalEvent.FLUSH): (
        _local(I, op=BusOp.WRITE, bc_dont_care=True),
    ),
    # ----- state E ------------------------------------------------------
    (E, LocalEvent.READ): (_stay(E),),
    # Sole copy: modify silently.
    (E, LocalEvent.WRITE): (_stay(M),),
    (E, LocalEvent.PASS): (),
    # Clean: discard without a write-back.
    (E, LocalEvent.FLUSH): (_stay(I),),
    # ----- state S ------------------------------------------------------
    (S, LocalEvent.READ): (_stay(S),),
    # Copy-back choices as for O, plus the write-through members ("*"):
    # "S,IM,BC,W*" and "S,IM,W*" write past the cache without CA.
    (S, LocalEvent.WRITE): (
        _local(CH_O_OR_M, ca=True, im=True, bc=True, op=BusOp.WRITE),
        _local(M, ca=True, im=True),
        _local(S, im=True, bc=True, op=BusOp.WRITE, kind=_WT),
        _local(S, im=True, op=BusOp.WRITE, kind=_WT),
    ),
    (S, LocalEvent.PASS): (),
    (S, LocalEvent.FLUSH): (_stay(I),),
    # ----- state I ------------------------------------------------------
    # "CH:S/E,CA,R  or  S,CA,R*  or  I,R**".
    (I, LocalEvent.READ): (
        _local(CH_S_OR_E, ca=True, op=BusOp.READ),
        _local(S, ca=True, op=BusOp.READ, kind=_WT),
        _local(I, op=BusOp.READ, kind=_NC),
    ),
    # "M,CA,IM,R  or  Read>Write  or  I,IM,BC,W*,**  or  I,IM,W*,**
    #  or  Read>Write*".
    (I, LocalEvent.WRITE): (
        _local(M, ca=True, im=True, op=BusOp.READ),
        _local(CH_S_OR_E, ca=True, op=BusOp.READ_THEN_WRITE),
        _local(I, im=True, bc=True, op=BusOp.WRITE, kind=_WT_NC),
        _local(I, im=True, op=BusOp.WRITE, kind=_WT_NC),
        _local(S, ca=True, op=BusOp.READ_THEN_WRITE, kind=_WT),
    ),
    (I, LocalEvent.PASS): (),
    (I, LocalEvent.FLUSH): (),
}


# ---------------------------------------------------------------------------
# Table 2: bus events observed by a snooping cache.
# ---------------------------------------------------------------------------

_COL5 = BusEvent.CACHE_READ
_COL6 = BusEvent.CACHE_READ_FOR_MODIFY
_COL7 = BusEvent.UNCACHED_READ
_COL8 = BusEvent.CACHE_BROADCAST_WRITE
_COL9 = BusEvent.UNCACHED_WRITE
_COL10 = BusEvent.UNCACHED_BROADCAST_WRITE

SNOOP_TABLE: dict[tuple[LineState, BusEvent], tuple[SnoopAction, ...]] = {
    # ----- state M ------------------------------------------------------
    # A cache read: supply the data, downgrade to O (requester shares).
    (M, _COL5): (_snoop(O, ch=True, di=True),),
    # A write miss / invalidate: supply the data, then invalidate.
    (M, _COL6): (_snoop(I, di=True),),
    # Read by a non-caching processor: supply data, remain sole owner.
    (M, _COL7): (_snoop(M, ch=None, di=True),),
    # Broadcast write by a cache master cannot happen against M (the writer
    # would have to hold a copy, contradicting exclusivity).
    (M, _COL8): (),
    # Non-broadcast uncached write: capture the written data (the rest of
    # the line may be stale in memory, so the owner must not let memory
    # take the write alone).
    (M, _COL9): (_snoop(M, ch=None, di=True),),
    # Broadcast uncached write: connect and update; still owner, because a
    # word-write leaves the remainder of the line stale in memory.
    (M, _COL10): (_snoop(M, ch=None, sl=True),),
    # ----- state O ------------------------------------------------------
    (O, _COL5): (_snoop(O, ch=True, di=True),),
    (O, _COL6): (_snoop(I, di=True),),
    # Uncached read: supply data; listen (do not assert CH) to learn
    # whether any other cache retains a copy -- if none does, the owner
    # may promote itself to M.
    (O, _COL7): (_snoop(CH_O_OR_M, di=True),),
    # Broadcast write by another cache: relinquish ownership (the writer
    # becomes owner); update and share, or invalidate.
    (O, _COL8): (_snoop(S, ch=True, sl=True), _snoop(I)),
    (O, _COL9): (_snoop(O, ch=None, di=True),),
    # Must update (cannot invalidate): the write may be partial and memory
    # stale for the rest of the line; no cache master takes ownership.
    (O, _COL10): (_snoop(O, ch=True, sl=True),),
    # ----- state E ------------------------------------------------------
    (E, _COL5): (_snoop(S, ch=True),),
    (E, _COL6): (_snoop(I),),
    # Sole copy and unowned: nobody is listening for CH.
    (E, _COL7): (_snoop(E, ch=None),),
    (E, _COL8): (),
    (E, _COL9): (_snoop(I),),
    (E, _COL10): (_snoop(E, ch=None, sl=True), _snoop(I)),
    # ----- state S ------------------------------------------------------
    (S, _COL5): (_snoop(S, ch=True),),
    (S, _COL6): (_snoop(I),),
    # CH must be asserted even for a non-caching master: an O-state owner
    # may be listening to decide between O and M (see O, column 7).
    (S, _COL7): (_snoop(S, ch=True),),
    (S, _COL8): (_snoop(S, ch=True, sl=True), _snoop(I)),
    (S, _COL9): (_snoop(I),),
    (S, _COL10): (_snoop(S, ch=True, sl=True), _snoop(I)),
    # ----- state I ------------------------------------------------------
    (I, _COL5): (_snoop(I),),
    (I, _COL6): (_snoop(I),),
    (I, _COL7): (_snoop(I),),
    (I, _COL8): (_snoop(I),),
    (I, _COL9): (_snoop(I),),
    (I, _COL10): (_snoop(I),),
}


#: Kind-filtered Table-1 cells, memoized -- the tables are immutable and
#: there are only ``20 * len(MasterKind)`` distinct queries, but protocols
#: ask them on every local event.
_LOCAL_CHOICES_MEMO: dict[tuple, tuple[LocalAction, ...]] = {}


def local_choices(
    state: LineState,
    event: LocalEvent,
    kind: Optional[MasterKind] = None,
) -> tuple[LocalAction, ...]:
    """Permitted Table-1 actions for ``state`` on ``event``.

    With ``kind`` given, filters to the entries applicable to that kind of
    board (copy-back entries are those without a ``*``/``**`` annotation).
    """
    choices = LOCAL_TABLE[(state, event)]
    if kind is None:
        return choices
    key = (state, event, kind)
    cached = _LOCAL_CHOICES_MEMO.get(key)
    if cached is not None:
        return cached
    if kind is MasterKind.COPY_BACK:
        filtered = tuple(c for c in choices if c.kind is _CB)
    elif kind.includes_write_through and not kind.includes_non_caching:
        filtered = tuple(c for c in choices if c.kind.includes_write_through)
    elif kind.includes_non_caching and not kind.includes_write_through:
        filtered = tuple(c for c in choices if c.kind.includes_non_caching)
    else:
        filtered = tuple(
            c
            for c in choices
            if c.kind.includes_write_through or c.kind.includes_non_caching
        )
    _LOCAL_CHOICES_MEMO[key] = filtered
    return filtered


def snoop_choices(state: LineState, event: BusEvent) -> tuple[SnoopAction, ...]:
    """Permitted Table-2 responses for a snooper in ``state`` on ``event``."""
    return SNOOP_TABLE[(state, event)]


class MoesiClassTable:
    """The full protocol class: literal table entries plus the relaxation
    closure of section 3.3 items 9-12.

    Used both by :mod:`repro.core.validation` (membership checking) and by
    the exhaustive model checker (which explores *every* action in the
    closure to establish that any mix of choices preserves consistency).
    """

    def __init__(self, include_relaxations: bool = True) -> None:
        self.include_relaxations = include_relaxations
        # The tables are immutable, so each cell's closure is computed at
        # most once; both the membership validator and the model checker
        # query the same few cells millions of times.
        self._local_memo: dict[tuple, frozenset[LocalAction]] = {}
        self._snoop_memo: dict[tuple, frozenset[SnoopAction]] = {}
        # Membership verdicts are likewise immutable per (cell, action):
        # the differential oracle re-asks the same few questions for every
        # observed transition of a long fuzz campaign.
        self._permit_memo: dict[tuple, bool] = {}

    # -- closure computation ------------------------------------------------
    @staticmethod
    def _next_state_variants(
        base: NextState, on_bus_event: bool
    ) -> set[NextState]:
        """All next-states reachable from ``base`` under relaxations 9-12."""
        variants: set[NextState] = {base}
        if isinstance(base, ConditionalState):
            # 9/10: a conditional may collapse to its conservative branch.
            if base == CH_O_OR_M:
                variants.add(O)
            if base == CH_S_OR_E:
                variants.add(S)
                if not on_bus_event:
                    # 12: E may be replaced by M -- inside the conditional
                    # only (unconditional M would claim exclusivity while
                    # other copies may exist), i.e. CH:S/E -> CH:S/M.
                    variants.add(ConditionalState(S, M))
        else:
            # 9: M may become O at any time; 10: E may become S.
            if base is M:
                variants.add(O)
            if base is E:
                variants.add(S)
            # 12: E may be replaced by M (and transitively O, via 9).
            if base is E and not on_bus_event:
                variants.add(M)
        # 11: on bus events, landing in (or staying in) E or S may become I.
        if on_bus_event:
            for variant in list(variants):
                if isinstance(variant, ConditionalState):
                    continue
                if variant in (E, S):
                    variants.add(I)
        return variants

    def local_action_set(
        self,
        state: LineState,
        event: LocalEvent,
        kind: Optional[MasterKind] = None,
    ) -> frozenset[LocalAction]:
        """The closed set of permitted local actions."""
        key = (state, event, kind)
        cached = self._local_memo.get(key)
        if cached is not None:
            return cached
        actions: set[LocalAction] = set()
        for base in local_choices(state, event, kind):
            actions.add(base)
            if not self.include_relaxations:
                continue
            for variant in self._next_state_variants(
                base.next_state, on_bus_event=False
            ):
                actions.add(
                    LocalAction(
                        next_state=variant,
                        signals=base.signals,
                        bus_op=base.bus_op,
                        bc_dont_care=base.bc_dont_care,
                        kind=base.kind,
                    )
                )
        result = frozenset(actions)
        self._local_memo[key] = result
        return result

    def snoop_action_set(
        self, state: LineState, event: BusEvent
    ) -> frozenset[SnoopAction]:
        """The closed set of permitted snoop responses."""
        key = (state, event)
        cached = self._snoop_memo.get(key)
        if cached is not None:
            return cached
        actions: set[SnoopAction] = set()
        for base in snoop_choices(state, event):
            actions.add(base)
            if not self.include_relaxations:
                continue
            for variant in self._next_state_variants(
                base.next_state, on_bus_event=True
            ):
                if variant == base.next_state:
                    continue
                response = base.response
                if variant is I:
                    # Relaxation 11: an invalidating snooper does not
                    # retain the line, so it must not assert CH; an owner
                    # abandoning its line must still intervene/connect
                    # first, so DI/SL are preserved.
                    response = SnoopResponse(
                        ch=False,
                        di=response.di,
                        sl=response.sl,
                        bs=response.bs,
                    )
                actions.add(SnoopAction(variant, response))
        result = frozenset(actions)
        self._snoop_memo[key] = result
        return result

    # -- membership ---------------------------------------------------------
    def permits_local(
        self,
        state: LineState,
        event: LocalEvent,
        action: LocalAction,
        kind: Optional[MasterKind] = None,
    ) -> bool:
        """Whether ``action`` is within the class for (state, event).

        Kind annotations on the candidate action are ignored for matching:
        what matters is the observable behaviour (result state, signals,
        bus operation).
        """
        key = ("local", state, event, action, kind)
        cached = self._permit_memo.get(key)
        if cached is not None:
            return cached
        candidates = self.local_action_set(state, event, kind)
        verdict = any(_same_local_behaviour(action, c) for c in candidates)
        self._permit_memo[key] = verdict
        return verdict

    def permits_snoop(
        self, state: LineState, event: BusEvent, action: SnoopAction
    ) -> bool:
        key = ("snoop", state, event, action)
        cached = self._permit_memo.get(key)
        if cached is not None:
            return cached
        candidates = self.snoop_action_set(state, event)
        verdict = any(_same_snoop_behaviour(action, c) for c in candidates)
        self._permit_memo[key] = verdict
        return verdict

    def all_cells(self) -> Iterable[tuple]:
        """Iterate (side, state, event, permitted-tuple) over both tables."""
        for state in LineState:
            for event in ALL_LOCAL_EVENTS:
                yield ("local", state, event, LOCAL_TABLE[(state, event)])
        for state in LineState:
            for event in ALL_BUS_EVENTS:
                yield ("snoop", state, event, SNOOP_TABLE[(state, event)])


def _same_local_behaviour(a: LocalAction, b: LocalAction) -> bool:
    """Behavioural equality ignoring the kind annotation and BC don't-cares.

    ``BC?`` means the pusher may or may not broadcast, so a concrete action
    asserting BC on a push matches a ``BC?`` table entry.
    """
    if a.next_state != b.next_state or a.bus_op != b.bus_op:
        return False
    if (a.signals.ca, a.signals.im) != (b.signals.ca, b.signals.im):
        return False
    if a.signals.bc == b.signals.bc:
        return True
    return (b.bc_dont_care and not b.signals.bc) or (
        a.bc_dont_care and not a.signals.bc
    )


def _same_snoop_behaviour(a: SnoopAction, b: SnoopAction) -> bool:
    """Behavioural equality treating ``CH?`` don't-cares as wildcards."""
    if a.next_state != b.next_state:
        return False
    if a.abort_push != b.abort_push:
        return False
    ra, rb = a.response, b.response
    if (ra.di, ra.sl, ra.bs) != (rb.di, rb.sl, rb.bs):
        return False
    if ra.ch is None or rb.ch is None:
        return True
    return bool(ra.ch) == bool(rb.ch)


# ---------------------------------------------------------------------------
# The table compiler: dict-based cells lowered to integer-indexed flat
# tuples.
#
# Every table in the reproduction -- Table 1/2, the relaxation closure,
# and the per-protocol Tables 3-7 -- is a total function from a
# ``(state, event)`` pair to a small tuple of actions.  The dict form is
# the readable specification; the compiled form is one flat tuple of
# ``N_STATES * N_EVENTS`` cells indexed by ``state.code * N_EVENTS +
# event.code``, turning each hot-path lookup into integer arithmetic plus
# one sequence index (no tuple allocation, no enum hashing).  Because the
# compiled form is *derived*, every compilation ends with a cell-by-cell
# equivalence check against the dict-based source -- compile-then-verify.
# ---------------------------------------------------------------------------


class TableCompilationError(AssertionError):
    """A compiled table disagreed with its dict-based source cell."""


class CompiledCells:
    """Flat integer-indexed form of a protocol's (or the class closure's)
    transition cells.

    ``local`` has ``N_STATES * N_LOCAL_EVENTS`` entries, ``snoop``
    ``N_STATES * N_BUS_EVENTS``; each entry is the cell's action tuple
    (empty for the paper's "--" cells).
    """

    __slots__ = ("local", "snoop")

    def __init__(
        self,
        local: tuple[tuple[LocalAction, ...], ...],
        snoop: tuple[tuple[SnoopAction, ...], ...],
    ) -> None:
        if len(local) != N_STATES * N_LOCAL_EVENTS:
            raise ValueError(f"expected {N_STATES * N_LOCAL_EVENTS} local cells")
        if len(snoop) != N_STATES * N_BUS_EVENTS:
            raise ValueError(f"expected {N_STATES * N_BUS_EVENTS} snoop cells")
        self.local = local
        self.snoop = snoop

    def local_cell(
        self, state: LineState, event: LocalEvent
    ) -> tuple[LocalAction, ...]:
        return self.local[state.code * N_LOCAL_EVENTS + event.code]

    def snoop_cell(
        self, state: LineState, event: BusEvent
    ) -> tuple[SnoopAction, ...]:
        return self.snoop[state.code * N_BUS_EVENTS + event.code]


def compile_cells(local_fn, snoop_fn, verify: bool = True) -> CompiledCells:
    """Lower cell accessors ``local_fn(state, event)`` / ``snoop_fn(state,
    event)`` (each returning an action tuple) into a :class:`CompiledCells`.

    With ``verify`` (the default) the compiled form is immediately checked
    cell-by-cell against the source accessors through the *compiled* index
    arithmetic, so an interning or ordering bug cannot survive compilation.
    """
    local = tuple(
        tuple(local_fn(state, event))
        for state in LineState
        for event in ALL_LOCAL_EVENTS
    )
    snoop = tuple(
        tuple(snoop_fn(state, event))
        for state in LineState
        for event in ALL_BUS_EVENTS
    )
    cells = CompiledCells(local, snoop)
    if verify:
        verify_compiled(cells, local_fn, snoop_fn)
    return cells


def verify_compiled(cells: CompiledCells, local_fn, snoop_fn) -> None:
    """One-time equivalence check: every compiled cell, looked up through
    the integer index, must equal the dict-based source cell."""
    for state in LineState:
        for event in ALL_LOCAL_EVENTS:
            compiled = cells.local[state.code * N_LOCAL_EVENTS + event.code]
            if compiled != tuple(local_fn(state, event)):
                raise TableCompilationError(
                    f"compiled local cell ({state}, {event}) diverges "
                    "from its dict-based source"
                )
        for event in ALL_BUS_EVENTS:
            compiled = cells.snoop[state.code * N_BUS_EVENTS + event.code]
            if compiled != tuple(snoop_fn(state, event)):
                raise TableCompilationError(
                    f"compiled snoop cell ({state}, {event}) diverges "
                    "from its dict-based source"
                )


def compile_deterministic(
    local_transitions, snoop_transitions, snoop_fallback=None
):
    """Compile a deterministic protocol's transition mappings (the shape of
    :class:`repro.core.protocol.TableProtocol`, the paper's Tables 3-7)
    into two flat tuples of single actions (``None`` marks an illegal
    "--" cell).

    ``snoop_fallback(state, event)`` supplies the class-default response
    for snoop cells absent from the protocol's own table (mixed-system
    operation, paper section 4); the fallback is folded in at compile time
    so the hot path never takes a KeyError.  The compiled form is verified
    cell-by-cell against the mappings before being returned.
    """
    local = tuple(
        local_transitions.get((state, event))
        for state in LineState
        for event in ALL_LOCAL_EVENTS
    )
    snoop = []
    for state in LineState:
        for event in ALL_BUS_EVENTS:
            action = snoop_transitions.get((state, event))
            if action is None and snoop_fallback is not None:
                action = snoop_fallback(state, event)
            snoop.append(action)
    snoop = tuple(snoop)
    for state in LineState:
        for event in ALL_LOCAL_EVENTS:
            expected = local_transitions.get((state, event))
            if local[state.code * N_LOCAL_EVENTS + event.code] is not expected:
                raise TableCompilationError(
                    f"compiled local transition ({state}, {event}) diverges "
                    "from the protocol's mapping"
                )
        for event in ALL_BUS_EVENTS:
            expected = snoop_transitions.get((state, event))
            if expected is None and snoop_fallback is not None:
                expected = snoop_fallback(state, event)
            if snoop[state.code * N_BUS_EVENTS + event.code] is not expected:
                raise TableCompilationError(
                    f"compiled snoop transition ({state}, {event}) diverges "
                    "from the protocol's mapping"
                )
    return local, snoop


_FAST_TABLES_ENABLED = True
_TABLES_EPOCH = 0


def fast_tables_enabled() -> bool:
    """Whether protocols should serve the hot path from compiled tables."""
    return _FAST_TABLES_ENABLED


def tables_epoch() -> int:
    """Monotonic counter bumped whenever :func:`set_fast_tables` changes
    the setting.  Forked workers freeze the setting they inherited, so
    pool owners (:mod:`repro.perf.engine`) compare the epoch they started
    under against the current one and restart stale workers."""
    return _TABLES_EPOCH


def set_fast_tables(enabled: bool) -> bool:
    """Globally enable/disable the compiled-table fast path (tests compare
    the two paths byte-for-byte).  Returns the previous setting.

    Only affects protocols instantiated (or first exercised) afterwards:
    already-compiled instances keep their tables.  Each effective change
    bumps :func:`tables_epoch` so warm worker pools notice."""
    global _FAST_TABLES_ENABLED, _TABLES_EPOCH
    previous = _FAST_TABLES_ENABLED
    if bool(enabled) != previous:
        _TABLES_EPOCH += 1
    _FAST_TABLES_ENABLED = bool(enabled)
    return previous


_SHARED_CLASS_TABLE: Optional[MoesiClassTable] = None
_COMPILED_CLASS_CELLS: Optional[CompiledCells] = None


def shared_class_table() -> MoesiClassTable:
    """The process-wide relaxation-closure table (memoized cells and
    membership verdicts shared by every explorer and oracle)."""
    global _SHARED_CLASS_TABLE
    if _SHARED_CLASS_TABLE is None:
        _SHARED_CLASS_TABLE = MoesiClassTable()
    return _SHARED_CLASS_TABLE


def compiled_class_cells() -> CompiledCells:
    """The full relaxation closure, compiled: every cell is its closed
    action set sorted by notation (the deterministic order the full-class
    explorer enumerates choices in)."""
    global _COMPILED_CLASS_CELLS
    if _COMPILED_CLASS_CELLS is None:
        table = shared_class_table()

        def local_fn(state, event):
            return tuple(
                sorted(
                    table.local_action_set(state, event),
                    key=lambda a: a.notation(),
                )
            )

        def snoop_fn(state, event):
            return tuple(
                sorted(
                    table.snoop_action_set(state, event),
                    key=lambda a: a.notation(),
                )
            )

        _COMPILED_CLASS_CELLS = compile_cells(local_fn, snoop_fn)
    return _COMPILED_CLASS_CELLS


# ---------------------------------------------------------------------------
# Batch lowering: protocol tables as pure-integer records.
#
# The struct-of-arrays kernel (:mod:`repro.perf.batch`) steps thousands of
# independent systems as parallel integer arrays, so it cannot afford enum
# objects, dataclasses, or policy dispatch on its inner loop.  This section
# lowers a *deterministic* protocol instance to two flat tuples of small
# integer records -- one consult becomes one tuple index.  Protocols whose
# choices depend on hidden state (seeded RNGs, round-robin counters) are
# not lowerable; :func:`lower_batch_tables` returns ``None`` for them and
# callers fall back to the object engine.
#
# Record formats (``None`` marks an illegal "--" cell):
#
# * local cell  -> ``(ns_ch, ns_nch, ca, im, bc, op)`` where ``ns_ch`` /
#   ``ns_nch`` are the ``LineState.code`` values the conditional next
#   state resolves to under CH asserted / not asserted, ``ca``/``im``/
#   ``bc`` are the raw master signal bits, and ``op`` encodes the BusOp
#   (0 NONE, 1 READ, 2 WRITE, 3 READ_THEN_WRITE).  A cell is silent
#   exactly when ``op == 0 and ca == 0 and im == 0``.
# * snoop cell  -> ``(ns_ch, ns_nch, ch, di, sl, bs, abort_push,
#   push_ca, push_im, push_bc)``: the response bits (CH? don't-care
#   lowered to 0, matching ``ResponseAggregate.of``), whether the cell
#   abort-pushes, and the push transaction's master signals (the
#   controller's ``ca=1`` default baked in when the action carries none).
#
# Compile-then-verify discipline: after probing, every record is checked
# against a *fresh* probe of the protocol, so a non-deterministic protocol
# that slipped past the probe consistency check still cannot produce a
# silently wrong table.
# ---------------------------------------------------------------------------

_BUS_OP_CODES = {
    BusOp.NONE: 0,
    BusOp.READ: 1,
    BusOp.WRITE: 2,
    BusOp.READ_THEN_WRITE: 3,
}

#: Number of integers in one lowered local / snoop record.
BATCH_LOCAL_WIDTH = 6
BATCH_SNOOP_WIDTH = 10


class BatchTables:
    """A deterministic protocol lowered to flat integer records.

    ``local`` has ``N_STATES * N_LOCAL_EVENTS`` entries, ``snoop``
    ``N_STATES * N_BUS_EVENTS``, indexed exactly like
    :class:`CompiledCells` (``state.code * N_EVENTS + event.code``).
    """

    __slots__ = ("name", "non_caching", "local", "snoop")

    def __init__(self, name, non_caching, local, snoop):
        if len(local) != N_STATES * N_LOCAL_EVENTS:
            raise ValueError(f"expected {N_STATES * N_LOCAL_EVENTS} local cells")
        if len(snoop) != N_STATES * N_BUS_EVENTS:
            raise ValueError(f"expected {N_STATES * N_BUS_EVENTS} snoop cells")
        self.name = name
        self.non_caching = bool(non_caching)
        self.local = local
        self.snoop = snoop

    def __eq__(self, other):
        return (
            isinstance(other, BatchTables)
            and self.name == other.name
            and self.non_caching == other.non_caching
            and self.local == other.local
            and self.snoop == other.snoop
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<BatchTables {self.name!r} non_caching={self.non_caching}>"


def _lower_local_action(action: LocalAction):
    from repro.core.actions import resolve_next_state

    return (
        resolve_next_state(action.next_state, True).code,
        resolve_next_state(action.next_state, False).code,
        int(action.signals.ca),
        int(action.signals.im),
        int(action.signals.bc),
        _BUS_OP_CODES[action.bus_op],
    )


def _lower_snoop_action(action: SnoopAction):
    from repro.core.actions import resolve_next_state

    response = action.response
    push = action.push_signals or MasterSignals(ca=True)
    return (
        resolve_next_state(action.next_state, True).code,
        resolve_next_state(action.next_state, False).code,
        int(bool(response.ch)),
        int(response.di),
        int(response.sl),
        int(response.bs),
        int(action.abort_push),
        int(push.ca) if action.abort_push else 0,
        int(push.im) if action.abort_push else 0,
        int(push.bc) if action.abort_push else 0,
    )


#: Probe contexts: a lowerable protocol must pick the same action whatever
#: the address, sequence number, or replacement recency says.
_PROBE_LOCAL_CTXS = None
_PROBE_SNOOP_CTXS = None


def _probe_contexts():
    global _PROBE_LOCAL_CTXS, _PROBE_SNOOP_CTXS
    if _PROBE_LOCAL_CTXS is None:
        from repro.core.protocol import LocalContext, SnoopContext

        _PROBE_LOCAL_CTXS = (
            LocalContext(address=0, sequence=0),
            LocalContext(address=3, sequence=1),
            LocalContext(address=7, sequence=17),
        )
        _PROBE_SNOOP_CTXS = (
            SnoopContext(address=0, sequence=0, recency=0.0),
            SnoopContext(address=5, sequence=9, recency=1.0),
            SnoopContext(address=2, sequence=3),
        )
    return _PROBE_LOCAL_CTXS, _PROBE_SNOOP_CTXS


def _probe_cell(consult, state, event, ctxs):
    """Consult a protocol method under every probe context; the action
    (or the ``None`` illegal marker) must be identical across contexts,
    else the protocol is context-sensitive and cannot be lowered."""
    from repro.core.protocol import IllegalTransitionError

    first = _MISSING = object()
    for ctx in ctxs:
        try:
            action = consult(state, event, ctx)
        except IllegalTransitionError:
            action = None
        if first is _MISSING:
            first = action
        elif action != first:
            return False, None
    return True, first


def batchable(protocol) -> bool:
    """Whether :func:`lower_batch_tables` can lower this instance."""
    return lower_batch_tables(protocol) is not None


def lower_batch_tables(protocol):
    """Lower a protocol instance to :class:`BatchTables`, or ``None``.

    Stateful selection (a seeded :class:`~repro.core.policy.RandomPolicy`,
    a :class:`~repro.core.policy.RoundRobinPolicy`, or any protocol
    carrying its own RNG) is rejected *before* any probing so the
    rejection itself cannot advance the instance's hidden state -- the
    caller's object-engine fallback then replays it bit-exact.
    """
    from repro.core.policy import (
        InvalidatePolicy,
        PreferredPolicy,
        UpdatePolicy,
    )

    policy = getattr(protocol, "policy", None)
    if policy is not None and not isinstance(
        policy, (PreferredPolicy, InvalidatePolicy, UpdatePolicy)
    ):
        return None
    if getattr(protocol, "_rng", None) is not None:
        return None
    if getattr(protocol, "rng", None) is not None:
        return None

    local_ctxs, snoop_ctxs = _probe_contexts()
    local = []
    for state in LineState:
        for event in ALL_LOCAL_EVENTS:
            ok, action = _probe_cell(
                protocol.local_action, state, event, local_ctxs
            )
            if not ok:
                return None
            local.append(None if action is None else _lower_local_action(action))
    snoop = []
    for state in LineState:
        for event in ALL_BUS_EVENTS:
            ok, action = _probe_cell(
                protocol.snoop_action, state, event, snoop_ctxs
            )
            if not ok:
                return None
            snoop.append(None if action is None else _lower_snoop_action(action))
    tables = BatchTables(
        name=protocol.name,
        non_caching=protocol.kind is MasterKind.NON_CACHING,
        local=tuple(local),
        snoop=tuple(snoop),
    )
    verify_batch_tables(tables, protocol)
    return tables


def verify_batch_tables(tables: BatchTables, protocol) -> None:
    """Fresh-probe equivalence check of lowered records against the live
    protocol, through the same integer index arithmetic the kernel uses."""
    local_ctxs, snoop_ctxs = _probe_contexts()
    for state in LineState:
        for event in ALL_LOCAL_EVENTS:
            ok, action = _probe_cell(
                protocol.local_action, state, event, local_ctxs
            )
            record = tables.local[state.code * N_LOCAL_EVENTS + event.code]
            expected = None if action is None else _lower_local_action(action)
            if not ok or record != expected:
                raise TableCompilationError(
                    f"{tables.name}: lowered local cell ({state}, {event}) "
                    "diverges from the live protocol"
                )
        for event in ALL_BUS_EVENTS:
            ok, action = _probe_cell(
                protocol.snoop_action, state, event, snoop_ctxs
            )
            record = tables.snoop[state.code * N_BUS_EVENTS + event.code]
            expected = None if action is None else _lower_snoop_action(action)
            if not ok or record != expected:
                raise TableCompilationError(
                    f"{tables.name}: lowered snoop cell ({state}, {event}) "
                    "diverges from the live protocol"
                )


_BUS_EVENT_CODE_TABLE = None


def bus_event_code_table():
    """Bus-event codes indexed by master signals: an 8-entry tuple indexed
    ``ca*4 + im*2 + (bc and im)`` (the BC-without-IM normalization of
    :meth:`BusEvent.from_signals` folded in; unreachable patterns are -1).
    """
    global _BUS_EVENT_CODE_TABLE
    if _BUS_EVENT_CODE_TABLE is None:
        table = [-1] * 8
        for event in ALL_BUS_EVENTS:
            signals = event.master_signals
            bc = signals.bc and signals.im
            table[int(signals.ca) * 4 + int(signals.im) * 2 + int(bc)] = (
                event.code
            )
        _BUS_EVENT_CODE_TABLE = tuple(table)
    return _BUS_EVENT_CODE_TABLE

"""Mechanical class-membership checking for consistency protocols.

Given any :class:`~repro.core.protocol.Protocol`, the checker verifies each
cell of its transition tables against the MOESI class definition (Tables
1/2 plus the relaxation closure of section 3.3).  The outcome mirrors the
paper's taxonomy:

* **members** -- every action the protocol can take is permitted by the
  class (Berkeley, Dragon, the write-through cache, the non-caching
  processor, and of course the preferred MOESI protocol itself);
* **adapted** -- the protocol is implementable on the Futurebus only via
  the BS (busy) abort mechanism and/or takes actions outside the class
  (Write-Once, Illinois, Firefly).  Such protocols are consistent among
  themselves but are *not* guaranteed compatible with arbitrary class
  members -- their S state carries the stronger "consistent with memory"
  meaning (sections 4.3-4.5).

A protocol may also be an **incomplete** member: in-class on every cell it
defines, but silent about bus events its own algorithm never generates
(e.g. Dragon never invalidates, so columns 6/9/10 are undefined).  The
paper notes such protocols "can be extended to be compatible"; the
``snoop_default_to_class`` hook on :class:`~repro.core.protocol.TableProtocol`
performs exactly that extension.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.actions import LocalAction, SnoopAction
from repro.core.events import (
    ALL_BUS_EVENTS,
    ALL_LOCAL_EVENTS,
    BusEvent,
    LocalEvent,
)
from repro.core.protocol import Protocol
from repro.core.states import LineState
from repro.core.transitions import MoesiClassTable, snoop_choices

__all__ = [
    "ComplianceIssue",
    "MembershipError",
    "MembershipReport",
    "assert_member",
    "check_membership",
]


class MembershipError(ValueError):
    """A protocol claimed class membership the validator refutes.

    Raised by :func:`assert_member`; the message is the report's full
    :meth:`~MembershipReport.diagnostic` -- verdict first, then one line
    per offending table cell, so a failing conformance gate names the
    exact state/event/action that broke membership.
    """

    def __init__(self, report: "MembershipReport") -> None:
        super().__init__(report.diagnostic())
        self.report = report


@dataclasses.dataclass(frozen=True)
class ComplianceIssue:
    """One table cell whose action falls outside the MOESI class."""

    side: str  # "local" or "snoop"
    state: LineState
    event: object  # LocalEvent or BusEvent
    action: object  # LocalAction or SnoopAction
    reason: str

    def __str__(self) -> str:
        return (
            f"[{self.side}] state {self.state}, event {self.event}: "
            f"{self.action} -- {self.reason}"
        )


@dataclasses.dataclass
class MembershipReport:
    """Result of checking one protocol against the class definition."""

    protocol_name: str
    issues: list[ComplianceIssue]
    #: Bus events for which the protocol defines no snoop response in at
    #: least one of its states (candidates for class-default extension).
    uncovered_bus_events: list[tuple[LineState, BusEvent]]
    #: Whether the protocol relies on the BS abort mechanism.
    uses_busy: bool

    @property
    def is_member(self) -> bool:
        """In-class on every cell it defines, without needing BS."""
        return not self.issues and not self.uses_busy

    @property
    def is_full_member(self) -> bool:
        """A member that also covers every bus event in every state."""
        return self.is_member and not self.uncovered_bus_events

    @property
    def is_adapted(self) -> bool:
        """Implementable on the Futurebus only via the BS adaptation."""
        return self.uses_busy

    def diagnostic(self) -> str:
        """The full verdict: summary plus one line per out-of-class cell.

        This is the text the conformance harness reports (and
        :class:`MembershipError` carries) when a protocol is rejected --
        precise enough to point at the table cell to fix.
        """
        lines = [self.summary()]
        lines.extend(f"  - {issue}" for issue in self.issues)
        if self.uses_busy:
            lines.append(
                "  - relies on the BS (busy) abort adaptation "
                "(sections 4.3-4.5): consistent only homogeneously"
            )
        for state, event in self.uncovered_bus_events:
            lines.append(
                f"  - undefined snoop response: state {state}, "
                f"event {event} (extendable via the class default)"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        if self.is_full_member:
            verdict = "full member of the MOESI class"
        elif self.is_member:
            verdict = (
                "member of the MOESI class (extendable: "
                f"{len(self.uncovered_bus_events)} bus-event cells undefined)"
            )
        elif self.is_adapted and not self.issues:
            verdict = "adapted protocol (requires the BS abort mechanism)"
        elif self.is_adapted:
            verdict = (
                "adapted protocol (requires BS; "
                f"{len(self.issues)} out-of-class actions)"
            )
        else:
            verdict = f"NOT a member ({len(self.issues)} out-of-class actions)"
        return f"{self.protocol_name}: {verdict}"


def assert_member(
    protocol: Protocol,
    table: Optional[MoesiClassTable] = None,
    full: bool = False,
) -> MembershipReport:
    """Check membership and *raise* :class:`MembershipError` on failure.

    The conformance gate: registering a protocol as in-class runs it
    through this; a non-member (out-of-class cells and/or a BS
    dependency) raises with the precise per-cell diagnostic.  With
    ``full=True`` the protocol must also cover every bus event in every
    state (no extension holes).

    >>> from repro.protocols.registry import make_protocol
    >>> assert_member(make_protocol("moesi")).is_full_member
    True
    """
    report = check_membership(protocol, table)
    ok = report.is_full_member if full else report.is_member
    if not ok:
        raise MembershipError(report)
    return report


def check_membership(
    protocol: Protocol,
    table: Optional[MoesiClassTable] = None,
) -> MembershipReport:
    """Check every cell of ``protocol``'s tables against the class.

    Only the protocol's own states are examined (a protocol without an E
    state cannot be faulted for E-row behaviour it can never exhibit).
    """
    table = table or MoesiClassTable()
    issues: list[ComplianceIssue] = []
    uncovered: list[tuple[LineState, BusEvent]] = []
    uses_busy = bool(protocol.requires_busy)

    for state in protocol.states:
        for local_event in ALL_LOCAL_EVENTS:
            for action in protocol.local_cell(state, local_event):
                _check_local(table, protocol, state, local_event, action, issues)
        for bus_event in ALL_BUS_EVENTS:
            cell = protocol.snoop_cell(state, bus_event)
            if not cell:
                # Only count cells the class itself defines; the "--"
                # cells (e.g. a broadcast write observed against M or E)
                # are structurally impossible and need no response.
                if state.valid and snoop_choices(state, bus_event):
                    uncovered.append((state, bus_event))
                continue
            for action in cell:
                if action.abort_push or action.response.bs:
                    uses_busy = True
                    continue  # BS actions are adaptations, not class cells.
                if not table.permits_snoop(state, bus_event, action):
                    issues.append(
                        ComplianceIssue(
                            side="snoop",
                            state=state,
                            event=bus_event,
                            action=action,
                            reason="response not permitted by Table 2 "
                            "(including relaxations 9-11)",
                        )
                    )

    return MembershipReport(
        protocol_name=protocol.name,
        issues=issues,
        uncovered_bus_events=uncovered,
        uses_busy=uses_busy,
    )


def _check_local(
    table: MoesiClassTable,
    protocol: Protocol,
    state: LineState,
    event: LocalEvent,
    action: LocalAction,
    issues: list[ComplianceIssue],
) -> None:
    if table.permits_local(state, event, action):
        return
    issues.append(
        ComplianceIssue(
            side="local",
            state=state,
            event=event,
            action=action,
            reason="action not permitted by Table 1 "
            "(including relaxations 9, 10 and 12)",
        )
    )

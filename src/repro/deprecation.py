"""Warn-once helpers (deprecation shims and degrade notices).

Old call sites keep working; the first direct use of a deprecated entry
point per process emits one :class:`DeprecationWarning` naming its
``repro.api`` replacement, and subsequent uses stay silent (a long fuzz
campaign should not print the same warning two hundred times).  The same
once-per-key machinery backs runtime degrade notices such as
``parallel_map`` quietly falling back to serial execution.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "warn_deprecated", "reset_deprecation_warnings"]

_warned: set[str] = set()


def warn_once(
    key: str,
    message: str,
    category: type[Warning] = DeprecationWarning,
    stacklevel: int = 3,
) -> bool:
    """Emit ``message`` at most once per process for ``key``.

    Returns whether the warning fired (callers sometimes log extra
    context only the first time).
    """
    if key in _warned:
        return False
    _warned.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def warn_deprecated(old: str, new: str) -> None:
    """Emit one DeprecationWarning per process for ``old``."""
    warn_once(
        old,
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=4,
    )


def reset_deprecation_warnings() -> None:
    """Forget what has warned (tests only)."""
    _warned.clear()

"""Warn-once helpers (deprecation shims and degrade notices).

Old call sites keep working; the first direct use of a deprecated entry
point per process emits one :class:`DeprecationWarning` naming its
``repro.api`` replacement, and subsequent uses stay silent (a long fuzz
campaign should not print the same warning two hundred times).  The same
once-per-key machinery backs runtime degrade notices such as
``parallel_map`` quietly falling back to serial execution.

Migration (the plan/execute split)
----------------------------------
Since the ``repro.serve`` redesign the canonical way to run anything is
two verbs: ``spec = repro.plan(kind, ...)`` then ``repro.execute(spec)``.
The ``Session`` methods (``run_experiment``, ``verify``,
``fuzz_campaign``, ``shootout``, ``batch_sweep``) remain supported thin
wrappers that plan a spec and execute it -- they do not warn.  What
*does* warn (once per process, via :func:`warn_legacy_keywords`) is the
pre-split keyword sprawl: loose board-geometry kwargs such as
``run_experiment(num_sets=4, associativity=1)``.  Spell those as
``run_experiment(geometry=GeometrySpec(num_sets=4, associativity=1))``
-- the frozen :class:`repro.specs.GeometrySpec` is what the canonical
spec string and the serve tier's memoization hash are built from.
"""

from __future__ import annotations

import warnings

__all__ = [
    "warn_once",
    "warn_deprecated",
    "warn_legacy_keywords",
    "reset_deprecation_warnings",
]

_warned: set[str] = set()


def warn_once(
    key: str,
    message: str,
    category: type[Warning] = DeprecationWarning,
    stacklevel: int = 3,
) -> bool:
    """Emit ``message`` at most once per process for ``key``.

    Returns whether the warning fired (callers sometimes log extra
    context only the first time).
    """
    if key in _warned:
        return False
    _warned.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def warn_deprecated(old: str, new: str) -> None:
    """Emit one DeprecationWarning per process for ``old``."""
    warn_once(
        old,
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=4,
    )


def warn_legacy_keywords(entry: str, keywords, replacement: str) -> None:
    """Warn once per process for a pre-plan/execute keyword path.

    ``entry`` names the call site (e.g. ``run_experiment``), ``keywords``
    the legacy keyword names actually passed, ``replacement`` the spec
    spelling to migrate to (e.g. ``geometry=GeometrySpec(...)``)."""
    names = ", ".join(sorted(keywords))
    warn_once(
        f"legacy-kwargs:{entry}",
        f"{entry}({names}=...) is a deprecated keyword path; "
        f"pass {replacement} instead (see repro.deprecation)",
        DeprecationWarning,
        stacklevel=5,
    )


def reset_deprecation_warnings() -> None:
    """Forget what has warned (tests only)."""
    _warned.clear()

"""Warn-once deprecation shims for pre-``repro.api`` entry points.

Old call sites keep working; the first direct use of a deprecated entry
point per process emits one :class:`DeprecationWarning` naming its
``repro.api`` replacement, and subsequent uses stay silent (a long fuzz
campaign should not print the same warning two hundred times).
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated", "reset_deprecation_warnings"]

_warned: set[str] = set()


def warn_deprecated(old: str, new: str) -> None:
    """Emit one DeprecationWarning per process for ``old``."""
    if old in _warned:
        return
    _warned.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget what has warned (tests only)."""
    _warned.clear()

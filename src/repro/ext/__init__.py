"""Extensions from the paper's section 5 and conclusions: the Puzak
recency refinement, Clipper-style per-page protocol selection, line
crossers, the line-size mismatch demonstrator, and the section-6
consistency commands (sync/flush across the bus)."""

from repro.ext.linecross import LineCrossingPort, LinePiece, split_reference
from repro.ext.linesize import (
    MismatchDemo,
    MixedLineSizeBus,
    demonstrate_mismatch,
    demonstrate_uniform_ok,
)
from repro.ext.perpage import PageClass, PageMap, PerPageProtocol
from repro.ext.sync import ConsistencyCommander, SyncStats
from repro.ext.puzak import (
    RecencyAwarePolicy,
    make_puzak_protocol,
    puzak_comparison,
)

__all__ = [
    "LineCrossingPort",
    "LinePiece",
    "split_reference",
    "MismatchDemo",
    "MixedLineSizeBus",
    "demonstrate_mismatch",
    "demonstrate_uniform_ok",
    "PageClass",
    "PageMap",
    "PerPageProtocol",
    "ConsistencyCommander",
    "SyncStats",
    "RecencyAwarePolicy",
    "make_puzak_protocol",
    "puzak_comparison",
]

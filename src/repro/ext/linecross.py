"""Line crossers (section 5.1).

    "a processor operation which makes a reference which overlaps 2 or
    more lines ... the processor/cache interface must be able to treat
    this as a separate transaction for each line involved, and to generate
    bus transactions on that basis."

:func:`split_reference` decomposes a (byte address, size) access into its
per-line pieces; :class:`LineCrossingPort` is the processor/cache front
end that issues one controller operation per piece.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.cache.controller import CacheController

__all__ = ["LinePiece", "split_reference", "LineCrossingPort"]


@dataclasses.dataclass(frozen=True)
class LinePiece:
    """One per-line fragment of a possibly line-crossing access."""

    byte_address: int
    size: int
    line_address: int


def split_reference(
    byte_address: int, size: int, line_size: int
) -> list[LinePiece]:
    """Split an access into per-line pieces (one per line touched).

    >>> [p.line_address for p in split_reference(30, 8, 32)]
    [0, 1]
    >>> [p.size for p in split_reference(30, 8, 32)]
    [2, 6]
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if byte_address < 0:
        raise ValueError(f"negative address: {byte_address}")
    pieces: list[LinePiece] = []
    remaining = size
    cursor = byte_address
    while remaining > 0:
        line_address = cursor // line_size
        line_end = (line_address + 1) * line_size
        chunk = min(remaining, line_end - cursor)
        pieces.append(LinePiece(cursor, chunk, line_address))
        cursor += chunk
        remaining -= chunk
    return pieces


class LineCrossingPort:
    """Processor front end that legalizes line-crossing accesses.

    Each fragment becomes a separate controller operation (hence a
    separate bus transaction when it misses), exactly as the paper
    requires.  Reads return the list of per-line tokens; writes apply the
    same token to every line touched.
    """

    def __init__(self, controller: CacheController) -> None:
        self.controller = controller
        self.split_accesses = 0

    @property
    def line_size(self) -> int:
        return self.controller.cache.line_size

    def read(self, byte_address: int, size: int = 4) -> list[int]:
        pieces = split_reference(byte_address, size, self.line_size)
        if len(pieces) > 1:
            self.split_accesses += 1
        return [self.controller.read(piece.byte_address) for piece in pieces]

    def write(self, byte_address: int, value: int, size: int = 4) -> Sequence[LinePiece]:
        pieces = split_reference(byte_address, size, self.line_size)
        if len(pieces) > 1:
            self.split_accesses += 1
        for piece in pieces:
            self.controller.write(piece.byte_address, value)
        return pieces

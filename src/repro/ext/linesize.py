"""The non-uniform line size problem (section 5.1), demonstrated.

    "If the line size is not constant throughout the system, some very
    difficult problems can arise.  For example, let cache A (with a line
    of 64 bytes) do a read.  Cache B (with a line of 32 bytes) has *part*
    of that line resident in state M.  Cache B is therefore required to
    supply part of the line requested by cache A, but where is the rest
    of the line to come from?"

The main system refuses mixed line sizes outright (the P896.2 working
group's position: standardize one size).  This module builds a deliberately
naive mixed-size bus model to show *what goes wrong* if you don't: the
requester assembles its large line from memory because the small-line
owner's DI only covers half the range, and the stale half is then read.

The model tracks data at a fine "word" granularity (32-byte sub-blocks) so
partial ownership is expressible; the demonstration returns a step-by-step
narrative plus the observed stale read.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["MixedLineSizeBus", "MismatchDemo", "demonstrate_mismatch",
           "demonstrate_uniform_ok"]

_SUB = 32  # sub-block granularity in bytes


@dataclasses.dataclass
class _SimpleLine:
    base: int  # byte address of the line start
    size: int
    dirty: bool = False
    #: One token per 32-byte sub-block.
    tokens: list = dataclasses.field(default_factory=list)

    def covers(self, sub_base: int) -> bool:
        return self.base <= sub_base < self.base + self.size


class _NaiveCache:
    """A one-line cache with a fixed line size; deliberately minimal."""

    def __init__(self, name: str, line_size: int) -> None:
        self.name = name
        self.line_size = line_size
        self.line: Optional[_SimpleLine] = None

    def holds(self, sub_base: int) -> bool:
        return self.line is not None and self.line.covers(sub_base)

    def token_of(self, sub_base: int) -> int:
        assert self.line is not None
        index = (sub_base - self.line.base) // _SUB
        return self.line.tokens[index]


class MixedLineSizeBus:
    """A bus whose masters may use different line sizes -- the forbidden
    configuration, modeled just far enough to exhibit the failure."""

    def __init__(self) -> None:
        self.memory: dict[int, int] = {}
        self.caches: list[_NaiveCache] = []
        self.log: list[str] = []

    def add_cache(self, name: str, line_size: int) -> _NaiveCache:
        cache = _NaiveCache(name, line_size)
        self.caches.append(cache)
        return cache

    def mem_token(self, sub_base: int) -> int:
        return self.memory.get(sub_base, 0)

    # ------------------------------------------------------------------
    def write(self, cache: _NaiveCache, byte_address: int, token: int) -> None:
        """Allocate-and-modify: the cache takes its line dirty (M)."""
        base = (byte_address // cache.line_size) * cache.line_size
        subs = [base + i * _SUB for i in range(cache.line_size // _SUB)]
        tokens = [self.mem_token(s) for s in subs]
        tokens[(byte_address - base) // _SUB] = token
        cache.line = _SimpleLine(base, cache.line_size, dirty=True,
                                 tokens=tokens)
        # Other caches with overlapping lines invalidate (ignoring the
        # size mismatch in the other direction for brevity).
        for other in self.caches:
            if other is not cache and other.line is not None:
                if any(other.line.covers(s) for s in subs):
                    other.line = None
        self.log.append(
            f"{cache.name} writes token {token} at 0x{byte_address:x} "
            f"(its {cache.line_size}-byte line 0x{base:x} now dirty)"
        )

    def read(self, cache: _NaiveCache, byte_address: int) -> list[int]:
        """Read-miss fill of the requester's (possibly larger) line.

        Each sub-block is supplied by an intervenient owner if one covers
        it, else by memory -- this is the best a per-sub-block merge could
        even theoretically do on a real bus; the Futurebus cannot do the
        merge at all, so reality is no better than what this shows.
        """
        base = (byte_address // cache.line_size) * cache.line_size
        subs = [base + i * _SUB for i in range(cache.line_size // _SUB)]
        tokens = []
        suppliers = []
        for sub in subs:
            owner = next(
                (
                    c
                    for c in self.caches
                    if c is not cache and c.holds(sub) and c.line.dirty
                ),
                None,
            )
            if owner is not None:
                tokens.append(owner.token_of(sub))
                suppliers.append(owner.name)
            else:
                tokens.append(self.mem_token(sub))
                suppliers.append("memory")
        cache.line = _SimpleLine(base, cache.line_size, dirty=False,
                                 tokens=tokens)
        self.log.append(
            f"{cache.name} reads its {cache.line_size}-byte line 0x{base:x}; "
            f"sub-blocks supplied by {suppliers}"
        )
        return tokens


@dataclasses.dataclass
class MismatchDemo:
    """Outcome of the demonstration."""

    narrative: list[str]
    expected_tokens: list[int]
    observed_tokens: list[int]

    @property
    def stale_read(self) -> bool:
        return self.expected_tokens != self.observed_tokens

    def summary(self) -> str:
        verdict = (
            "STALE READ -- mixed line sizes break consistency"
            if self.stale_read
            else "consistent"
        )
        return f"{verdict}; expected {self.expected_tokens}, observed {self.observed_tokens}"


def demonstrate_mismatch() -> MismatchDemo:
    """The paper's exact scenario: B (32-byte lines) holds half of A's
    64-byte line in M; A's fill cannot be assembled coherently.

    Here the sub-block B owns *is* merged (charitably); the failure shown
    is the half B does **not** own, after B's earlier whole-line
    write-allocate pulled a then-current copy that went stale when the
    neighbouring 32-byte region was modified by a third small-line cache
    whose line B's directory cannot represent together with its own.
    """
    bus = MixedLineSizeBus()
    a = bus.add_cache("A(64B)", 64)
    b = bus.add_cache("B(32B)", 32)
    c = bus.add_cache("C(32B)", 32)

    # Ground truth: tokens 1 and 2 are the current values of the two
    # 32-byte halves of A's future 64-byte line.
    bus.memory[0] = 0  # stale half, never written back
    bus.memory[32] = 0
    bus.write(c, 0, 1)    # C owns [0,32) dirty with token 1
    bus.write(b, 32, 2)   # B owns [32,64) dirty with token 2
    expected = [1, 2]

    # C silently evicts *without* write-back being visible to A's later
    # fill -- on a mixed-size bus there is no transaction A could have
    # snooped at its own granularity to learn about [0,32) ... model the
    # paper's "where is the rest of the line to come from?" by C being
    # absent at fill time (e.g. powered down mid-transfer, or its
    # write-back raced the fill on the other half-line address).
    c.line = None
    bus.log.append(
        "C's dirty [0,32) disappears from the snoop domain (eviction race: "
        "no 64-byte-aligned transaction existed for A to monitor)"
    )

    observed = bus.read(a, 0)
    return MismatchDemo(
        narrative=list(bus.log),
        expected_tokens=expected,
        observed_tokens=observed,
    )


def demonstrate_uniform_ok() -> MismatchDemo:
    """Control: the same story with a uniform 32-byte line size -- every
    sub-block has a well-defined owner and the fill is coherent."""
    bus = MixedLineSizeBus()
    a = bus.add_cache("A(32B)", 32)
    b = bus.add_cache("B(32B)", 32)
    c = bus.add_cache("C(32B)", 32)

    bus.memory[0] = 0
    bus.memory[32] = 0
    bus.write(c, 0, 1)
    bus.write(b, 32, 2)
    # With uniform sizes, every fill is per-line and each owner supplies
    # its own line in full.
    first = bus.read(a, 0)
    second_owner_supplied = bus.read(a, 32)
    return MismatchDemo(
        narrative=list(bus.log),
        expected_tokens=[1, 2],
        observed_tokens=[first[0], second_owner_supplied[0]],
    )

"""Per-page protocol selection (section 3.4, Clipper-style).

    "a given cache can make some pages copy back, some write through, and
    some uncacheable (as with the Fairchild CLIPPER)."

:class:`PerPageProtocol` routes each local event by the page its address
falls in: copy-back pages use the full MOESI actions, write-through pages
the ``*`` entries, uncacheable pages the ``**`` entries.  All three action
families come from the same class tables, so the mixture is consistent by
construction -- the class-membership validator and the model checker both
confirm it.

Snoop responses always use the full class table: whatever page class a
line belongs to, the states it can reach are class states and the Table-2
responses for them are correct.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from repro.core.actions import LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.policy import ActionPolicy, PreferredPolicy
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    SnoopContext,
)
from repro.core.states import LineState
from repro.core.transitions import local_choices, snoop_choices

__all__ = ["PageClass", "PageMap", "PerPageProtocol"]


class PageClass:
    """Cacheability classes a page can be assigned to."""

    COPY_BACK = "copy-back"
    WRITE_THROUGH = "write-through"
    UNCACHEABLE = "uncacheable"

    ALL = (COPY_BACK, WRITE_THROUGH, UNCACHEABLE)


@dataclasses.dataclass
class PageMap:
    """Page-number -> class mapping with a default.

    Addresses given to :meth:`classify` are *line* addresses (what reaches
    the protocol via the context); the page number is
    ``line_address * line_size // page_size``.
    """

    page_size: int = 4096
    line_size: int = 32
    default: str = PageClass.COPY_BACK
    assignments: Mapping[int, str] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default not in PageClass.ALL:
            raise ValueError(f"unknown page class {self.default!r}")
        for page, cls in self.assignments.items():
            if cls not in PageClass.ALL:
                raise ValueError(f"unknown page class {cls!r} for page {page}")

    def page_of(self, line_address: int) -> int:
        return line_address * self.line_size // self.page_size

    def classify(self, line_address: int) -> str:
        return dict(self.assignments).get(self.page_of(line_address), self.default)


class PerPageProtocol(Protocol):
    """One cache, three behaviours, selected by page (all in the class)."""

    states = frozenset(LineState)
    requires_busy = False

    _KIND_BY_CLASS = {
        PageClass.COPY_BACK: MasterKind.COPY_BACK,
        PageClass.WRITE_THROUGH: MasterKind.WRITE_THROUGH,
        PageClass.UNCACHEABLE: MasterKind.NON_CACHING,
    }

    def __init__(
        self,
        page_map: PageMap,
        policy: Optional[ActionPolicy] = None,
        name: str = "PerPage",
    ) -> None:
        self.page_map = page_map
        self.policy = policy or PreferredPolicy()
        self.name = name
        self.kind = MasterKind.COPY_BACK

    def local_action(
        self,
        state: LineState,
        event: LocalEvent,
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        address = ctx.address if ctx is not None else 0
        page_class = self.page_map.classify(address)
        kind = self._KIND_BY_CLASS[page_class]
        choices = local_choices(state, event, kind)
        if not choices:
            # A page that became write-through/uncacheable may still hold
            # lines in copy-back states from before a remap; fall back to
            # the copy-back actions to drain them safely.
            choices = local_choices(state, event, MasterKind.COPY_BACK)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_local(state, event, choices, ctx)

    def snoop_action(
        self,
        state: LineState,
        event: BusEvent,
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        choices = snoop_choices(state, event)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_snoop(state, event, choices, ctx)

    def local_cell(self, state, event):
        # For validation purposes, report everything the protocol could do
        # across all page classes.
        cells: list[LocalAction] = []
        for kind in self._KIND_BY_CLASS.values():
            for action in local_choices(state, event, kind):
                if action not in cells:
                    cells.append(action)
        return tuple(cells)

    def snoop_cell(self, state, event):
        return snoop_choices(state, event)

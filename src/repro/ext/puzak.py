"""The replacement-status refinement of section 5.2 (after Puzak et al.).

    "A refinement ... is to have a cache examine the replacement status of
    a line written by another cache.  If the line is quite recently used
    (e.g. most recently used element of two element set), it can be
    updated, and if it is nearing time for replacement (e.g. least
    recently used element of two element set), it can be discarded."

:class:`RecencyAwarePolicy` implements exactly that: when a snooped
broadcast write offers the update-or-invalidate choice (Table 2, columns
8/10), it updates lines on the protected side of the replacement order and
discards lines about to be evicted anyway.  Locally it behaves like the
preferred (update-biased) policy.

:func:`puzak_comparison` (experiment E4) compares always-update,
always-invalidate, and the recency-aware refinement on a workload that
mixes hot shared lines (worth updating) with cold ones (updates wasted).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policy import ActionPolicy, PreferredPolicy
from repro.core.protocol import SnoopContext
from repro.protocols.moesi import MoesiProtocol
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

__all__ = [
    "RecencyAwarePolicy",
    "make_puzak_protocol",
    "puzak_comparison",
]


class RecencyAwarePolicy(PreferredPolicy):
    """Update recently-used lines, discard nearly-replaced ones.

    ``threshold`` is the recency cutoff in [0, 1]: a snooped line with
    normalized replacement position <= threshold (0 = most recently used)
    is updated; beyond it, invalidated.  With a two-way set the paper's
    example corresponds to ``threshold=0.5``: keep the MRU element,
    discard the LRU element.
    """

    name = "puzak"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold

    def choose_snoop(self, state, event, choices, ctx: Optional[SnoopContext] = None):
        if len(choices) < 2 or ctx is None or ctx.recency is None:
            return choices[0]
        retainers = [c for c in choices if c.retains_copy]
        droppers = [c for c in choices if not c.retains_copy]
        if not retainers or not droppers:
            return choices[0]
        if ctx.recency <= self.threshold:
            return retainers[0]
        return droppers[0]


def make_puzak_protocol(threshold: float = 0.5) -> MoesiProtocol:
    """A MOESI cache with the recency-aware snoop refinement."""
    return MoesiProtocol(
        RecencyAwarePolicy(threshold), name=f"MOESI(puzak@{threshold:g})"
    )


def puzak_comparison(
    references: int = 4000,
    seed: int = 23,
    thresholds: Sequence[float] = (0.5,),
    num_sets: int = 8,
    associativity: int = 2,
) -> list[dict]:
    """E4: always-update vs always-invalidate vs recency-aware.

    Small caches make replacement pressure real, and a skewed shared set
    means some broadcast writes hit lines that were about to be evicted --
    the case where the refinement saves both the update work and the
    eventual write-back of a doomed line.
    """
    from repro.analysis.compare import run_protocol_on_trace  # lazy: cycle
    from repro.system.system import BoardSpec, System
    from repro.system.runner import timed_run_from_trace

    config = SyntheticConfig(
        processors=4,
        p_shared=0.4,
        p_write=0.35,
        shared_blocks=24,
        private_blocks=24,
        sharing_skew=1.6,
    )
    trace = SyntheticWorkload(config, seed=seed).trace(references)
    geometry = {"num_sets": num_sets, "associativity": associativity}

    rows = []
    for label, protocol in (
        ("always-update", "moesi-update"),
        ("always-invalidate", "moesi-invalidate"),
    ):
        report = run_protocol_on_trace(protocol, trace, **geometry)
        row = report.row()
        row["system"] = label
        rows.append(row)
    for threshold in thresholds:
        units = trace.units()
        boards = [
            BoardSpec(
                unit_id=unit,
                protocol=make_puzak_protocol(threshold),
                **geometry,
            )
            for unit in units
        ]
        system = System(boards, check=False, label=f"puzak@{threshold:g}")
        report = timed_run_from_trace(system, trace).run()
        row = report.row()
        rows.append(row)
    return rows

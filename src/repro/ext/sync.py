"""Consistency commands (paper section 6, final future-work item).

    "Proper mechanisms must also be defined for issuing commands across
    the bus to cause other caches to become consistent with main memory."

This module builds those commands out of *existing* class facilities --
no new signal lines, no out-of-class snoop behaviour required:

* :meth:`ConsistencyCommander.sync_line` -- make main memory current
  while letting caches keep their copies.  Two transactions: a read
  (CA,~IM) whose DI response fetches the owner's data (downgrading M to
  O), then a broadcast write (~CA,IM,BC -- column 10) of that same value,
  which updates memory and every holder in place.  Since the written
  value *is* the current value, every copy stays correct.
* :meth:`ConsistencyCommander.flush_line` -- make memory current *and*
  purge every cached copy (what an un-cached DMA engine wants before a
  device-to-memory transfer is rearmed).  A read-for-modify (CA,IM,R --
  column 6) collects the current data while every cache, owner included,
  invalidates; a plain write-back then deposits it in memory.

Both commands are issued by a dedicated bus master that retains nothing,
so they compose with any mix of MOESI-class boards; tests drive them
against every protocol and the coherence oracle.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bus.futurebus import Futurebus
from repro.core.actions import BusOp
from repro.core.signals import MasterSignals

__all__ = ["SyncStats", "ConsistencyCommander"]


@dataclasses.dataclass
class SyncStats:
    syncs: int = 0
    flushes: int = 0
    transactions: int = 0


class ConsistencyCommander:
    """A bus master dedicated to memory-consistency commands.

    It never caches, never snoops, and asserts nothing on response lines
    -- exactly a non-caching board, but with two composite flows built on
    top of the ordinary master signals.
    """

    def __init__(self, bus: Futurebus, unit_id: str = "sync") -> None:
        self.bus = bus
        self.unit_id = unit_id
        self.stats = SyncStats()

    # ------------------------------------------------------------------
    def sync_line(self, line_address: int) -> int:
        """Update main memory with the line's current value; caches keep
        (and stay consistent with) their copies.  Returns the value."""
        # 1. Obtain the current data.  An uncached read (~CA): the owner,
        #    if any, intervenes and supplies; otherwise memory already has
        #    the current value and the command was a no-op apart from the
        #    read.
        read = self.bus.execute(
            self.unit_id, line_address, MasterSignals(), BusOp.READ
        )
        assert read.value is not None
        self.stats.transactions += 1
        if read.supplier == "memory":
            # Memory supplied: it is the owner of record; nothing to sync.
            self.stats.syncs += 1
            return read.value
        # 2. Broadcast the value back (column 10): memory updates, every
        #    holder SL-connects and "updates" to the value it already
        #    holds, and the owner remains owner (Table 2: M -> M,SL / O ->
        #    O,SL).  Memory is now current.
        self.bus.execute(
            self.unit_id,
            line_address,
            MasterSignals(im=True, bc=True),
            BusOp.WRITE,
            read.value,
        )
        self.stats.transactions += 1
        self.stats.syncs += 1
        return read.value

    def flush_line(self, line_address: int) -> int:
        """Update main memory and invalidate every cached copy."""
        # 1. Read-for-modify (column 6): the owner supplies and
        #    invalidates; every other holder invalidates.  After this, no
        #    cache holds the line and we have its current value.
        read = self.bus.execute(
            self.unit_id,
            line_address,
            MasterSignals(ca=True, im=True),
            BusOp.READ,
        )
        assert read.value is not None
        self.stats.transactions += 1
        # 2. Deposit it in memory (a plain write: no owner remains to
        #    capture it, so memory takes it).
        self.bus.execute(
            self.unit_id,
            line_address,
            MasterSignals(im=True),
            BusOp.WRITE,
            read.value,
        )
        self.stats.transactions += 1
        self.stats.flushes += 1
        return read.value

    def sync_range(self, first_line: int, last_line: int) -> int:
        """Sync every line in [first, last]; returns lines touched."""
        for line_address in range(first_line, last_line + 1):
            self.sync_line(line_address)
        return last_line - first_line + 1

    def flush_range(self, first_line: int, last_line: int) -> int:
        for line_address in range(first_line, last_line + 1):
            self.flush_line(line_address)
        return last_line - first_line + 1

"""Differential fuzzing & conformance testing (the `repro.fuzz` subsystem).

The paper's central claim (section 3.3, Tables 1-2) is *universal*: any
mix of components picking any permitted action at any instant preserves
consistency.  The exhaustive explorer proves it for small fixed mixes;
this package attacks the same claim from the other side, with randomized
differential testing:

* :mod:`repro.fuzz.scenario` -- seeded generation of multi-cache
  scenarios: protocol mixes from the registry, random line geometry, and
  adversarial event schedules with dynamic per-access action choice;
* :mod:`repro.fuzz.oracles` -- the two independent oracles every scenario
  runs against: step-wise MOESI invariants, and a differential oracle
  cross-checking each observed (state, event, action) transition against
  the explorer's canonical tables;
* :mod:`repro.fuzz.runner` -- deterministic scenario execution;
* :mod:`repro.fuzz.shrink` -- delta-debugging of failing scenarios down
  to minimal counterexamples (events first, then caches);
* :mod:`repro.fuzz.campaign` -- parallel seed campaigns over
  :func:`repro.perf.pool.parallel_map`, byte-reproducible at any worker
  count;
* :mod:`repro.fuzz.replay` -- ``.json`` repro files and their verbatim
  re-execution (``repro fuzz --replay``);
* :mod:`repro.fuzz.batchrun` -- the same seed scenarios routed through
  the struct-of-arrays batch kernel where the lowering allows, with the
  object engine replaying sampled rows as a differential oracle.
"""

from repro.fuzz.batchrun import BatchCampaignReport, run_batch_campaign
from repro.fuzz.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.fuzz.replay import load_repro, replay_file, write_repro
from repro.fuzz.runner import (
    ArbitratedScenarioResult,
    ScenarioResult,
    StepFailure,
    run_scenario,
    run_scenario_arbitrated,
)
from repro.fuzz.scenario import (
    INJECTABLE_BUGS,
    FuzzEvent,
    Geometry,
    Scenario,
    ScenarioConfig,
    generate_scenario,
    resolve_spec,
)
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "BatchCampaignReport",
    "run_batch_campaign",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "load_repro",
    "replay_file",
    "write_repro",
    "ArbitratedScenarioResult",
    "ScenarioResult",
    "StepFailure",
    "run_scenario",
    "run_scenario_arbitrated",
    "INJECTABLE_BUGS",
    "FuzzEvent",
    "Geometry",
    "Scenario",
    "ScenarioConfig",
    "generate_scenario",
    "resolve_spec",
    "shrink_scenario",
]

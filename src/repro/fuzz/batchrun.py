"""Fuzz-seed populations through the batch kernel, object engine as oracle.

The campaign in :mod:`repro.fuzz.campaign` runs every seed on the
per-object engine.  This driver takes the same deterministically
generated scenarios and routes the batchable ones -- plain registry
specs whose protocols lower to integer tables -- through the
struct-of-arrays kernel of :mod:`repro.perf.batch`, grouped by
``(units, geometry)`` so each group runs as one population.  Scenarios
the lowering rejects (seeded ``full-class:``/``moesi-random:`` choice
specs, injected bugs, round-robin selectors) fall back to the ordinary
object-engine runner.

The object engine stays the oracle: per population, the first
``oracle_sample`` rows are replayed on a real :class:`System` and the
snapshots diffed byte-for-byte (:func:`repro.perf.batch.verify_rows`).
A non-empty ``mismatches`` list is a kernel bug, never ignorable.

Populations group by **unit mix only**: mixed-geometry scenarios merge
into one padded heterogeneous population (per-row geometries, envelope
strides), so a campaign makes one kernel invocation per protocol mix
instead of one per ``(mix, geometry)`` cell.  Campaigns also shard:
``shards``/``workers`` partition the seed range into contiguous pool
tasks whose digests merge deterministically -- same report at any shard
count, oracle verdicts included (the global per-group sample is always
a subset of the shards' local samples, so the merge keeps exactly the
rows the single-shard run would have verified).
"""

from __future__ import annotations

import dataclasses
import functools
import json
from typing import Optional

from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import Scenario, ScenarioConfig, generate_scenario
from repro.perf.batch import (
    EVENT_KIND_CODES,
    BatchGeometry,
    BatchPopulation,
    NotBatchableError,
    default_backend,
    envelope_geometry,
    lower_units,
    run_population,
    verify_rows,
)
from repro.perf.pool import ParallelConfig, parallel_map

__all__ = ["BatchCampaignReport", "run_batch_campaign"]

_SPEC_BATCHABLE: dict[str, bool] = {}


def _spec_batchable(spec: str) -> bool:
    """Can ``spec`` run on the kernel?  Seeded choice specs carry a
    ``:`` and never can; registry names are probed via the lowering."""
    if ":" in spec:
        return False
    if spec not in _SPEC_BATCHABLE:
        try:
            lower_units((spec,))
        except NotBatchableError:
            _SPEC_BATCHABLE[spec] = False
        else:
            _SPEC_BATCHABLE[spec] = True
    return _SPEC_BATCHABLE[spec]


def _population_key(scenario: Scenario) -> tuple:
    """Unit mix only: geometry became a per-row attribute when the
    kernel grew padded heterogeneous populations."""
    return scenario.units


def _case_geometry(scenario: Scenario) -> BatchGeometry:
    g = scenario.geometry
    return BatchGeometry(
        g.num_sets, g.associativity, g.line_size, g.lines
    )


def _build_population(units: tuple, cases: list) -> BatchPopulation:
    """One padded heterogeneous population from same-mix scenarios."""
    per_row = tuple(_case_geometry(case) for case in cases)
    return BatchPopulation(
        units=units,
        geometry=envelope_geometry(per_row),
        events=[_schedule(case) for case in cases],
        row_ids=tuple(case.seed for case in cases),
        geometries=per_row,
    )


def _schedule(scenario: Scenario) -> list:
    return [
        (event.unit, EVENT_KIND_CODES[event.kind], event.line)
        for event in scenario.events
    ]


@dataclasses.dataclass
class BatchCampaignReport:
    """Deterministic outcome of one batch campaign (timings excluded)."""

    seeds: int
    seed_base: int
    backend: str
    populations: int
    batched_rows: int
    fallback_rows: int
    events: int
    transitions: int
    #: ``(seed, step, failure_type)`` for kernel rows that crashed --
    #: the kernel's analog of the fuzz runner's crash taxonomy.
    crashes: list
    verified_rows: int
    #: ``(seed, key, kernel_value, oracle_value)`` diffs; non-empty means
    #: the kernel diverged from the object engine.
    mismatches: list
    fallback_steps: int
    fallback_failures: int

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def summary_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _run_batch_shard(
    scenario_config: dict,
    backend: str,
    oracle_sample: int,
    tables_shm: Optional[str],
    shard: tuple,
) -> dict:
    """Pool worker: one contiguous seed range through the kernel.

    Returns a picklable digest keyed by unit mix.  Each group carries
    its row seeds (ascending: seeds are scanned in order), the kernel
    totals, and oracle verdicts for the shard's **local** first
    ``oracle_sample`` rows.  The merged report samples the *global*
    first rows per group -- always a prefix of some shards' local rows,
    so every globally sampled verdict is present in exactly one digest
    and the merge discards the rest."""
    start, count = shard
    config = ScenarioConfig.from_dict(scenario_config)
    if tables_shm is not None:
        from repro.perf.shared import attach_tables

        try:
            attach_tables(tables_shm)
        except Exception:
            pass  # segment gone or unsupported: lower directly
    groups: dict[tuple, list] = {}
    fallback: list[Scenario] = []
    for seed in range(start, start + count):
        case = generate_scenario(seed, config)
        if all(_spec_batchable(spec) for spec in case.units):
            groups.setdefault(_population_key(case), []).append(case)
        else:
            fallback.append(case)

    group_digests: dict[tuple, dict] = {}
    for units, cases in groups.items():
        pop = _build_population(units, cases)
        result = run_population(pop, backend=backend)
        crashes = []
        for row, snapshot in enumerate(result.snapshots):
            if snapshot["crash"] is not None:
                step, kind = snapshot["crash"]
                crashes.append((pop.row_ids[row], step, kind))
        sample = list(range(min(oracle_sample, pop.rows)))
        mismatches = [
            (pop.row_ids[row], key, got, expected)
            for row, key, got, expected in verify_rows(
                pop, result, rows=sample
            )
        ]
        group_digests[units] = {
            "row_seeds": list(pop.row_ids),
            "events": result.events,
            "transitions": result.transitions,
            "crashes": crashes,
            "verified_seeds": [pop.row_ids[row] for row in sample],
            "mismatches": mismatches,
        }

    fallback_steps = 0
    fallback_failures = 0
    for case in fallback:
        result = run_scenario(case)
        fallback_steps += result.steps_run
        if result.failure is not None:
            fallback_failures += 1
    return {
        "groups": group_digests,
        "fallback_rows": len(fallback),
        "fallback_steps": fallback_steps,
        "fallback_failures": fallback_failures,
    }


def run_batch_campaign(
    seeds: int = 100,
    seed_base: int = 0,
    scenario: Optional[ScenarioConfig] = None,
    backend: Optional[str] = None,
    oracle_sample: int = 2,
    shards: int = 1,
    workers: int = 0,
) -> BatchCampaignReport:
    """Run fuzz seeds ``seed_base .. seed_base + seeds - 1`` through the
    batch kernel where possible, the object engine otherwise.

    Pure function of its arguments: ``shards`` and ``workers`` change
    only the partitioning and the wall clock, never the report -- the
    serial run *is* the one-shard run through the same merge path, so
    any shard count diffs byte-identical against it."""
    from repro.fuzz.campaign import shard_ranges

    config = scenario or ScenarioConfig()
    chosen = backend or default_backend()
    ranges = shard_ranges(seed_base, seeds, shards)
    tables_shm = None
    if workers > 1:
        from repro.perf.shared import publish_tables

        try:
            tables_shm = publish_tables()
        except Exception:
            tables_shm = None  # no shared memory: workers lower directly
    task_fn = functools.partial(
        _run_batch_shard,
        config.to_dict(),
        chosen,
        oracle_sample,
        tables_shm,
    )
    pool = ParallelConfig(
        workers=workers if workers > 0 else 1,
        mode="serial" if workers <= 1 else "auto",
    )
    try:
        digests = parallel_map(task_fn, ranges, pool)
    finally:
        if tables_shm is not None:
            from repro.perf.shared import unlink_tables

            unlink_tables(tables_shm)

    # Deterministic re-splice: digests arrive in range order (= seed
    # order), so per-group row lists concatenate back to exactly the
    # single-shard scan order.
    merged: dict[tuple, dict] = {}
    fallback_rows = 0
    fallback_steps = 0
    fallback_failures = 0
    for digest in digests:
        fallback_rows += digest["fallback_rows"]
        fallback_steps += digest["fallback_steps"]
        fallback_failures += digest["fallback_failures"]
        for units, group in digest["groups"].items():
            into = merged.setdefault(
                units,
                {
                    "row_seeds": [],
                    "events": 0,
                    "transitions": 0,
                    "crashes": [],
                    "verified": set(),
                    "by_seed": {},
                },
            )
            into["row_seeds"].extend(group["row_seeds"])
            into["events"] += group["events"]
            into["transitions"] += group["transitions"]
            into["crashes"].extend(group["crashes"])
            into["verified"].update(group["verified_seeds"])
            for item in group["mismatches"]:
                into["by_seed"].setdefault(item[0], []).append(item)

    batched_rows = 0
    events = 0
    transitions = 0
    crashes: list = []
    verified_rows = 0
    mismatches: list = []
    for units in sorted(merged):
        group = merged[units]
        batched_rows += len(group["row_seeds"])
        events += group["events"]
        transitions += group["transitions"]
        crashes.extend(group["crashes"])
        sample_seeds = group["row_seeds"][:oracle_sample]
        verified_rows += len(sample_seeds)
        for seed in sample_seeds:
            if seed not in group["verified"]:  # pragma: no cover
                raise AssertionError(
                    f"shard merge lost oracle coverage for seed {seed}"
                )
            mismatches.extend(group["by_seed"].get(seed, []))

    crashes.sort()
    return BatchCampaignReport(
        seeds=seeds,
        seed_base=seed_base,
        backend=chosen,
        populations=len(merged),
        batched_rows=batched_rows,
        fallback_rows=fallback_rows,
        events=events,
        transitions=transitions,
        crashes=crashes,
        verified_rows=verified_rows,
        mismatches=mismatches,
        fallback_steps=fallback_steps,
        fallback_failures=fallback_failures,
    )

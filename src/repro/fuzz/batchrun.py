"""Fuzz-seed populations through the batch kernel, object engine as oracle.

The campaign in :mod:`repro.fuzz.campaign` runs every seed on the
per-object engine.  This driver takes the same deterministically
generated scenarios and routes the batchable ones -- plain registry
specs whose protocols lower to integer tables -- through the
struct-of-arrays kernel of :mod:`repro.perf.batch`, grouped by
``(units, geometry)`` so each group runs as one population.  Scenarios
the lowering rejects (seeded ``full-class:``/``moesi-random:`` choice
specs, injected bugs, round-robin selectors) fall back to the ordinary
object-engine runner.

The object engine stays the oracle: per population, the first
``oracle_sample`` rows are replayed on a real :class:`System` and the
snapshots diffed byte-for-byte (:func:`repro.perf.batch.verify_rows`).
A non-empty ``mismatches`` list is a kernel bug, never ignorable.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import Scenario, ScenarioConfig, generate_scenario
from repro.perf.batch import (
    EVENT_KIND_CODES,
    BatchGeometry,
    BatchPopulation,
    NotBatchableError,
    default_backend,
    lower_units,
    run_population,
    verify_rows,
)

__all__ = ["BatchCampaignReport", "run_batch_campaign"]

_SPEC_BATCHABLE: dict[str, bool] = {}


def _spec_batchable(spec: str) -> bool:
    """Can ``spec`` run on the kernel?  Seeded choice specs carry a
    ``:`` and never can; registry names are probed via the lowering."""
    if ":" in spec:
        return False
    if spec not in _SPEC_BATCHABLE:
        try:
            lower_units((spec,))
        except NotBatchableError:
            _SPEC_BATCHABLE[spec] = False
        else:
            _SPEC_BATCHABLE[spec] = True
    return _SPEC_BATCHABLE[spec]


def _population_key(scenario: Scenario) -> tuple:
    geometry = scenario.geometry
    return (
        scenario.units,
        (
            geometry.num_sets,
            geometry.associativity,
            geometry.line_size,
            geometry.lines,
        ),
    )


def _schedule(scenario: Scenario) -> list:
    return [
        (event.unit, EVENT_KIND_CODES[event.kind], event.line)
        for event in scenario.events
    ]


@dataclasses.dataclass
class BatchCampaignReport:
    """Deterministic outcome of one batch campaign (timings excluded)."""

    seeds: int
    seed_base: int
    backend: str
    populations: int
    batched_rows: int
    fallback_rows: int
    events: int
    transitions: int
    #: ``(seed, step, failure_type)`` for kernel rows that crashed --
    #: the kernel's analog of the fuzz runner's crash taxonomy.
    crashes: list
    verified_rows: int
    #: ``(seed, key, kernel_value, oracle_value)`` diffs; non-empty means
    #: the kernel diverged from the object engine.
    mismatches: list
    fallback_steps: int
    fallback_failures: int

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def summary_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def run_batch_campaign(
    seeds: int = 100,
    seed_base: int = 0,
    scenario: Optional[ScenarioConfig] = None,
    backend: Optional[str] = None,
    oracle_sample: int = 2,
) -> BatchCampaignReport:
    """Run fuzz seeds ``seed_base .. seed_base + seeds - 1`` through the
    batch kernel where possible, the object engine otherwise.

    Pure function of its arguments (same grouping, same schedules, same
    verdicts on every backend), so reports diff cleanly across runs."""
    config = scenario or ScenarioConfig()
    groups: dict[tuple, list] = {}
    fallback: list[Scenario] = []
    for seed in range(seed_base, seed_base + seeds):
        case = generate_scenario(seed, config)
        if all(_spec_batchable(spec) for spec in case.units):
            groups.setdefault(_population_key(case), []).append(case)
        else:
            fallback.append(case)

    chosen = backend or default_backend()
    batched_rows = 0
    events = 0
    transitions = 0
    crashes: list = []
    verified_rows = 0
    mismatches: list = []
    for (units, geometry), cases in sorted(groups.items()):
        pop = BatchPopulation(
            units=units,
            geometry=BatchGeometry(*geometry),
            events=[_schedule(case) for case in cases],
            row_ids=tuple(case.seed for case in cases),
        )
        result = run_population(pop, backend=chosen)
        batched_rows += result.rows
        events += result.events
        transitions += result.transitions
        for row, snapshot in enumerate(result.snapshots):
            if snapshot["crash"] is not None:
                step, kind = snapshot["crash"]
                crashes.append((pop.row_ids[row], step, kind))
        sample = list(range(min(oracle_sample, pop.rows)))
        verified_rows += len(sample)
        for row, key, got, expected in verify_rows(pop, result, rows=sample):
            mismatches.append((pop.row_ids[row], key, got, expected))

    fallback_steps = 0
    fallback_failures = 0
    for case in fallback:
        result = run_scenario(case)
        fallback_steps += result.steps_run
        if result.failure is not None:
            fallback_failures += 1

    crashes.sort()
    return BatchCampaignReport(
        seeds=seeds,
        seed_base=seed_base,
        backend=chosen,
        populations=len(groups),
        batched_rows=batched_rows,
        fallback_rows=len(fallback),
        events=events,
        transitions=transitions,
        crashes=crashes,
        verified_rows=verified_rows,
        mismatches=mismatches,
        fallback_steps=fallback_steps,
        fallback_failures=fallback_failures,
    )

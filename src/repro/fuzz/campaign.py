"""Seeded fuzz campaigns: fan-out, shrinking, repro files, summaries.

A campaign runs seeds ``seed_base .. seed_base + seeds - 1`` through
:func:`repro.fuzz.runner.run_scenario`, fanning out over
:func:`repro.perf.parallel_map` from PR 1.  Because each seed's scenario
and verdict are pure functions of ``(seed, config)``, and results come
back in input order, ``--workers N`` and ``--workers 0`` produce
byte-identical campaign summaries -- the worker count is deliberately
excluded from the report.

Failing seeds are shrunk in the parent process (in seed order, so the
report is deterministic) and written as replayable repro files named
``repro_seed<N>.json``.

:func:`run_sharded_campaign` scales the same engine to millions of
seeds: contiguous seed ranges become the pool tasks, each shard returns
one aggregate digest, and the parent re-splices them in range order and
shrinks through the shared :func:`_collect_failures` stage -- the
report stays byte-identical at any shard count.
"""

from __future__ import annotations

import dataclasses
import functools
import json
from pathlib import Path
from typing import Optional, Union

from repro.deprecation import warn_deprecated
from repro.fuzz.replay import write_repro
from repro.fuzz.runner import StepFailure, run_scenario
from repro.fuzz.scenario import Scenario, ScenarioConfig, generate_scenario
from repro.fuzz.shrink import shrink_scenario
from repro.perf.pool import ParallelConfig, parallel_map

__all__ = [
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "run_campaign",
    "run_sharded_campaign",
    "shard_ranges",
]


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """What to fuzz and how hard."""

    seeds: int = 200
    seed_base: int = 0
    scenario: ScenarioConfig = dataclasses.field(
        default_factory=ScenarioConfig
    )
    #: Shrink failing seeds to minimal counterexamples (slow but precise).
    shrink: bool = True


@dataclasses.dataclass
class CampaignFailure:
    """One failing seed: original verdict, minimal counterexample, repro."""

    seed: int
    failure: StepFailure  # as first observed on the generated scenario
    scenario: Scenario  # shrunk (or original, if shrinking is off)
    shrunk_failure: StepFailure  # the failure the minimal scenario produces
    repro_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "failure": self.failure.to_dict(),
            "scenario": self.scenario.to_dict(),
            "shrunk_failure": self.shrunk_failure.to_dict(),
            "repro_file": Path(self.repro_path).name if self.repro_path else None,
        }


@dataclasses.dataclass
class CampaignReport:
    """Deterministic campaign outcome (worker count intentionally absent)."""

    config: CampaignConfig
    seeds_run: int
    steps_run: int
    transitions_checked: int
    failures: list[CampaignFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seeds": self.config.seeds,
            "seed_base": self.config.seed_base,
            "scenario_config": self.config.scenario.to_dict(),
            "seeds_run": self.seeds_run,
            "steps_run": self.steps_run,
            "transitions_checked": self.transitions_checked,
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def summary_text(self) -> str:
        lines = [
            f"fuzz campaign: {self.config.seeds} seeds "
            f"(base {self.config.seed_base})",
            f"  seeds run:           {self.seeds_run}",
            f"  steps executed:      {self.steps_run}",
            f"  transitions checked: {self.transitions_checked}",
            f"  failures:            {len(self.failures)}",
        ]
        for item in self.failures:
            lines.append(f"  seed {item.seed}: {item.failure}")
            lines.append(
                f"    minimal: {len(item.scenario.events)} events / "
                f"{len(item.scenario.units)} units "
                f"[{' '.join(str(e) for e in item.scenario.events)}] "
                f"-> {item.shrunk_failure}"
            )
            if item.repro_path:
                lines.append(f"    repro: {Path(item.repro_path).name}")
        return "\n".join(lines) + "\n"


def _run_one(scenario_config: dict, seed: int) -> dict:
    """Pool worker: run one seed; returns a picklable digest.

    The scenario config travels bound via :func:`functools.partial` (one
    pickle per chunk) so tasks are bare seed integers.  The scenario
    itself is not shipped back -- the parent regenerates it from the
    seed when (and only when) it needs to shrink a failure.
    """
    scenario = generate_scenario(seed, ScenarioConfig.from_dict(scenario_config))
    result = run_scenario(scenario)
    return {
        "seed": seed,
        "steps_run": result.steps_run,
        "transitions_checked": result.transitions_checked,
        "failure": result.failure.to_dict() if result.failure else None,
    }


def _run_campaign(
    config: Optional[CampaignConfig] = None,
    workers: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
    profiler=None,
    tracer=None,
) -> CampaignReport:
    """The campaign engine behind :func:`repro.api.fuzz_campaign`.

    ``workers=0`` means serial (same report either way).  A
    :class:`repro.obs.profile.Profiler` times the execute/shrink stages;
    a :class:`repro.obs.trace.Tracer` gets stage and per-failure marks.
    """
    config = config or CampaignConfig()
    task_fn = functools.partial(_run_one, config.scenario.to_dict())
    tasks = range(config.seed_base, config.seed_base + config.seeds)
    pool = ParallelConfig(
        workers=workers if workers > 0 else 1,
        mode="serial" if workers <= 1 else "auto",
    )
    if tracer is not None:
        tracer.mark(
            "fuzz.start", seeds=config.seeds, seed_base=config.seed_base
        )
    if profiler is not None:
        with profiler.region("fuzz.execute", seeds=len(tasks)):
            digests = parallel_map(task_fn, tasks, pool)
    else:
        digests = parallel_map(task_fn, tasks, pool)

    steps_run = 0
    transitions_checked = 0
    failing: list[tuple[int, dict]] = []
    for digest in digests:
        steps_run += digest["steps_run"]
        transitions_checked += digest["transitions_checked"]
        if digest["failure"] is not None:
            failing.append((digest["seed"], digest["failure"]))
    failures = _collect_failures(
        config, failing, out_dir=out_dir, profiler=profiler, tracer=tracer
    )

    if tracer is not None:
        tracer.mark(
            "fuzz.done",
            seeds_run=len(digests),
            steps_run=steps_run,
            failures=len(failures),
        )
    return CampaignReport(
        config=config,
        seeds_run=len(digests),
        steps_run=steps_run,
        transitions_checked=transitions_checked,
        failures=failures,
    )


def _collect_failures(
    config: CampaignConfig,
    failing: list,
    out_dir: Optional[Union[str, Path]] = None,
    profiler=None,
    tracer=None,
) -> list[CampaignFailure]:
    """Shrink ``(seed, failure_dict)`` pairs -- already in seed order --
    into :class:`CampaignFailure` items and write their repro files.

    Shared by the per-seed and sharded drivers: both feed the same pairs
    in the same order, so the resulting reports are byte-identical."""
    failures: list[CampaignFailure] = []
    for seed, failure_dict in failing:
        failure = StepFailure.from_dict(failure_dict)
        scenario = generate_scenario(seed, config.scenario)
        if profiler is not None:
            with profiler.region("fuzz.shrink", seed=seed):
                minimal, final = _shrink_stage(config, scenario)
        else:
            minimal, final = _shrink_stage(config, scenario)
        item = CampaignFailure(
            seed=seed,
            failure=failure,
            scenario=minimal,
            shrunk_failure=final.failure,
        )
        if tracer is not None:
            tracer.mark(
                "fuzz.failure",
                seed=seed,
                oracle=failure.oracle,
                events=len(minimal.events),
            )
        if out_dir is not None:
            path = Path(out_dir) / f"repro_seed{seed}.json"
            write_repro(
                path,
                minimal,
                final.failure,
                note=f"shrunk from fuzz seed {seed} "
                f"({len(scenario.events)} events originally)",
            )
            item.repro_path = str(path)
        failures.append(item)
    return failures


def _shrink_stage(config: CampaignConfig, scenario: Scenario):
    if config.shrink:
        return shrink_scenario(scenario)
    return scenario, run_scenario(scenario)


# ---------------------------------------------------------------------------
# Sharded campaigns: seed ranges as pool tasks (PR 9).
# ---------------------------------------------------------------------------
def shard_ranges(seed_base: int, seeds: int, shards: int) -> list[tuple]:
    """Partition ``seed_base .. seed_base + seeds - 1`` into at most
    ``shards`` contiguous ``(start, count)`` ranges, earlier ranges one
    seed longer when the split is uneven.  Ascending and gap-free, so
    splicing shard results in range order *is* seed order."""
    shards = max(1, min(shards, seeds)) if seeds > 0 else 1
    base, extra = divmod(max(0, seeds), shards)
    ranges = []
    start = seed_base
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        if count > 0:
            ranges.append((start, count))
        start += count
    return ranges


def _run_shard(scenario_config: dict, shard: tuple) -> dict:
    """Pool worker: run one contiguous seed range serially.

    Returns one aggregate digest per *range*, not per seed -- totals
    plus the failing seeds' verdicts -- so a million-seed campaign ships
    back kilobytes, not a million dicts.  Scenarios still regenerate in
    the parent for shrinking, exactly as in the per-seed driver."""
    start, count = shard
    config = ScenarioConfig.from_dict(scenario_config)
    steps_run = 0
    transitions_checked = 0
    failing = []
    for seed in range(start, start + count):
        result = run_scenario(generate_scenario(seed, config))
        steps_run += result.steps_run
        transitions_checked += result.transitions_checked
        if result.failure is not None:
            failing.append((seed, result.failure.to_dict()))
    return {
        "count": count,
        "steps_run": steps_run,
        "transitions_checked": transitions_checked,
        "failing": failing,
    }


def run_sharded_campaign(
    config: Optional[CampaignConfig] = None,
    shards: Optional[int] = None,
    workers: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
    profiler=None,
    tracer=None,
) -> CampaignReport:
    """The campaign engine at population scale: seed ranges as tasks.

    The per-seed driver (:func:`repro.api.fuzz_campaign` with no shard
    count) pickles one task and one digest per seed; at millions of
    seeds that wire traffic dominates.  Here each pool task is a whole
    contiguous seed range and returns one aggregate digest, re-spliced
    in range order (= seed order) and shrunk through the same
    :func:`_collect_failures` stage -- so the report is byte-identical
    to the per-seed driver's at **any** shard count, including 1.

    ``shards`` defaults to ``4x`` the worker count (load balancing
    without per-seed dispatch); ``workers=0`` runs the shards serially.
    """
    config = config or CampaignConfig()
    if shards is None:
        shards = 4 * max(1, workers)
    ranges = shard_ranges(config.seed_base, config.seeds, shards)
    task_fn = functools.partial(_run_shard, config.scenario.to_dict())
    pool = ParallelConfig(
        workers=workers if workers > 0 else 1,
        mode="serial" if workers <= 1 else "auto",
    )
    if tracer is not None:
        tracer.mark(
            "fuzz.start",
            seeds=config.seeds,
            seed_base=config.seed_base,
            shards=len(ranges),
        )
    if profiler is not None:
        with profiler.region(
            "fuzz.execute", seeds=config.seeds, shards=len(ranges)
        ):
            digests = parallel_map(task_fn, ranges, pool)
    else:
        digests = parallel_map(task_fn, ranges, pool)

    seeds_run = 0
    steps_run = 0
    transitions_checked = 0
    failing: list[tuple[int, dict]] = []
    for digest in digests:
        seeds_run += digest["count"]
        steps_run += digest["steps_run"]
        transitions_checked += digest["transitions_checked"]
        failing.extend(digest["failing"])
    failures = _collect_failures(
        config, failing, out_dir=out_dir, profiler=profiler, tracer=tracer
    )
    if tracer is not None:
        tracer.mark(
            "fuzz.done",
            seeds_run=seeds_run,
            steps_run=steps_run,
            failures=len(failures),
        )
    return CampaignReport(
        config=config,
        seeds_run=seeds_run,
        steps_run=steps_run,
        transitions_checked=transitions_checked,
        failures=failures,
    )


def run_campaign(
    config: Optional[CampaignConfig] = None,
    workers: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
) -> CampaignReport:
    """Deprecated direct entry point; use :func:`repro.api.fuzz_campaign`.

    Delegates unchanged (and warns once per process)."""
    warn_deprecated(
        "repro.fuzz.campaign.run_campaign", "repro.api.fuzz_campaign"
    )
    return _run_campaign(config, workers=workers, out_dir=out_dir)

"""The two independent oracles every fuzz scenario runs against.

**Invariant oracle** (:class:`InvariantOracle`): after every scheduled
event, the per-line MOESI invariants of :mod:`repro.core.invariants` must
hold on every line the scenario touches, and every processor read must
return the globally last written token (the read-coherence contract).
This is the paper's section 3.1 definition of consistency, applied
step-by-step.

**Differential oracle** (:class:`DifferentialOracle`): every
(state, event, action) transition any board takes -- observed through the
:meth:`repro.system.system.System.install_transition_observer` hook --
must be reachable in the canonical table for that board's protocol spec:
the MOESI-class closure for class members, the protocol's own paper table
for the adapted foreign protocols (see
:func:`repro.fuzz.scenario.reference_query`).  A protocol implementation
that drifts from its table is caught here even when the drift happens not
to break an invariant on this particular schedule.

The two oracles are deliberately independent: the first knows nothing of
tables, the second nothing of data values.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.system.system import System
from repro.verify.explorer import TransitionQuery

__all__ = ["OracleViolation", "InvariantOracle", "DifferentialOracle"]


@dataclasses.dataclass(frozen=True)
class OracleViolation:
    """One oracle's verdict on one step: which oracle, what went wrong."""

    oracle: str  # "invariant" | "differential"
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


class InvariantOracle:
    """Step-wise MOESI invariants plus the read-coherence contract."""

    name = "invariant"

    def __init__(self, system: System, lines: Sequence[int]) -> None:
        self.system = system
        self.lines = tuple(lines)

    def check_read(self, line: int, value: int) -> Optional[OracleViolation]:
        """A processor load must observe the last system-wide write."""
        expected = self.system.last_written_token(line)
        if value != expected:
            return OracleViolation(
                self.name,
                f"stale read on L{line}: got token {value}, "
                f"last write was {expected}",
            )
        return None

    def check_step(self) -> Optional[OracleViolation]:
        """The quiescent-instant invariants over every scheduled line."""
        violations = self.system.check_coherence(self.lines)
        if violations:
            return OracleViolation(
                self.name, "; ".join(str(v) for v in violations)
            )
        return None


class DifferentialOracle:
    """Cross-check observed transitions against canonical tables.

    Install with :meth:`attach`; the observer runs *inside* bus
    transactions, so it never raises -- deviations are queued and drained
    by the runner between steps via :meth:`take_violation`.
    """

    name = "differential"

    def __init__(self, references: dict[str, TransitionQuery]) -> None:
        #: unit id -> the canonical table for that unit's spec.
        self.references = references
        self.transitions_checked = 0
        self._violations: list[OracleViolation] = []
        #: (unit, side, state, event, action) -> permitted.  The observer
        #: runs inside every bus transaction; a scenario replays the same
        #: handful of transitions thousands of times, so the table lookup
        #: is paid once per distinct cell.
        self._permit_memo: dict[tuple, bool] = {}

    def attach(self, system: System) -> None:
        system.install_transition_observer(self.observe)

    def observe(self, unit: str, side: str, state, event, action) -> None:
        self.transitions_checked += 1
        key = (unit, side, state, event, action)
        permitted = self._permit_memo.get(key)
        if permitted is None:
            reference = self.references.get(unit)
            permitted = reference is None or reference.permits(
                side, state, event, action
            )
            self._permit_memo[key] = permitted
        if permitted:
            return
        self._violations.append(
            OracleViolation(
                self.name,
                f"{unit} took unreachable {side} transition: "
                f"state {state}, event {event} -> {action.notation()} "
                "(not in the canonical table)",
            )
        )

    def take_violation(self) -> Optional[OracleViolation]:
        """The first queued deviation, if any (drains the queue)."""
        if not self._violations:
            return None
        first = self._violations[0]
        self._violations.clear()
        return first

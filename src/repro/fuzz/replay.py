"""Replayable ``.json`` repro files and their verbatim re-execution.

A repro file is the complete counterexample: the (shrunk) scenario value
plus the failure it produced when it was written.  ``repro fuzz --replay
file.json`` rebuilds the scenario from the file alone -- protocols,
geometry, schedule, and every dynamic action choice (seeded into the spec
strings) -- and runs it again; a real bug fails again, byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.fuzz.runner import ScenarioResult, StepFailure, run_scenario
from repro.fuzz.scenario import Scenario

__all__ = ["REPRO_FORMAT", "write_repro", "load_repro", "replay_file"]

REPRO_FORMAT = "repro.fuzz/1"


def write_repro(
    path: Union[str, Path],
    scenario: Scenario,
    failure: StepFailure,
    note: str = "",
) -> Path:
    """Write one counterexample; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": REPRO_FORMAT,
        "scenario": scenario.to_dict(),
        "failure": failure.to_dict(),
        "note": note,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(
    path: Union[str, Path]
) -> tuple[Scenario, Optional[StepFailure], str]:
    """Read a repro file back: (scenario, recorded failure, note)."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={data.get('format')!r})"
        )
    failure = (
        StepFailure.from_dict(data["failure"])
        if data.get("failure")
        else None
    )
    return Scenario.from_dict(data["scenario"]), failure, data.get("note", "")


def replay_file(path: Union[str, Path]) -> ScenarioResult:
    """Re-execute a repro file's scenario verbatim."""
    scenario, _, _ = load_repro(path)
    return run_scenario(scenario)

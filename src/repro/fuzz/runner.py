"""Deterministic execution of one fuzz scenario under both oracles.

The schedule is applied synchronously -- each event is one atomic bus
transaction sequence, the abstraction of the paper's tables -- and after
every event both oracles rule.  Execution is a pure function of the
scenario value: same scenario, same result, in any process.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bus.futurebus import BusLivelockError
from repro.cache.controller import NonCachingMaster
from repro.core.protocol import IllegalTransitionError
from repro.fuzz.oracles import DifferentialOracle, InvariantOracle, OracleViolation
from repro.fuzz.scenario import FuzzEvent, Scenario, reference_query, resolve_spec
from repro.system.system import BoardSpec, System

__all__ = [
    "StepFailure",
    "ScenarioResult",
    "ArbitratedScenarioResult",
    "ScenarioReplayReport",
    "build_system",
    "run_scenario",
    "run_scenario_arbitrated",
    "fuzz_spec_for_scenario",
    "scenario_from_fuzz_spec",
    "run_fuzz_spec",
]


@dataclasses.dataclass(frozen=True)
class StepFailure:
    """The first oracle violation (or crash) a scenario produced."""

    step: int  # index into scenario.events
    event: str  # rendered FuzzEvent, e.g. "u1.write[L0]"
    oracle: str  # "invariant" | "differential" | "crash"
    detail: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StepFailure":
        return cls(**data)

    def __str__(self) -> str:
        return f"step {self.step} ({self.event}): [{self.oracle}] {self.detail}"


@dataclasses.dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    steps_run: int
    transitions_checked: int
    failure: Optional[StepFailure]

    @property
    def ok(self) -> bool:
        return self.failure is None


def build_system(scenario: Scenario) -> System:
    """Instantiate the scenario's boards on a fresh bus and memory."""
    geometry = scenario.geometry
    boards = [
        BoardSpec(
            unit_id=f"u{index}",
            protocol=resolve_spec(spec),
            num_sets=geometry.num_sets,
            associativity=geometry.associativity,
            line_size=geometry.line_size,
        )
        for index, spec in enumerate(scenario.units)
    ]
    return System(boards, check=False, label=scenario.label)


def _apply_event(system: System, event: FuzzEvent, line_size: int,
                 invariants: InvariantOracle) -> Optional[OracleViolation]:
    """Execute one scheduled event; returns a read-coherence violation if
    the event was a read that observed stale data."""
    unit = f"u{event.unit}"
    board = system.controllers[unit]
    byte_address = event.line * line_size
    if event.kind == "read":
        value = system.read(unit, byte_address)
        return invariants.check_read(event.line, value)
    if event.kind == "write":
        system.write(unit, byte_address)
        return None
    if event.kind in ("flush", "pass"):
        # Replacement traffic does not apply to cacheless boards, and
        # clean states have no PASS entry; both skips are deterministic.
        if isinstance(board, NonCachingMaster):
            return None
        if event.kind == "flush":
            board.flush_line(event.line)
        else:
            board.clean_line(event.line)
        return None
    raise ValueError(f"unknown event kind {event.kind!r}")


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run the schedule to completion or the first failure."""
    system = build_system(scenario)
    lines = range(scenario.geometry.lines)
    invariants = InvariantOracle(system, lines)
    differential = DifferentialOracle(
        {f"u{i}": reference_query(spec)
         for i, spec in enumerate(scenario.units)}
    )
    differential.attach(system)

    failure: Optional[StepFailure] = None
    steps_run = 0
    for index, event in enumerate(scenario.events):
        violation: Optional[OracleViolation] = None
        try:
            violation = _apply_event(
                system, event, scenario.geometry.line_size, invariants
            )
        except (IllegalTransitionError,) :
            # An event the protocol's table marks "--" (e.g. FLUSH of a
            # line a foreign table has no entry for): inapplicable, skip.
            continue
        except (AssertionError, RuntimeError, BusLivelockError) as exc:
            failure = StepFailure(
                step=index,
                event=str(event),
                oracle="crash",
                detail=f"{type(exc).__name__}: {exc}",
            )
            break
        steps_run += 1
        # The differential oracle rules first: a table deviation is the
        # most precise diagnosis, even when it also broke an invariant.
        violation = differential.take_violation() or violation \
            or invariants.check_step()
        if violation is not None:
            failure = StepFailure(
                step=index,
                event=str(event),
                oracle=violation.oracle,
                detail=violation.detail,
            )
            break
    return ScenarioResult(
        scenario=scenario,
        steps_run=steps_run,
        transitions_checked=differential.transitions_checked,
        failure=failure,
    )


# ---------------------------------------------------------------------------
# Scenario <-> FuzzSpec (the plan/execute bridge).
# ---------------------------------------------------------------------------
def fuzz_spec_for_scenario(scenario: Scenario, *, trace: bool = False):
    """Lift one concrete scenario into a plannable, hashable
    :class:`repro.specs.FuzzSpec`.

    The scenario travels as its canonical JSON string
    (:meth:`Scenario.canonical`), so the spec stays frozen/picklable and
    two specs embedding equal scenarios share one content hash.
    ``execute()`` of the result replays exactly this scenario under both
    oracles (no generation, no shrinking)."""
    from repro.specs import FuzzSpec

    return FuzzSpec(
        seeds=1,
        seed_base=scenario.seed,
        shrink=False,
        scenario_json=scenario.canonical(),
        trace=trace,
    )


def scenario_from_fuzz_spec(spec) -> Scenario:
    """The inverse of :func:`fuzz_spec_for_scenario`."""
    if spec.scenario_json is None:
        raise ValueError(
            "FuzzSpec embeds no scenario (scenario_json is None); "
            "it plans a seeded campaign, not a replay"
        )
    return Scenario.from_canonical(spec.scenario_json)


@dataclasses.dataclass
class ScenarioReplayReport:
    """Campaign-shaped outcome of one embedded-scenario replay, so
    :class:`repro.api.FuzzResult` wraps replays and campaigns alike."""

    scenario: Scenario
    seeds_run: int
    steps_run: int
    transitions_checked: int
    failures: list

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "seeds_run": self.seeds_run,
            "steps_run": self.steps_run,
            "transitions_checked": self.transitions_checked,
            "failures": [f.to_dict() for f in self.failures],
        }


def run_fuzz_spec(spec) -> ScenarioReplayReport:
    """Execute a single-scenario :class:`~repro.specs.FuzzSpec`."""
    scenario = scenario_from_fuzz_spec(spec)
    result = run_scenario(scenario)
    return ScenarioReplayReport(
        scenario=scenario,
        seeds_run=1,
        steps_run=result.steps_run,
        transitions_checked=result.transitions_checked,
        failures=[result.failure] if result.failure is not None else [],
    )


@dataclasses.dataclass
class ArbitratedScenarioResult:
    """Outcome of replaying a scenario through the arbitrated timed bus."""

    scenario: Scenario
    discipline: str
    elapsed_ns: float
    references: int
    failure: Optional[StepFailure]

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_scenario_arbitrated(scenario: Scenario) -> ArbitratedScenarioResult:
    """Replay the scenario's read/write schedule under its arbitration
    discipline.

    The synchronous :func:`run_scenario` is the table oracle; this replay
    proves the *timed* system -- bus requests ordered by the scenario's
    ``discipline`` rather than program order -- still converges to a
    coherent quiescent state.  Flush/pass events have no processor-side
    equivalent and are skipped; per-unit program order is preserved, but
    the interleaving across units is the arbiter's.
    """
    from repro.system.arbitrated import ArbitratedRun
    from repro.system.processor import Processor
    from repro.workloads.trace import Op

    system = build_system(scenario)
    line_size = scenario.geometry.line_size
    per_unit: dict[str, list] = {}
    for event in scenario.events:
        if event.kind not in ("read", "write"):
            continue
        op = Op.READ if event.kind == "read" else Op.WRITE
        per_unit.setdefault(f"u{event.unit}", []).append(
            (op, event.line * line_size)
        )
    processors = [
        Processor(unit, iter(refs)) for unit, refs in sorted(per_unit.items())
    ]
    run = ArbitratedRun(system, processors, arbiter=scenario.discipline)
    references = sum(len(refs) for refs in per_unit.values())

    failure: Optional[StepFailure] = None
    elapsed_ns = 0.0
    try:
        report = run.run()
        elapsed_ns = report.elapsed_ns
    except (AssertionError, RuntimeError, BusLivelockError) as exc:
        failure = StepFailure(
            step=-1,
            event="arbitrated-replay",
            oracle="crash",
            detail=f"{type(exc).__name__}: {exc}",
        )
    if failure is None:
        violation = InvariantOracle(
            system, range(scenario.geometry.lines)
        ).check_step()
        if violation is not None:
            failure = StepFailure(
                step=-1,
                event="arbitrated-replay",
                oracle=violation.oracle,
                detail=violation.detail,
            )
    return ArbitratedScenarioResult(
        scenario=scenario,
        discipline=scenario.discipline,
        elapsed_ns=elapsed_ns,
        references=references,
        failure=failure,
    )

"""Seeded scenario generation: protocol mixes, geometry, event schedules.

A :class:`Scenario` is a *pure value*: a tuple of protocol spec strings,
a cache :class:`Geometry`, and a schedule of :class:`FuzzEvent` entries.
Everything -- including the dynamic per-access action choices the paper's
section 3.4 licenses ("select an action at each instant ... using a random
number generator") -- is reconstructed from spec strings and integer
seeds, so a scenario serializes to JSON and replays byte-for-byte in any
process.

Spec strings
------------
* any :mod:`repro.protocols.registry` name (``"moesi"``, ``"berkeley"``,
  ``"illinois"``, ...);
* ``"full-class:<seed>"`` -- the entire relaxation closure of Tables 1-2
  with a seeded uniform-random choice at every instant (the paper's
  extreme case, applied to the *full* class);
* ``"moesi-random:<seed>"`` -- the literal Table 1/2 cells under a seeded
  random selection policy;
* ``"bug:<name>"`` -- a deliberately broken protocol from
  :data:`INJECTABLE_BUGS`, used to prove the fuzzer has teeth.

Mix discipline: class members mix freely; the BS-adapted foreign
protocols (Write-Once, Illinois, Firefly, and the out-of-class MESIF
fixture) are only generated in homogeneous scenarios, mirroring the
paper's warning that naive mixes need further definition (and the E4
matrix, which demonstrates exactly those holes).

Every scenario also carries a bus arbitration ``discipline`` (drawn
from :data:`repro.bus.arbiter.ARBITER_DISCIPLINES`): the synchronous
oracle replay ignores it, while the arbitrated replay in
:func:`repro.fuzz.runner.run_scenario_arbitrated` uses it to drive the
same schedule through the timed, arbitrated bus.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional

from repro.core.actions import SnoopAction
from repro.core.events import BusEvent
from repro.core.policy import RandomPolicy
from repro.core.protocol import Protocol
from repro.core.signals import SnoopResponse
from repro.core.states import LineState
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.registry import make_protocol
from repro.verify.explorer import (
    ClassTransitionQuery,
    FullClassProtocol,
    ProtocolTransitionQuery,
    TransitionQuery,
)

__all__ = [
    "Geometry",
    "FuzzEvent",
    "Scenario",
    "ScenarioConfig",
    "InjectableBug",
    "INJECTABLE_BUGS",
    "resolve_spec",
    "reference_query",
    "generate_scenario",
]

#: Foreign (BS-adapted) protocols: homogeneous scenarios only.  MESIF is
#: the out-of-class negative fixture -- it runs (and is fuzzed) like the
#: other adapted protocols, against its *own* table as reference.
FOREIGN_SPECS = ("write-once", "illinois", "firefly", "mesif")

#: Event kinds a schedule may contain (the paper's local events 1-4; PASS
#: and FLUSH double as the replacement traffic of a real system).
EVENT_KINDS = ("read", "write", "flush", "pass")


# ---------------------------------------------------------------------------
# Injectable bugs: single-cell protocol breakages the campaign must catch.
# ---------------------------------------------------------------------------
class _IllinoisSilentIM(IllinoisProtocol):
    """Illinois with the invalidation on a snooped read-for-modify (column
    6, the IM path) dropped: the S copy silently survives another cache's
    write -- the injected bug of the acceptance criteria."""

    name = "Illinois(bug:silent-im)"
    snoop_transitions = dict(IllinoisProtocol.snoop_transitions)
    snoop_transitions[
        (LineState.SHAREABLE, BusEvent.CACHE_READ_FOR_MODIFY)
    ] = SnoopAction(LineState.SHAREABLE, SnoopResponse(ch=True))


@dataclasses.dataclass(frozen=True)
class InjectableBug:
    """A named, deliberately out-of-spec protocol for fuzzer self-tests.

    ``base`` names the correct protocol the bug masquerades as: scenario
    generation pools the bug with ``base``-compatible partners, and the
    differential oracle checks it against ``base``'s canonical table.
    """

    name: str
    base: str
    factory: Callable[[], Protocol]
    note: str = ""


def _mutant_factory(cls_name: str) -> Callable[[], Protocol]:
    def factory() -> Protocol:
        from repro.verify import mutations

        return getattr(mutations, cls_name)()

    return factory


INJECTABLE_BUGS: dict[str, InjectableBug] = {
    bug.name: bug
    for bug in (
        InjectableBug(
            "illinois-silent-im",
            base="illinois",
            factory=_IllinoisSilentIM,
            note="Illinois mapping mutated to skip invalidation on IM",
        ),
        InjectableBug(
            "moesi-silent-shared-write",
            base="moesi",
            factory=_mutant_factory("SilentSharedWriteMutant"),
            note="writes to S take M without any bus transaction",
        ),
        InjectableBug(
            "moesi-drop-ownership",
            base="moesi",
            factory=_mutant_factory("DropOwnershipMutant"),
            note="M lines evicted silently, no write-back",
        ),
        InjectableBug(
            "adaptive-retain-no-connect",
            base="moesi-adaptive-threshold",
            factory=_mutant_factory("AdaptiveRetainWithoutConnectMutant"),
            note="adaptive hybrid claims CH on a broadcast write but "
            "never connects (no SL): its copy goes stale",
        ),
        InjectableBug(
            "mesif-stale-forward",
            base="mesif",
            factory=_mutant_factory("MesifStaleForwardMutant"),
            note="MESIF forwards dirty data cache-to-cache without the "
            "memory push",
        ),
    )
}


# ---------------------------------------------------------------------------
# Scenario values.
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Geometry:
    """Cache geometry shared by every board (uniform line size, paper 5.1)."""

    num_sets: int = 1
    associativity: int = 1
    line_size: int = 32
    #: Distinct line addresses the schedule touches; with a 1x1 cache they
    #: alias one frame, so evictions and write-backs join the tested space.
    lines: int = 2

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Geometry":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FuzzEvent:
    """One scheduled local event: ``unit`` (board index) performs ``kind``
    on line address ``line``."""

    unit: int
    kind: str
    line: int

    def __str__(self) -> str:
        return f"u{self.unit}.{self.kind}[L{self.line}]"

    def to_list(self) -> list:
        return [self.unit, self.kind, self.line]

    @classmethod
    def from_list(cls, data: list) -> "FuzzEvent":
        return cls(int(data[0]), str(data[1]), int(data[2]))


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A complete, self-contained fuzz case (JSON-serializable)."""

    seed: int
    units: tuple[str, ...]
    geometry: Geometry
    events: tuple[FuzzEvent, ...]
    #: Bus arbitration discipline for the timed, arbitrated replay
    #: (ignored by the synchronous differential oracle).
    discipline: str = "fcfs"

    @property
    def label(self) -> str:
        return f"fuzz[{self.seed}] " + "+".join(self.units)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "units": list(self.units),
            "geometry": self.geometry.to_dict(),
            "events": [e.to_list() for e in self.events],
            "discipline": self.discipline,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            seed=int(data["seed"]),
            units=tuple(data["units"]),
            geometry=Geometry.from_dict(data["geometry"]),
            events=tuple(FuzzEvent.from_list(e) for e in data["events"]),
            discipline=str(data.get("discipline", "fcfs")),
        )

    # -- canonical round trip (the spec-string contract) ---------------
    def canonical(self) -> str:
        """Canonical JSON (sorted keys, compact separators): two equal
        scenarios canonicalize to identical bytes in any process, so the
        string can ride inside a :class:`repro.specs.FuzzSpec` and key
        the serve tier's memoization cache."""
        from repro.specs import canonical_json

        return canonical_json(self.to_dict())

    @classmethod
    def from_canonical(cls, text: str) -> "Scenario":
        import json

        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """sha256 hex digest of :meth:`canonical`."""
        import hashlib

        return hashlib.sha256(self.canonical().encode("ascii")).hexdigest()


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """Generation knobs.  Plain primitives only: configs cross process
    boundaries (pickled to pool workers) and land in repro files."""

    min_units: int = 2
    max_units: int = 4
    min_events: int = 6
    max_events: int = 20
    #: Probability of a homogeneous foreign-protocol scenario.
    p_foreign: float = 0.25
    #: Event-kind weights (read fills the remainder).
    p_write: float = 0.45
    p_flush: float = 0.08
    p_pass: float = 0.05
    #: Class-member pool; ``full-class`` / ``moesi-random`` entries get a
    #: per-unit choice seed appended at generation time.
    class_pool: tuple[str, ...] = (
        "moesi",
        "moesi-invalidate",
        "moesi-update",
        "berkeley",
        "dragon",
        "write-through",
        "write-through-alloc",
        "non-caching",
        "full-class",
        "moesi-random",
        "moesi-adaptive-threshold",
        "moesi-adaptive-competitive",
    )
    foreign_pool: tuple[str, ...] = FOREIGN_SPECS
    #: Arbitration disciplines a scenario may draw (spec strings for
    #: :func:`repro.bus.arbiter.arbiter_by_name`).
    disciplines: tuple[str, ...] = ("fcfs", "priority", "round-robin")
    #: Name from :data:`INJECTABLE_BUGS`: every generated scenario then
    #: carries the buggy board among correct partners (fuzzer self-test).
    inject: Optional[str] = None

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["class_pool"] = list(self.class_pool)
        data["foreign_pool"] = list(self.foreign_pool)
        data["disciplines"] = list(self.disciplines)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        data = dict(data)
        data["class_pool"] = tuple(data.get("class_pool", cls.class_pool))
        data["foreign_pool"] = tuple(data.get("foreign_pool", cls.foreign_pool))
        data["disciplines"] = tuple(data.get("disciplines", cls.disciplines))
        return cls(**data)


# ---------------------------------------------------------------------------
# Spec resolution.
# ---------------------------------------------------------------------------
def resolve_spec(spec: str) -> Protocol:
    """Instantiate a protocol from a scenario spec string."""
    if spec.startswith("bug:"):
        name = spec[len("bug:"):]
        try:
            return INJECTABLE_BUGS[name].factory()
        except KeyError:
            known = ", ".join(sorted(INJECTABLE_BUGS))
            raise ValueError(
                f"unknown injectable bug {name!r}; known: {known}"
            ) from None
    if spec.startswith("full-class:"):
        seed = int(spec.split(":", 1)[1])
        return FullClassProtocol(
            RandomPolicy(seed=seed), name=f"FullClass(random:{seed})"
        )
    if spec.startswith("moesi-random:"):
        seed = int(spec.split(":", 1)[1])
        from repro.protocols.moesi import MoesiProtocol

        return MoesiProtocol(
            RandomPolicy(seed=seed), name=f"MOESI(random:{seed})"
        )
    return make_protocol(spec)


def reference_query(spec: str) -> TransitionQuery:
    """The canonical table a unit's transitions are diffed against.

    The reference is always built from the *unmutated* base: an injected
    bug is checked against the table of the protocol it claims to be.
    Class members are checked against the full class closure (any
    permitted action at any instant is in-spec); the adapted foreign
    protocols against their own paper table.
    """
    if spec.startswith("bug:"):
        name = spec[len("bug:"):]
        return reference_query(INJECTABLE_BUGS[name].base)
    base = spec.split(":", 1)[0]
    if base in FOREIGN_SPECS:
        return ProtocolTransitionQuery(base)
    if base == "full-class":
        # The full-class protocol may take *any* kind's permitted action
        # (the paper's universal claim), so its reference is unfiltered.
        return ClassTransitionQuery(None)
    protocol = resolve_spec(spec)
    return ClassTransitionQuery(protocol.kind)


# ---------------------------------------------------------------------------
# Generation.
# ---------------------------------------------------------------------------
def _pick_units(rng: random.Random, config: ScenarioConfig) -> list[str]:
    n = rng.randint(config.min_units, config.max_units)
    if config.inject is not None:
        bug = INJECTABLE_BUGS[config.inject]
        units = [bug.base] * n
        units[rng.randrange(n)] = f"bug:{config.inject}"
        return units
    if config.foreign_pool and rng.random() < config.p_foreign:
        return [rng.choice(config.foreign_pool)] * n
    units = []
    for _ in range(n):
        spec = rng.choice(config.class_pool)
        if spec in ("full-class", "moesi-random"):
            spec = f"{spec}:{rng.randrange(1 << 16)}"
        units.append(spec)
    return units


def _pick_geometry(rng: random.Random) -> Geometry:
    return Geometry(
        num_sets=rng.choice((1, 1, 2, 4)),
        associativity=rng.choice((1, 1, 2)),
        line_size=rng.choice((16, 32, 64)),
        lines=rng.randint(1, 4),
    )


def _pick_kind(rng: random.Random, config: ScenarioConfig) -> str:
    roll = rng.random()
    if roll < config.p_write:
        return "write"
    if roll < config.p_write + config.p_flush:
        return "flush"
    if roll < config.p_write + config.p_flush + config.p_pass:
        return "pass"
    return "read"


def generate_scenario(
    seed: int, config: Optional[ScenarioConfig] = None
) -> Scenario:
    """Deterministically derive the scenario for ``seed``.

    Same (seed, config) -> identical scenario, in any process, on any
    platform: the generator draws only from ``random.Random(seed)``.
    """
    config = config or ScenarioConfig()
    rng = random.Random(seed)
    units = _pick_units(rng, config)
    geometry = _pick_geometry(rng)
    count = rng.randint(config.min_events, config.max_events)
    events = tuple(
        FuzzEvent(
            unit=rng.randrange(len(units)),
            kind=_pick_kind(rng, config),
            line=rng.randrange(geometry.lines),
        )
        for _ in range(count)
    )
    # Drawn LAST so pre-existing seeds keep their units/geometry/events.
    discipline = rng.choice(config.disciplines)
    return Scenario(seed=seed, units=tuple(units), geometry=geometry,
                    events=events, discipline=discipline)

"""Counterexample shrinking: delta-debug failing scenarios to minimality.

Two passes, in the order that pays best:

1. **events** -- classic ddmin over the schedule (Zeller & Hildebrandt):
   remove event chunks at doubling granularity while the scenario still
   fails, then strip single events to a 1-minimal schedule;
2. **caches** -- drop boards one at a time (their events go with them,
   surviving events are renumbered) while the failure persists.

"Still fails" means *any* oracle failure, not the byte-identical one: a
shrink that surfaces a different symptom of the same bug is a better
counterexample than a longer schedule.  Shrinking is deterministic: every
candidate run is the pure :func:`repro.fuzz.runner.run_scenario`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.fuzz.runner import ScenarioResult, run_scenario
from repro.fuzz.scenario import FuzzEvent, Scenario

__all__ = ["shrink_scenario"]

RunFn = Callable[[Scenario], ScenarioResult]


def _with_events(scenario: Scenario, events: tuple[FuzzEvent, ...]) -> Scenario:
    return dataclasses.replace(scenario, events=events)


def _fails(scenario: Scenario, run: RunFn) -> bool:
    return run(scenario).failure is not None


def _ddmin_events(scenario: Scenario, run: RunFn) -> Scenario:
    events = scenario.events
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if candidate and _fails(_with_events(scenario, candidate), run):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(events), granularity * 2)
    return _with_events(scenario, events)


def _strip_single_events(scenario: Scenario, run: RunFn) -> Scenario:
    """Final 1-minimality pass: no single event can be removed."""
    changed = True
    while changed and len(scenario.events) > 1:
        changed = False
        for index in range(len(scenario.events)):
            candidate = _with_events(
                scenario,
                scenario.events[:index] + scenario.events[index + 1:],
            )
            if _fails(candidate, run):
                scenario = candidate
                changed = True
                break
    return scenario


def _without_unit(scenario: Scenario, index: int) -> Scenario:
    units = scenario.units[:index] + scenario.units[index + 1:]
    events = tuple(
        FuzzEvent(
            unit=e.unit - 1 if e.unit > index else e.unit,
            kind=e.kind,
            line=e.line,
        )
        for e in scenario.events
        if e.unit != index
    )
    return dataclasses.replace(scenario, units=units, events=events)


def _shrink_units(scenario: Scenario, run: RunFn) -> Scenario:
    index = len(scenario.units) - 1
    while index >= 0 and len(scenario.units) > 1:
        candidate = _without_unit(scenario, index)
        if candidate.events and _fails(candidate, run):
            scenario = candidate
        index -= 1
    return scenario


def shrink_scenario(
    scenario: Scenario,
    run: Optional[RunFn] = None,
) -> tuple[Scenario, ScenarioResult]:
    """Shrink a failing scenario; returns (minimal scenario, its result).

    The input must fail under ``run`` (default: the real runner); raises
    ``ValueError`` otherwise so callers cannot silently "shrink" a passing
    case.
    """
    run = run or run_scenario
    result = run(scenario)
    if result.failure is None:
        raise ValueError("shrink_scenario needs a failing scenario")
    scenario = _ddmin_events(scenario, run)
    scenario = _strip_single_events(scenario, run)
    scenario = _shrink_units(scenario, run)
    final = run(scenario)
    assert final.failure is not None
    return scenario, final

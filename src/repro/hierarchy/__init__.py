"""Multi-bus hierarchy (the paper's section-6 future work, built):
cluster bridges and the two-level hierarchical system."""

from repro.hierarchy.bridge import ClusterBridge, DirectoryEntry, DirectoryState
from repro.hierarchy.system import ClusterSpec, HierarchicalSystem

__all__ = [
    "ClusterBridge",
    "DirectoryEntry",
    "DirectoryState",
    "ClusterSpec",
    "HierarchicalSystem",
]

"""Cluster bridges: MOESI consistency across *multiple* Futurebuses.

The paper closes with the open problem (section 6): "how one might
implement a system with multiple buses and still maintain consistency."
This module answers it with the machinery the paper already provides: a
two-level hierarchy in which each **cluster** has its own local Futurebus
of snooping caches, and a **bridge** per cluster joins it to one global
Futurebus that also carries main memory.

The bridge plays two roles at once:

* on the **local bus** it is the cluster's "main memory": local read
  misses and write-backs terminate at the bridge, which satisfies them
  from its directory or by issuing a transaction on the global bus.  It
  also snoops every local address cycle (the broadcast requirement makes
  this free) so it can assert CH on behalf of remote copies and
  propagate local invalidates/broadcast writes upward;
* on the **global bus** it is a cache master in the MOESI class: its
  directory entry for a line carries the *cluster's* global state, it
  asserts CH/DI/SL like any snooper, supplies data by fetching from the
  local owner when intervention is required, and invalidates or updates
  its whole cluster when remote transactions demand it.

Two MOESI-class facts make the design sound:

1. **Relaxation 12 (E may be replaced by M).**  A local cache granted E
   may silently upgrade to M, which the bridge cannot observe.  The
   bridge therefore never records E: any globally-exclusive grant is
   booked as M ("the cluster may own this"), so it always intervenes on
   global reads and fetches the freshest copy from inside the cluster.
2. **Relaxation 11 / the Table-2 "or I" choices.**  On remote broadcast
   writes the bridge takes the invalidate option for its whole cluster,
   which is always permitted and avoids multi-party update fan-out
   across levels.

Directory entries never hold a stale value *when they may be asked for
it*: local broadcast writes reach the bridge through memory reflection,
write-backs terminate at it, and whenever a live local owner exists the
bridge's global state is M/O, so global requests are served by an
explicit local fetch (the owner intervenes on the local bus) rather than
from the directory.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.bus.futurebus import BusAgent, Futurebus
from repro.bus.timing import BusTiming
from repro.bus.transaction import Transaction
from repro.core.actions import BusOp
from repro.core.events import BusEvent
from repro.core.signals import MasterSignals, ResponseAggregate, SnoopResponse
from repro.core.states import LineState

__all__ = ["DirectoryState", "DirectoryEntry", "ClusterBridge"]


class DirectoryState(enum.Enum):
    """The cluster's rights to a line, as seen from the global bus.

    E is deliberately absent (relaxation 12): an exclusive grant is
    recorded as MODIFIED because a local cache may silently dirty it.
    """

    INVALID = "I"
    SHARED = "S"
    OWNED = "O"
    MODIFIED = "M"

    @property
    def valid(self) -> bool:
        return self is not DirectoryState.INVALID

    @property
    def owns(self) -> bool:
        return self in (DirectoryState.MODIFIED, DirectoryState.OWNED)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass
class DirectoryEntry:
    state: DirectoryState = DirectoryState.INVALID
    value: int = 0


@dataclasses.dataclass
class BridgeStats:
    global_reads: int = 0
    global_rfos: int = 0
    global_broadcast_writes: int = 0
    global_invalidates: int = 0
    supplies: int = 0
    cluster_invalidates: int = 0
    local_fetches: int = 0


class _LocalPort:
    """The local bus's MemoryPort, delegating to the bridge."""

    def __init__(self, bridge: "ClusterBridge") -> None:
        self._bridge = bridge

    def read(self, address: int) -> int:
        return self._bridge._local_memory_read(address)

    def write(self, address: int, value: int) -> None:
        self._bridge._local_memory_write(address, value)


class _LocalWatcher(BusAgent):
    """The bridge's snooping presence on its local bus."""

    def __init__(self, bridge: "ClusterBridge") -> None:
        self._bridge = bridge
        self.unit_id = f"{bridge.bridge_id}.watcher"

    def snoop(self, txn: Transaction) -> SnoopResponse:
        return self._bridge._local_snoop(txn)

    def finalize(self, txn: Transaction, aggregate: ResponseAggregate) -> None:
        self._bridge._local_finalize(txn)


class ClusterBridge(BusAgent):
    """One cluster's gateway between its local bus and the global bus."""

    def __init__(
        self,
        bridge_id: str,
        global_bus: Futurebus,
        local_timing: Optional[BusTiming] = None,
    ) -> None:
        self.unit_id = bridge_id
        self.bridge_id = bridge_id
        self.global_bus = global_bus
        self.local_bus = Futurebus(_LocalPort(self), timing=local_timing)
        self.local_bus.attach(_LocalWatcher(self))
        global_bus.attach(self)
        self.directory: dict[int, DirectoryEntry] = {}
        self.stats = BridgeStats()
        #: The local transaction currently in its address/data phase (set
        #: at snoop, cleared at finalize); lets the memory port tell a
        #: write-back apart from a modifying write.
        self._current_local_txn: Optional[Transaction] = None
        #: Serial of a local transaction whose write was already
        #: forwarded upward during the address cycle (so the memory port
        #: must not forward it a second time).
        self._forwarded_serial: Optional[int] = None
        #: Stashed global-snoop decision between snoop() and finalize().
        self._pending_global: Optional[tuple[int, Transaction, DirectoryState]] = None

    # ------------------------------------------------------------------
    def _entry(self, address: int) -> DirectoryEntry:
        return self.directory.setdefault(address, DirectoryEntry())

    def directory_state(self, address: int) -> DirectoryState:
        entry = self.directory.get(address)
        return entry.state if entry else DirectoryState.INVALID

    def _is_own_transaction(self, txn: Transaction) -> bool:
        return txn.master == self.bridge_id

    # ------------------------------------------------------------------
    # Local bus: memory-port side.
    # ------------------------------------------------------------------
    def _local_memory_read(self, address: int) -> int:
        entry = self._entry(address)
        if not entry.state.valid:
            # Defensive only: every local miss passes through our snoop
            # (the broadcast address cycle), which prefetches the line
            # into the directory before the data phase begins.
            self._global_fetch(address, rfo=False)
        # No local owner intervened (else this port is not consulted), so
        # the directory copy is current for the cluster.
        return entry.value

    def _global_fetch(self, address: int, rfo: bool) -> None:
        """Fetch the line (and, for read-for-modify, exclusivity) from the
        global bus into the directory.

        Called during the *local address cycle*: the Futurebus handshake
        lets any module hold AI* until it is "finished with the address",
        which is exactly what a bridge needs -- its CH contribution on the
        local bus depends on the global state, so it resolves the global
        transaction before releasing the local address cycle.
        """
        entry = self._entry(address)
        result = self.global_bus.execute(
            self.bridge_id,
            address,
            MasterSignals(ca=True, im=rfo),
            BusOp.READ,
        )
        if rfo:
            self.stats.global_rfos += 1
            entry.state = DirectoryState.MODIFIED
        else:
            self.stats.global_reads += 1
            # CH:S/E with E booked as M (relaxation 12): a silent local
            # E->M upgrade is invisible to us, so an exclusive grant is
            # recorded as potential ownership.
            entry.state = (
                DirectoryState.SHARED
                if result.aggregate.ch
                else DirectoryState.MODIFIED
            )
        assert result.value is not None
        entry.value = result.value

    def _local_memory_write(self, address: int, value: int) -> None:
        """Local pushes, broadcast-write reflections, and ownerless
        uncached writes all land here."""
        entry = self._entry(address)
        txn = self._current_local_txn
        if txn is not None and self._forwarded_serial == txn.serial:
            # The snoop side already forwarded this write upward with the
            # correct semantics; just absorb the local reflection.
            if entry.state.valid:
                entry.value = value
            return
        is_push = txn is not None and not txn.signals.im
        if is_push or entry.state is DirectoryState.MODIFIED:
            # A write-back does not modify the data (remote copies, if
            # any, already hold this value); and a MODIFIED entry means no
            # copies exist outside the cluster.  Absorb silently.
            entry.value = value
            return
        if not entry.state.valid:
            # Nothing in this cluster holds the line: this is an
            # ownerless uncached/write-through write passing through.
            # Forward it as exactly that -- an uncached write with the
            # original broadcast-ness (claiming ownership with a CA,IM,BC
            # broadcast would be the illegal column-8-against-M case).  A
            # remote owner captures/updates and keeps ownership; with no
            # remote owner, global memory takes the write.
            broadcast = bool(txn is None or txn.signals.bc)
            self.global_bus.execute(
                self.bridge_id,
                address,
                MasterSignals(im=True, bc=broadcast),
                BusOp.WRITE,
                value,
            )
            self.stats.global_broadcast_writes += 1
            return
        # The line is visible outside the cluster -- entry SHARED or
        # OWNED (owned *but shared*: remote S copies exist): announce the
        # modification on the global bus before absorbing it.  A global
        # broadcast write updates global memory and lets other clusters
        # update or invalidate; the cluster emerges as the owner.
        result = self.global_bus.execute(
            self.bridge_id,
            address,
            MasterSignals(ca=True, im=True, bc=True),
            BusOp.WRITE,
            value,
        )
        self.stats.global_broadcast_writes += 1
        entry.state = (
            DirectoryState.OWNED
            if result.aggregate.ch
            else DirectoryState.MODIFIED
        )
        entry.value = value

    # ------------------------------------------------------------------
    # Local bus: snooping side.
    # ------------------------------------------------------------------
    def _local_snoop(self, txn: Transaction) -> SnoopResponse:
        if self._is_own_transaction(txn):
            return SnoopResponse.NONE
        self._current_local_txn = txn
        entry = self.directory.get(txn.address)
        event = txn.event

        if event in (BusEvent.CACHE_READ, BusEvent.UNCACHED_READ):
            if entry is None or not entry.state.valid:
                # Resolve the global state *now*, during the local
                # address cycle, because our CH answer depends on it.
                self._global_fetch(txn.address, rfo=False)
                entry = self._entry(txn.address)
            # Pretend-sharer: while the line is globally shared, no local
            # cache may believe it holds the sole copy, or it would later
            # modify silently.  CH forces readers into S.
            ch = entry.state in (DirectoryState.SHARED, DirectoryState.OWNED)
            return SnoopResponse(ch=ch)

        if event is BusEvent.CACHE_READ_FOR_MODIFY:
            if entry and entry.state.valid:
                if entry.state in (
                    DirectoryState.SHARED,
                    DirectoryState.OWNED,
                ):
                    # Remote copies must die before the local writer may
                    # proceed: a global address-only invalidate.
                    self.global_bus.execute(
                        self.bridge_id,
                        txn.address,
                        MasterSignals(ca=True, im=True),
                        BusOp.NONE,
                    )
                    self.stats.global_invalidates += 1
                entry.state = DirectoryState.MODIFIED
            else:
                # Local write miss with nothing cached here: fetch global
                # ownership along with the data.
                self._global_fetch(txn.address, rfo=True)
            return SnoopResponse.NONE

        if event in (
            BusEvent.UNCACHED_WRITE,
            BusEvent.UNCACHED_BROADCAST_WRITE,
        ):
            # A write past the caches.  If a local owner captures it the
            # port is never consulted, yet copies outside the cluster are
            # now stale: forward the write upward first, *preserving its
            # broadcast-ness* -- a non-broadcast write (column 9) promises
            # every other holder invalidates, a broadcast one (column 10)
            # lets them update and retain; translating between the two
            # would desynchronize the levels.
            if entry and entry.state in (
                DirectoryState.SHARED,
                DirectoryState.OWNED,
            ):
                assert txn.value is not None
                broadcast = txn.signals.bc
                self.global_bus.execute(
                    self.bridge_id,
                    txn.address,
                    MasterSignals(im=True, bc=broadcast),
                    BusOp.WRITE,
                    txn.value,
                )
                self.stats.global_broadcast_writes += 1
                self._forwarded_serial = txn.serial
                # In every case the directory's copy becomes the written
                # value, and the cluster still holds the line: on a
                # non-broadcast write other holders die but the *writer*
                # may retain its copy (a write-through cache stays in S);
                # on a broadcast write holders update in place.  SHARED
                # stays SHARED (a remote owner may have captured/updated
                # and retained ownership); OWNED stays OWNED.
                entry.value = txn.value
            return SnoopResponse.NONE

        if event is BusEvent.CACHE_BROADCAST_WRITE:
            # The data movement reaches us via memory reflection
            # (_local_memory_write, which announces upward).  But our CH
            # answer matters *now*: while the line is visible outside the
            # cluster (entry S/O), copies above us may survive the
            # announce (an upper-level sharer may take the update
            # option), so the local writer must resolve CH:O/M to O --
            # assert CH on their behalf.  With entry M the cluster is the
            # sole holder and the writer may take M.
            ch = bool(
                entry
                and entry.state in (DirectoryState.SHARED, DirectoryState.OWNED)
            )
            return SnoopResponse(ch=ch)

        return SnoopResponse.NONE

    def _local_finalize(self, txn: Transaction) -> None:
        if (
            self._current_local_txn is not None
            and self._current_local_txn.serial == txn.serial
        ):
            self._current_local_txn = None
        if self._forwarded_serial == txn.serial:
            self._forwarded_serial = None

    # ------------------------------------------------------------------
    # Global bus: the bridge as a MOESI-class snooper.
    # ------------------------------------------------------------------
    def snoop(self, txn: Transaction) -> SnoopResponse:
        entry = self.directory.get(txn.address)
        if entry is None or not entry.state.valid:
            return SnoopResponse.NONE
        event = txn.event
        self._pending_global = (txn.serial, txn, entry.state)

        if event in (BusEvent.CACHE_READ, BusEvent.UNCACHED_READ):
            if entry.state.owns:
                return SnoopResponse(ch=True, di=True)
            return SnoopResponse(ch=True)

        if event is BusEvent.CACHE_READ_FOR_MODIFY:
            return SnoopResponse(di=entry.state.owns)

        if event is BusEvent.CACHE_BROADCAST_WRITE:
            # Take the always-permitted invalidate option for the whole
            # cluster ("S,SL,CH or I" -- we choose I).
            return SnoopResponse.NONE

        if event in (
            BusEvent.UNCACHED_WRITE,
            BusEvent.UNCACHED_BROADCAST_WRITE,
        ):
            if entry.state.owns:
                # Owner captures (col 9) or connects (col 10).
                if event is BusEvent.UNCACHED_WRITE:
                    return SnoopResponse(ch=None, di=True)
                return SnoopResponse(ch=None, sl=True)
            return SnoopResponse.NONE

        return SnoopResponse.NONE  # pragma: no cover - exhaustive above

    def supply_data(self, txn: Transaction) -> int:
        """The cluster owns the line; find its freshest copy.

        A local fetch (an ordinary CA read on the local bus) makes any
        local owner intervene -- and downgrades it M->O, which is correct
        because the line is being shared outward.  With no local owner
        the fetch terminates at our own port, which serves the directory.
        """
        self.stats.supplies += 1
        value = self._local_fetch(txn.address)
        return value

    def _local_fetch(self, address: int) -> int:
        self.stats.local_fetches += 1
        result = self.local_bus.execute(
            self.bridge_id, address, MasterSignals(ca=True), BusOp.READ
        )
        assert result.value is not None
        entry = self._entry(address)
        entry.value = result.value
        return result.value

    def _invalidate_cluster(self, address: int) -> None:
        """Address-only invalidate on the local bus kills every local
        copy (their Table-2 column-6 responses)."""
        self.stats.cluster_invalidates += 1
        self.local_bus.execute(
            self.bridge_id,
            address,
            MasterSignals(ca=True, im=True),
            BusOp.NONE,
        )

    def capture_write(self, txn: Transaction) -> None:
        """DI on a remote non-broadcast write (column 9): absorb it for
        the cluster, dropping now-stale local copies.

        The entry's state is preserved, exactly as Table 2 prescribes for
        owners (M -> M,DI and O -> O,DI): an OWNED entry must *stay*
        OWNED because the writer itself may retain a copy (a
        write-through cache stays in S after writing past), and O is the
        only owning state consistent with that surviving sharer."""
        entry = self._entry(txn.address)
        assert txn.value is not None
        self._invalidate_cluster(txn.address)
        entry.value = txn.value

    def connect_update(self, txn: Transaction) -> None:
        """SL on a remote broadcast write (column 10): other holders may
        update *and retain* their copies, so our state must be preserved
        (Table 2: M -> M,SL and O -> O,SL), not upgraded."""
        entry = self._entry(txn.address)
        assert txn.value is not None
        self._invalidate_cluster(txn.address)
        entry.value = txn.value

    def finalize(self, txn: Transaction, aggregate: ResponseAggregate) -> None:
        pending = self._pending_global
        if pending is None or pending[0] != txn.serial:
            return
        self._pending_global = None
        entry = self.directory.get(txn.address)
        if entry is None or not entry.state.valid:
            return
        event = txn.event

        if event in (BusEvent.CACHE_READ, BusEvent.UNCACHED_READ):
            if entry.state is DirectoryState.MODIFIED:
                entry.state = DirectoryState.OWNED
            return

        if event is BusEvent.CACHE_READ_FOR_MODIFY:
            self._invalidate_cluster(txn.address)
            entry.state = DirectoryState.INVALID
            return

        if event is BusEvent.CACHE_BROADCAST_WRITE:
            self._invalidate_cluster(txn.address)
            entry.state = DirectoryState.INVALID
            return
        # Columns 9/10 were fully handled in capture/connect; a
        # non-owning S entry must still drop its cluster's copies.
        if event in (
            BusEvent.UNCACHED_WRITE,
            BusEvent.UNCACHED_BROADCAST_WRITE,
        ):
            if not entry.state.owns:
                self._invalidate_cluster(txn.address)
                entry.state = DirectoryState.INVALID

    def transaction_aborted(self, txn: Transaction) -> None:
        if self._pending_global and self._pending_global[0] == txn.serial:
            self._pending_global = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterBridge {self.bridge_id} {len(self.directory)} lines>"

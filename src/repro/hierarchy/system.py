"""Hierarchical (multi-bus) system builder and coherence oracle.

Builds K clusters of N caching boards, each cluster on its own local
Futurebus behind a :class:`~repro.hierarchy.bridge.ClusterBridge`, all
bridges on one global Futurebus with main memory.  Provides the same
checked read/write interface as the flat :class:`repro.system.System`,
plus hierarchy-aware invariant checking:

* at most one cluster directory owns a line (global single-owner);
* within each cluster, at most one cache owns it (local single-owner);
* every valid leaf copy holds the last value written anywhere;
* if no cluster owns the line, global memory is current;
* a cluster marked SHARED never contains a local owner.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.bus.futurebus import Futurebus
from repro.bus.timing import BusTiming
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController
from repro.cache.replacement import replacement_by_name
from repro.core.protocol import Protocol
from repro.core.states import INTERVENIENT_STATES
from repro.hierarchy.bridge import ClusterBridge, DirectoryState
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol
from repro.system.system import CoherenceError
from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = ["ClusterSpec", "HierarchicalSystem"]


@dataclasses.dataclass
class ClusterSpec:
    """One cluster: a name and the protocols of its boards."""

    name: str
    protocols: Sequence[str] = ("moesi", "moesi")
    num_sets: int = 64
    associativity: int = 2
    line_size: int = 32
    replacement: str = "lru"


class HierarchicalSystem:
    """K clusters x N caches over two bus levels, with runtime checking."""

    def __init__(
        self,
        clusters: Sequence[ClusterSpec],
        timing: Optional[BusTiming] = None,
        check: bool = True,
        label: str = "hierarchy",
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        self.label = label
        self.check = check
        self.memory = MainMemory()
        self.global_bus = Futurebus(self.memory, timing=timing)
        self.bridges: dict[str, ClusterBridge] = {}
        self.controllers: dict[str, CacheController] = {}
        self.cluster_of: dict[str, str] = {}
        self.line_size = clusters[0].line_size
        for spec in clusters:
            if spec.line_size != self.line_size:
                raise ValueError("system-wide line size must be uniform")
            self._add_cluster(spec, timing)
        self._last_version: dict[int, int] = {}
        self._version_counter = 0
        self.accesses = 0

    def _add_cluster(
        self, spec: ClusterSpec, timing: Optional[BusTiming]
    ) -> None:
        bridge = ClusterBridge(
            f"bridge.{spec.name}", self.global_bus, local_timing=timing
        )
        self.bridges[spec.name] = bridge
        for index, protocol_name in enumerate(spec.protocols):
            protocol: Protocol = make_protocol(protocol_name)
            unit_id = f"{spec.name}.cpu{index}"
            cache = SetAssociativeCache(
                num_sets=spec.num_sets,
                associativity=spec.associativity,
                line_size=spec.line_size,
                replacement=replacement_by_name(
                    spec.replacement, spec.num_sets, spec.associativity
                ),
            )
            controller = CacheController(
                unit_id, protocol, cache, bridge.local_bus
            )
            self.controllers[unit_id] = controller
            self.cluster_of[unit_id] = spec.name

    @classmethod
    def grid(
        cls,
        clusters: int,
        cpus_per_cluster: int,
        protocol: str = "moesi",
        **kwargs,
    ) -> "HierarchicalSystem":
        """K x N homogeneous grid."""
        specs = [
            ClusterSpec(f"c{i}", protocols=[protocol] * cpus_per_cluster)
            for i in range(clusters)
        ]
        return cls(specs, label=f"{protocol} {clusters}x{cpus_per_cluster}",
                   **kwargs)

    # ------------------------------------------------------------------
    def _line_address(self, byte_address: int) -> int:
        return byte_address // self.line_size

    def read(self, unit: str, byte_address: int) -> int:
        self.accesses += 1
        value = self.controllers[unit].read(byte_address)
        if self.check:
            line = self._line_address(byte_address)
            expected = self._last_version.get(line, 0)
            if value != expected:
                raise CoherenceError(
                    f"{unit} read 0x{byte_address:x}: got {value}, "
                    f"last write was {expected}"
                )
            self._check_line(line)
        return value

    def write(self, unit: str, byte_address: int) -> int:
        self.accesses += 1
        self._version_counter += 1
        token = self._version_counter
        self.controllers[unit].write(byte_address, token)
        self._last_version[self._line_address(byte_address)] = token
        if self.check:
            self._check_line(self._line_address(byte_address))
        return token

    def apply(self, record: ReferenceRecord) -> None:
        if record.op is Op.READ:
            self.read(record.unit, record.address)
        else:
            self.write(record.unit, record.address)

    def run_trace(self, trace: Trace) -> None:
        for record in trace:
            self.apply(record)

    # ------------------------------------------------------------------
    # Hierarchy-aware invariant checking.
    # ------------------------------------------------------------------
    def check_line(self, line: int) -> list[str]:
        """All violated hierarchy invariants for one line (empty = ok)."""
        expected = self._last_version.get(line, 0)
        problems: list[str] = []

        owning_clusters = []
        for name, bridge in self.bridges.items():
            if bridge.directory_state(line).owns:
                owning_clusters.append(name)
        if len(owning_clusters) > 1:
            problems.append(
                f"line {line}: multiple owning clusters {owning_clusters}"
            )

        for unit, controller in self.controllers.items():
            state = controller.state_of(line)
            if not state.valid:
                continue
            if controller.value_of(line) != expected:
                problems.append(
                    f"line {line}: stale copy at {unit} "
                    f"({controller.value_of(line)} != {expected})"
                )

        for name, bridge in self.bridges.items():
            local_owners = [
                unit
                for unit, controller in self.controllers.items()
                if self.cluster_of[unit] == name
                and controller.state_of(line) in INTERVENIENT_STATES
            ]
            if len(local_owners) > 1:
                problems.append(
                    f"line {line}: multiple owners in cluster {name}: "
                    f"{local_owners}"
                )
            directory_state = bridge.directory_state(line)
            if local_owners and not directory_state.owns:
                problems.append(
                    f"line {line}: cluster {name} has local owner "
                    f"{local_owners} but directory says {directory_state}"
                )
            if directory_state is DirectoryState.SHARED and local_owners:
                problems.append(
                    f"line {line}: SHARED cluster {name} contains owner"
                )
            # A cluster that owns but has no live local owner must itself
            # hold the current data (it is the supplier of record).
            if (
                directory_state.owns
                and not local_owners
                and bridge.directory[line].value != expected
            ):
                problems.append(
                    f"line {line}: owning cluster {name} directory stale"
                )

        if not owning_clusters and self.memory.peek(line) != expected:
            problems.append(
                f"line {line}: no owning cluster but global memory stale "
                f"({self.memory.peek(line)} != {expected})"
            )
        return problems

    def _check_line(self, line: int) -> None:
        problems = self.check_line(line)
        if problems:
            raise CoherenceError("; ".join(problems))

    def check_coherence(self) -> list[str]:
        lines: set[int] = set(self._last_version)
        lines.update(self.memory.addresses())
        for bridge in self.bridges.values():
            lines.update(
                addr
                for addr, entry in bridge.directory.items()
                if entry.state.valid
            )
        for controller in self.controllers.values():
            for line, _, _ in controller.cached_lines():
                lines.add(line)
        problems: list[str] = []
        for line in sorted(lines):
            problems.extend(self.check_line(line))
        return problems

    # ------------------------------------------------------------------
    def traffic(self) -> dict[str, int]:
        """Transactions per bus level, for the scaling experiment."""
        local = sum(
            bridge.local_bus._serial for bridge in self.bridges.values()
        )
        return {
            "global_transactions": self.global_bus._serial,
            "local_transactions": local,
        }

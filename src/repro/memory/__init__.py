"""Main-memory substrate (the system's default owner)."""

from repro.memory.main_memory import MainMemory, MemoryStats

__all__ = ["MainMemory", "MemoryStats"]

"""Main (shared) memory: the default owner of every line.

Paper section 3.1.3: "All data is said to be owned uniquely either by one
and only one cache or by main memory; main memory is the default owner."
Memory keeps no consistency state at all -- "shared memory modules will
not need to distinguish valid data from invalid data; instead, caches ...
will keep track of the invalidity of the data that resides in shared
memory."  Accordingly this model is a plain value store plus counters.

The bus engine routes traffic here: reads with no DI responder, writes
with no capturing owner, every broadcast write (the Futurebus updates
memory on broadcasts -- the "extra memory updates" the Dragon section
notes are harmless), and every push.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["MemoryStats", "MainMemory"]


@dataclasses.dataclass
class MemoryStats:
    """Traffic counters for one memory module."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0


class MainMemory:
    """Sparse value store over the line-address space.

    Values are opaque integer tokens (the version numbers the coherence
    checker compares).  Uninitialized lines read as
    ``initial_value`` -- "in the absence of information to the contrary,
    data in shared memory is defined to be valid (e.g. at power-on)".
    """

    def __init__(self, initial_value: int = 0, latency_ns: float = 0.0) -> None:
        self._store: dict[int, int] = {}
        self.initial_value = initial_value
        self.latency_ns = latency_ns
        self.stats = MemoryStats()

    def read(self, address: int) -> int:
        self.stats.reads += 1
        return self._store.get(address, self.initial_value)

    def write(self, address: int, value: int) -> None:
        self.stats.writes += 1
        self._store[address] = value

    def peek(self, address: int) -> int:
        """Inspect without counting (for invariant checks and tests)."""
        return self._store.get(address, self.initial_value)

    def poke(self, address: int, value: int) -> None:
        """Set without counting (test setup)."""
        self._store[address] = value

    def addresses(self) -> tuple[int, ...]:
        """All line addresses ever written."""
        return tuple(sorted(self._store))

    def __len__(self) -> int:
        return len(self._store)

"""Observability (the ``repro.obs`` subsystem): tracing, metrics,
profiling, exporters.

The paper's central claim is behavioural -- any mix of boards picking any
permitted action preserves consistency (section 3.3, Tables 1-2) -- so
*why* a run behaved as it did (which signal lines asserted, which table
cell fired, who intervened with DI) is exactly what this layer makes
visible:

* :mod:`repro.obs.trace` -- the structured trace bus: typed bus/
  transition/DES/mark events with deterministic logical timestamps;
* :mod:`repro.obs.metrics` -- the counters/histograms registry the
  statistics layer sits on;
* :mod:`repro.obs.export` -- JSON-lines and Chrome-trace (Perfetto)
  exporters, the analyzer table and the signal-line waveform renderer;
* :mod:`repro.obs.profile` -- wall-clock profiling of the toolkit's own
  machinery (explorer frontier, fuzz stages, pool fan-outs), kept out of
  the deterministic trace stream;
* :mod:`repro.obs.stream` -- incremental metrics/trace frames for the
  ``repro serve`` wire protocol (chunking + order-checked reassembly).

Everything is zero-overhead when off: producers guard each emission with
a single ``tracer is None`` test.
"""

from repro.obs.export import (
    bus_rows,
    format_trace,
    render_waveforms,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Accumulator,
    Counter,
    Histogram,
    MetricsRegistry,
    system_metrics,
)
from repro.obs.profile import Profiler, ProfileRecord
from repro.obs.stream import metrics_frame, reassemble_trace, trace_frames
from repro.obs.trace import TraceEvent, Tracer, attach_tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "attach_tracer",
    "Counter",
    "Accumulator",
    "Histogram",
    "MetricsRegistry",
    "system_metrics",
    "Profiler",
    "ProfileRecord",
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "bus_rows",
    "format_trace",
    "render_waveforms",
    "metrics_frame",
    "trace_frames",
    "reassemble_trace",
]

"""Trace exporters: JSON-lines, Chrome trace-event format, text waveforms.

Three consumers of one event stream:

* :func:`to_jsonl` -- one JSON object per line, sorted keys, trailing
  newline; byte-stable so CI can diff serial vs parallel captures;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event format (the ``traceEvents`` JSON object) viewable in
  Perfetto or ``chrome://tracing``: bus transactions as duration slices
  per master, protocol transitions and DES activity as instant events;
* :func:`bus_rows` / :func:`format_trace` / :func:`render_waveforms` --
  the text renderers: a bus-analyzer table (shared with
  :mod:`repro.analysis.tracelog`) and a per-signal-line waveform of the
  CA/IM/BC master signals and CH/DI/SL/BS wired-OR responses, the view
  :mod:`examples/futurebus_waveforms.py` prints.

:func:`validate_chrome_trace` is the schema check the CI job runs on
emitted files; it is hand-rolled so the toolkit stays dependency-free.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.trace import TraceEvent

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "bus_rows",
    "format_trace",
    "render_waveforms",
]


EventLike = Union[TraceEvent, dict]


def _as_dicts(events: Iterable[EventLike]) -> list[dict]:
    return [
        event.to_dict() if isinstance(event, TraceEvent) else event
        for event in events
    ]


# ----------------------------------------------------------------------
# JSON-lines.
# ----------------------------------------------------------------------
def to_jsonl(events: Iterable[EventLike]) -> str:
    """One sorted-keys JSON object per line (byte-stable)."""
    lines = [
        json.dumps(data, sort_keys=True, separators=(",", ":"))
        for data in _as_dicts(events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: Union[str, Path], events: Iterable[EventLike]) -> Path:
    path = Path(path)
    path.write_text(to_jsonl(events), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Chrome trace-event format.
# ----------------------------------------------------------------------
def _pid_map(events: list[dict]) -> dict[str, int]:
    pids: dict[str, int] = {}
    for data in events:
        stream = data.get("stream", "run")
        if stream not in pids:
            pids[stream] = len(pids) + 1
    return pids


def to_chrome_trace(
    events: Iterable[EventLike], label: str = "repro"
) -> dict:
    """Render the stream as a Chrome trace-event JSON object.

    Streams become processes, units become threads; ``bus`` events are
    complete slices (``ph: "X"``) whose duration is the transaction's bus
    occupancy, everything else is an instant event (``ph: "i"``).  Logical
    nanoseconds map to trace microseconds.
    """
    events = _as_dicts(events)
    pids = _pid_map(events)
    trace_events: list[dict] = []
    for stream, pid in pids.items():
        trace_events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{label}:{stream}"},
            }
        )
    for data in events:
        pid = pids[data.get("stream", "run")]
        tid = data.get("unit") or "-"
        ts = data["t_ns"] / 1000.0
        kind = data["kind"]
        record = {
            "ph": "i",
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "name": f"{kind}:{data['name']}",
            "cat": kind,
            "s": "t",
            "args": dict(sorted(data.get("args", {}).items())),
        }
        if kind == "bus":
            record["ph"] = "X"
            record.pop("s")
            record["dur"] = data["args"].get("duration_ns", 0.0) / 1000.0
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"tool": "repro.obs", "label": label},
    }


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[EventLike],
    label: str = "repro",
) -> Path:
    """Write the Chrome-trace JSON (deterministic bytes) to ``path``."""
    path = Path(path)
    payload = to_chrome_trace(events, label=label)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )
    return path


_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a Chrome-trace object; returns a list of problems
    (empty when valid).  This is the check the CI trace job runs."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents missing or not a list"]
    for index, record in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = record.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
        if not isinstance(record.get("name"), str):
            problems.append(f"{where}: missing name")
        if "pid" not in record or "tid" not in record:
            problems.append(f"{where}: missing pid/tid")
        if phase in ("X", "i"):
            ts = record.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing ts")
        if phase == "X" and not isinstance(
            record.get("dur"), (int, float)
        ):
            problems.append(f"{where}: X event without dur")
    return problems


# ----------------------------------------------------------------------
# Text renderers.
# ----------------------------------------------------------------------
def bus_rows(events: Iterable[EventLike]) -> list[dict]:
    """Analyzer-style rows for the ``bus`` events of a stream (the shape
    :func:`repro.analysis.tracelog.trace_rows` has always printed)."""
    rows = []
    for data in _as_dicts(events):
        if data["kind"] != "bus":
            continue
        args = data["args"]
        master_signals = ",".join(
            name if args[name] else "~" + name
            for name in ("CA", "IM", "BC")
        )
        responses = ",".join(
            name for name in ("CH", "DI", "SL", "BS") if args[name]
        )
        rows.append(
            {
                "#": args["serial"],
                "master": data["unit"],
                "signals": master_signals,
                "col": args["column"],
                "op": args["op"],
                "line": f"0x{args['address']:x}",
                "responses": responses or "-",
                "supplier": args["supplier"] or "-",
                "connectors": ",".join(args["connectors"]) or "-",
                "retries": args["retries"],
                "ns": round(args["duration_ns"]),
            }
        )
    return rows


def format_trace(
    events: Iterable[EventLike], title: Optional[str] = None
) -> str:
    """One analyzer-style line per bus transaction."""
    from repro.analysis.report import format_rows

    return format_rows(bus_rows(events), title or "Bus transaction trace")


_SIGNALS = ("CA", "IM", "BC", "CH", "DI", "SL", "BS")


def render_waveforms(
    events: Iterable[EventLike], title: Optional[str] = None
) -> str:
    """A per-signal-line text waveform of the consistency lines.

    One column per bus transaction; ``#`` marks an asserted line
    (driven low on the physical open-collector bus), ``.`` a released
    one -- the view a logic analyzer on the backplane would show.
    """
    columns = []
    for data in _as_dicts(events):
        if data["kind"] != "bus":
            continue
        args = data["args"]
        columns.append(
            {
                "serial": args["serial"],
                "master": data["unit"] or "?",
                **{name: bool(args[name]) for name in _SIGNALS},
            }
        )
    lines = [title or "Consistency-line waveform"]
    if not columns:
        lines.append("(no bus transactions)")
        return "\n".join(lines)
    width = max(3, *(len(str(c["serial"])) for c in columns))
    header = "txn  " + " ".join(
        str(c["serial"]).rjust(width) for c in columns
    )
    lines.append(header)
    for name in _SIGNALS:
        marks = " ".join(
            ("#" if c[name] else ".").rjust(width) for c in columns
        )
        bar = "|" if name == "CH" else " "
        lines.append(f"{name:<3}{bar} {marks}")
    masters = " ".join(c["master"][-width:].rjust(width) for c in columns)
    lines.append(f"by   {masters}")
    return "\n".join(lines)

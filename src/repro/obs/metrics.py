"""The metrics registry: counters, accumulators and histograms.

The registry is the single sink the statistics layer sits on
(:class:`repro.system.stats.BusStats` keeps its counters here), mirroring
what the paper's performance discussion (section 5.2) needs measured --
hits by state, interventions, invalidations vs broadcast updates, bus
occupancy, copy-back traffic -- and what "Hybrid Update/Invalidate
Schemes" (PAPERS.md) uses for per-line policy analysis.

Design constraints:

* **cheap when idle** -- a metric is a plain attribute update, no locks,
  no string formatting on the hot path;
* **deterministic** -- snapshots render with sorted keys, so two runs of
  the same workload serialize identically;
* **mergeable** -- :meth:`MetricsRegistry.merge` folds worker snapshots
  into a parent registry in input order (the parallel sweeps use this).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Accumulator",
    "Histogram",
    "MetricsRegistry",
    "system_metrics",
]


@dataclasses.dataclass
class Counter:
    """A monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


@dataclasses.dataclass
class Accumulator:
    """A float total (bus occupancy in ns, elapsed time, ...)."""

    name: str
    total: float = 0.0

    def add(self, amount: float) -> None:
        self.total += amount

    def reset(self) -> None:
        self.total = 0.0


@dataclasses.dataclass
class Histogram:
    """Count/sum/min/max summary of an observed distribution.

    Full bucketing is overkill for the toolkit's metrics; the summary is
    enough for the report tables and stays O(1) per observation.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """A named collection of metrics, addressable by dotted name.

    Metric objects are created on first use and cached, so call sites can
    hold direct references (one attribute update per event) while the
    registry still enumerates everything for snapshots.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters: dict[str, Counter] = {}
        self._accumulators: dict[str, Accumulator] = {}
        self._histograms: dict[str, Histogram] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(self._qualify(name))
        return metric

    def accumulator(self, name: str) -> Accumulator:
        metric = self._accumulators.get(name)
        if metric is None:
            metric = self._accumulators[name] = Accumulator(
                self._qualify(name)
            )
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(self._qualify(name))
        return metric

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for group in (self._counters, self._accumulators, self._histograms):
            for metric in group.values():
                metric.reset()

    def to_dict(self) -> dict:
        """Deterministic snapshot: sorted dotted names -> plain values."""
        snapshot: dict[str, object] = {}
        for name, counter in self._counters.items():
            snapshot[self._qualify(name)] = counter.value
        for name, accumulator in self._accumulators.items():
            snapshot[self._qualify(name)] = round(accumulator.total, 6)
        for name, histogram in self._histograms.items():
            snapshot[self._qualify(name)] = histogram.to_dict()
        return dict(sorted(snapshot.items()))

    def load_dict(self, snapshot: dict) -> None:
        """Restore counters/accumulators from a :meth:`to_dict` snapshot
        (histograms restore their summary fields)."""
        strip = len(self.prefix) + 1 if self.prefix else 0
        for qualified, value in snapshot.items():
            name = qualified[strip:] if strip else qualified
            if isinstance(value, dict):
                histogram = self.histogram(name)
                histogram.count = value.get("count", 0)
                histogram.total = value.get("total", 0.0)
                histogram.min = value.get("min")
                histogram.max = value.get("max")
            elif isinstance(value, float):
                self.accumulator(name).total = value
            else:
                self.counter(name).value = int(value)

    def merge(self, snapshots: Iterable[dict]) -> None:
        """Fold worker snapshots in (adding counters and accumulators,
        merging histogram summaries), in input order."""
        strip = len(self.prefix) + 1 if self.prefix else 0
        for snapshot in snapshots:
            for qualified, value in snapshot.items():
                name = qualified[strip:] if strip else qualified
                if isinstance(value, dict):
                    histogram = self.histogram(name)
                    histogram.count += value.get("count", 0)
                    histogram.total += value.get("total", 0.0)
                    for bound, pick in (("min", min), ("max", max)):
                        incoming = value.get(bound)
                        if incoming is None:
                            continue
                        current = getattr(histogram, bound)
                        setattr(
                            histogram,
                            bound,
                            incoming if current is None
                            else pick(current, incoming),
                        )
                elif isinstance(value, float):
                    self.accumulator(name).add(value)
                else:
                    self.counter(name).inc(int(value))


def system_metrics(system) -> MetricsRegistry:
    """Build the whole-system registry the paper's section 5.2 analysis
    needs, from a :class:`repro.system.system.System` (or any object with
    ``controllers`` and ``bus_stats``).

    Includes the update-vs-invalidate counters ("Hybrid Update/Invalidate
    Schemes"), intervention and copy-back traffic, per-state hit counts,
    and bus occupancy.
    """
    from repro.cache.controller import CacheController

    registry = MetricsRegistry()
    bus = getattr(system, "bus_stats", None)
    if bus is not None:
        registry.merge([bus.to_dict()])
    hits_by_state: dict[str, int] = {}
    totals = {
        "cache.accesses": 0,
        "cache.hits": 0,
        "cache.read_misses": 0,
        "cache.write_misses": 0,
        "cache.write_backs": 0,
        "cache.evictions": 0,
        "cache.invalidations_received": 0,
        "cache.updates_received": 0,
        "cache.interventions_supplied": 0,
        "cache.abort_pushes": 0,
    }
    for board in system.controllers.values():
        stats = board.stats
        totals["cache.accesses"] += stats.accesses
        totals["cache.read_misses"] += stats.read_misses
        totals["cache.write_misses"] += stats.write_misses
        if not isinstance(board, CacheController):
            continue
        totals["cache.hits"] += stats.hits
        totals["cache.write_backs"] += stats.write_backs
        totals["cache.evictions"] += stats.evictions
        totals["cache.invalidations_received"] += stats.invalidations_received
        totals["cache.updates_received"] += stats.updates_received
        totals["cache.interventions_supplied"] += stats.interventions_supplied
        totals["cache.abort_pushes"] += stats.abort_pushes
        for letter, count in stats.hits_by_state.items():
            hits_by_state[letter] = hits_by_state.get(letter, 0) + count
    for name, value in totals.items():
        registry.counter(name).value = value
    for letter in sorted(hits_by_state):
        registry.counter(f"cache.hits_in_state.{letter}").value = (
            hits_by_state[letter]
        )
    return registry

"""Wall-clock profiling hooks for the toolkit's own machinery.

Where :mod:`repro.obs.trace` is deterministic by construction (logical
time only), profiling is inherently wall-clock: how long the explorer
spent expanding its frontier, what each fuzz-campaign stage cost, how a
``parallel_map`` fan-out amortized.  The two concerns are deliberately
separate streams so profile jitter never perturbs trace equivalence
checks.

Producers take an optional :class:`Profiler` and guard with one ``None``
test, the same zero-overhead-when-off discipline as tracing.  Worker
processes return records as dicts; :meth:`Profiler.merge_child` folds
them back in input order, so the *set and order* of profile records is
deterministic even though the timings are not.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from typing import Iterable, Optional

__all__ = ["ProfileRecord", "Profiler"]


@dataclasses.dataclass
class ProfileRecord:
    """One timed region: name, wall seconds, structured metadata."""

    name: str
    wall_s: float
    meta: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileRecord":
        return cls(
            name=data["name"],
            wall_s=data["wall_s"],
            meta=dict(data.get("meta", {})),
        )


class Profiler:
    """Collects :class:`ProfileRecord` entries in emission order."""

    def __init__(self) -> None:
        self.records: list[ProfileRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    @contextmanager
    def region(self, name: str, **meta):
        """Time a ``with`` block; ``meta`` may be extended inside the
        block through the yielded dict."""
        start = time.perf_counter()
        record_meta = dict(meta)
        try:
            yield record_meta
        finally:
            self.records.append(
                ProfileRecord(
                    name=name,
                    wall_s=time.perf_counter() - start,
                    meta=record_meta,
                )
            )

    def add(self, name: str, wall_s: float, **meta) -> None:
        self.records.append(ProfileRecord(name, wall_s, dict(meta)))

    def merge_child(
        self, records: Iterable[dict], prefix: Optional[str] = None
    ) -> None:
        """Fold a worker's exported records in, in input order."""
        for data in records:
            record = ProfileRecord.from_dict(data)
            if prefix:
                record.name = f"{prefix}.{record.name}"
            self.records.append(record)

    def export(self) -> list[dict]:
        return [record.to_dict() for record in self.records]

    def total_s(self, name: Optional[str] = None) -> float:
        return sum(
            r.wall_s for r in self.records if name is None or r.name == name
        )

    def summary_rows(self) -> list[dict]:
        """Aggregated per-name rows for the report printer."""
        order: list[str] = []
        grouped: dict[str, list[ProfileRecord]] = {}
        for record in self.records:
            if record.name not in grouped:
                grouped[record.name] = []
                order.append(record.name)
            grouped[record.name].append(record)
        return [
            {
                "region": name,
                "calls": len(grouped[name]),
                "wall_s": round(sum(r.wall_s for r in grouped[name]), 4),
            }
            for name in order
        ]

"""Incremental observability frames for the serve tier.

A served result can carry a large exported trace (tens of thousands of
events for a long run).  Rather than one giant response line, the
daemon streams the observability payload as *frames* -- small, typed,
newline-delimited JSON objects a client consumes incrementally:

* one ``metrics`` frame (the whole snapshot; metrics are small), then
* ``trace`` frames of at most ``chunk`` events each, sequence-numbered
  and totalled so the client can verify completeness, then
* the final response envelope (which omits the streamed trace).

Framing is pure value transformation -- chunking here, reassembly in
:func:`reassemble_trace` -- so ``reassemble_trace(trace_frames(events))``
round-trips byte-identically and both ends of the wire share one
implementation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

__all__ = [
    "DEFAULT_FRAME_EVENTS",
    "metrics_frame",
    "trace_frames",
    "reassemble_trace",
]

#: Events per trace frame: small enough that a frame is a cheap line,
#: large enough that framing overhead stays negligible.
DEFAULT_FRAME_EVENTS = 256


def metrics_frame(metrics: Optional[dict]) -> dict:
    """The (single) metrics frame for a result's metrics snapshot."""
    return {"frame": "metrics", "metrics": metrics}


def trace_frames(
    events: Iterable[dict], chunk: int = DEFAULT_FRAME_EVENTS
) -> Iterator[dict]:
    """Chunk an exported trace into sequence-numbered frames."""
    events = list(events)
    chunk = max(1, chunk)
    total = -(-len(events) // chunk) if events else 0
    for seq, start in enumerate(range(0, len(events), chunk)):
        yield {
            "frame": "trace",
            "seq": seq,
            "total": total,
            "events": events[start:start + chunk],
        }


def reassemble_trace(frames: Iterable[dict]) -> list:
    """Rebuild the exported trace from its frames (order-checked).

    Raises ``ValueError`` on a gap, duplicate, or short delivery, so a
    truncated stream can never silently pass for a complete trace."""
    events: list = []
    expected: Optional[int] = None
    seen = -1
    for frame in frames:
        if frame.get("frame") != "trace":
            continue
        seq = int(frame["seq"])
        if seq != seen + 1:
            raise ValueError(f"trace frame gap: got seq {seq} after {seen}")
        seen = seq
        total = int(frame["total"])
        if expected is None:
            expected = total
        elif total != expected:
            raise ValueError(
                f"trace frame total changed: {expected} -> {total}"
            )
        events.extend(frame["events"])
    if expected is not None and seen + 1 != expected:
        raise ValueError(
            f"trace incomplete: {seen + 1} of {expected} frames"
        )
    return events

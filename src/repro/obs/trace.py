"""The structured trace bus: typed events from bus, caches and the DES.

Every observable the toolkit produces flows through one :class:`Tracer`
as a :class:`TraceEvent`:

* ``bus`` -- one completed Futurebus transaction, carrying the master's
  CA/IM/BC signals and the wired-OR CH/DI/SL/BS responses, the paper's
  bus-event column, supplier, connectors, retries and duration;
* ``transition`` -- one protocol decision on one board: the
  (state, event, action) table cell that fired, tagged ``local``
  (Table 1) or ``snoop`` (Table 2);
* ``des`` -- discrete-event simulator activity (schedule/fire/retire of
  processor references) with simulated timestamps;
* ``mark`` -- named waypoints (a verification case finishing, a fuzz
  campaign stage) with structured arguments.

Determinism is load-bearing: events carry *logical* time (simulated or
bus-occupancy nanoseconds) and a sequence number -- never wall-clock --
so a traced run is a pure function of its inputs and a parallel run's
merged stream is byte-identical to the serial one.  Wall-clock profiling
lives in :mod:`repro.obs.profile`, deliberately outside this stream.

Zero overhead when off: producers hold ``tracer = None`` and guard every
emission with one attribute test; nothing is formatted, allocated or
dispatched unless a tracer is attached.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

__all__ = ["TraceEvent", "Tracer", "attach_tracer", "bus_event_args"]

#: BusOp -> wire name, filled on first use (importing
#: :mod:`repro.core.actions` at module scope would be circular).
_OP_NAMES: dict = {}


def bus_event_args(txn, result) -> dict:
    """The structured payload for one completed Futurebus transaction.

    Shared by :meth:`Tracer.bus_transaction` and the legacy bus-log
    adapter in :mod:`repro.analysis.tracelog`, so a raw
    ``(Transaction, TransactionResult)`` capture and a traced run
    describe the same transaction with the same fields.
    """
    if not _OP_NAMES:
        from repro.core.actions import BusOp

        _OP_NAMES.update(
            {BusOp.READ: "read", BusOp.WRITE: "write", BusOp.NONE: "addr-only"}
        )
    signals = txn.signals
    aggregate = result.aggregate
    op = _OP_NAMES.get(txn.op) or str(txn.op)
    return {
        "serial": txn.serial,
        "address": txn.address,
        "op": op,
        "CA": signals.ca,
        "IM": signals.im,
        "BC": signals.bc,
        "CH": aggregate.ch,
        "DI": aggregate.di,
        "SL": aggregate.sl,
        "BS": aggregate.bs,
        "column": txn.event.note,
        "supplier": result.supplier,
        "connectors": list(result.connectors),
        "retries": result.retries,
        "duration_ns": round(result.duration_ns, 3),
    }


@dataclasses.dataclass
class TraceEvent:
    """One structured trace record.

    ``t_ns`` is logical time: the tracer's bus-occupancy clock for ``bus``
    and ``transition`` events, simulated time for ``des`` events.  ``seq``
    is the global emission index (total order).  ``stream`` groups events
    from one sub-run (a verification case, one shootout protocol) so
    merged traces stay separable.
    """

    seq: int
    kind: str  # "bus" | "transition" | "des" | "mark"
    name: str
    t_ns: float
    unit: Optional[str] = None
    stream: str = "run"
    args: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "t_ns": self.t_ns,
            "unit": self.unit,
            "stream": self.stream,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            seq=data["seq"],
            kind=data["kind"],
            name=data["name"],
            t_ns=data["t_ns"],
            unit=data.get("unit"),
            stream=data.get("stream", "run"),
            args=dict(data.get("args", {})),
        )


class Tracer:
    """Collects :class:`TraceEvent` records from every instrumented layer.

    The tracer keeps a logical clock fed by bus-transaction durations, so
    untimed (synchronous) runs still render as a meaningful timeline; DES
    events carry their own simulated timestamps.
    """

    enabled = True

    def __init__(self, stream: str = "run") -> None:
        self.stream = stream
        #: Materialized events; emission appends compact tuples to
        #: ``_pending`` instead and defers :class:`TraceEvent`
        #: construction (f-strings, notation rendering, arg dicts,
        #: rounding) to the first read.  The hot path -- one
        #: ``transition`` record per protocol decision, one ``bus``
        #: record per transaction -- becomes a single tuple append.
        self._events: list[TraceEvent] = []
        self._pending: list[tuple] = []
        self.clock_ns = 0.0
        self._seq = 0

    def __len__(self) -> int:
        return self._seq

    @property
    def events(self) -> list[TraceEvent]:
        """The materialized event stream (total order by ``seq``)."""
        if self._pending:
            self._materialize()
        return self._events

    # ------------------------------------------------------------------
    # Emission (compact records; see _materialize for the shapes).
    # ------------------------------------------------------------------
    def bus_transaction(self, txn, result) -> None:
        """Record one completed Futurebus transaction (the hook
        :attr:`repro.bus.futurebus.Futurebus.observer` calls).

        Deferring the encode is safe: the bus never mutates ``txn``
        after the observer call, and ``result`` is frozen."""
        start = self.clock_ns
        self.clock_ns += result.duration_ns
        self._pending.append(("bus", self._seq, start, txn, result))
        self._seq += 1

    def transition(self, unit: str, side: str, state, event, action) -> None:
        """Record one protocol decision: the (state, event, action) cell
        that fired, as the controller trace hooks report it."""
        self._pending.append(
            (
                "transition",
                self._seq,
                self.clock_ns,
                unit,
                side,
                state,
                event,
                action,
            )
        )
        self._seq += 1

    def des(self, name: str, t_ns: float, unit: str, **args) -> None:
        """Record DES activity (``schedule`` / ``fire`` / ``retire``) at
        simulated time ``t_ns``."""
        if t_ns > self.clock_ns:
            self.clock_ns = t_ns
        self._pending.append(("des", self._seq, t_ns, unit, name, args))
        self._seq += 1

    def mark(self, name: str, unit: Optional[str] = None, **args) -> None:
        """Record a named waypoint with structured arguments."""
        self._pending.append(
            ("mark", self._seq, self.clock_ns, unit, name, args)
        )
        self._seq += 1

    def _materialize(self) -> None:
        """Encode pending compact records into :class:`TraceEvent` objects.

        Produces byte-identical events to the former eager encoding:
        same field values, same rounding, same order (``seq`` was
        assigned at emission, interleaving correctly with absorbed
        streams)."""
        events = self._events
        for record in self._pending:
            kind = record[0]
            if kind == "bus":
                _, seq, t_ns, txn, result = record
                events.append(
                    TraceEvent(
                        seq=seq,
                        kind="bus",
                        name=txn.event.name,
                        t_ns=round(t_ns, 3),
                        unit=txn.master,
                        stream=self.stream,
                        args=bus_event_args(txn, result),
                    )
                )
            elif kind == "transition":
                _, seq, t_ns, unit, side, state, event, action = record
                events.append(
                    TraceEvent(
                        seq=seq,
                        kind="transition",
                        name=f"{state.letter}/{event.name}",
                        t_ns=round(t_ns, 3),
                        unit=unit,
                        stream=self.stream,
                        args={
                            "side": side,
                            "state": state.letter,
                            "event": event.name,
                            "action": action.notation(),
                        },
                    )
                )
            elif kind == "absorbed":
                events.append(record[1])
            else:  # "des" | "mark"
                _, seq, t_ns, unit, name, args = record
                events.append(
                    TraceEvent(
                        seq=seq,
                        kind=kind,
                        name=name,
                        t_ns=round(t_ns, 3),
                        unit=unit,
                        stream=self.stream,
                        args=args,
                    )
                )
        self._pending.clear()

    # ------------------------------------------------------------------
    # Merging (serial/parallel equivalence).
    # ------------------------------------------------------------------
    def export(self) -> list[dict]:
        """The event stream as plain dicts (picklable, JSON-able).

        Pending compact records are encoded straight to their dict form;
        the :class:`TraceEvent` hop is only taken for events someone
        already materialized by reading :attr:`events`.  Per-cell name
        strings and per-action notations are cached across the loop --
        a trace has thousands of transition records drawn from at most a
        few dozen distinct table cells."""
        out = [event.to_dict() for event in self._events]
        if not self._pending:
            return out
        stream = self.stream
        cell_names: dict = {}
        notations: dict = {}
        for record in self._pending:
            kind = record[0]
            if kind == "transition":
                _, seq, t_ns, unit, side, state, event, action = record
                cell = (state, event)
                cached = cell_names.get(cell)
                if cached is None:
                    cached = (
                        f"{state.letter}/{event.name}",
                        state.letter,
                        event.name,
                    )
                    cell_names[cell] = cached
                notation = notations.get(id(action))
                if notation is None:
                    notation = action.notation()
                    notations[id(action)] = notation
                out.append(
                    {
                        "seq": seq,
                        "kind": "transition",
                        "name": cached[0],
                        "t_ns": round(t_ns, 3),
                        "unit": unit,
                        "stream": stream,
                        "args": {
                            "side": side,
                            "state": cached[1],
                            "event": cached[2],
                            "action": notation,
                        },
                    }
                )
            elif kind == "bus":
                _, seq, t_ns, txn, result = record
                out.append(
                    {
                        "seq": seq,
                        "kind": "bus",
                        "name": txn.event.name,
                        "t_ns": round(t_ns, 3),
                        "unit": txn.master,
                        "stream": stream,
                        "args": bus_event_args(txn, result),
                    }
                )
            elif kind == "absorbed":
                out.append(record[1].to_dict())
            else:  # "des" | "mark"
                _, seq, t_ns, unit, name, args = record
                out.append(
                    {
                        "seq": seq,
                        "kind": kind,
                        "name": name,
                        "t_ns": round(t_ns, 3),
                        "unit": unit,
                        "stream": stream,
                        "args": args,
                    }
                )
        return out

    def absorb(
        self, events: Iterable[dict], stream: Optional[str] = None
    ) -> None:
        """Fold a child tracer's exported stream into this one.

        Sequence numbers are reassigned in arrival order and the child's
        logical times are kept verbatim, so absorbing per-case streams in
        input order yields the same bytes whether the children ran
        serially in-process or on a worker pool.
        """
        for data in events:
            event = TraceEvent.from_dict(data)
            if stream is not None:
                event.stream = stream
            event.seq = self._seq
            self._seq += 1
            self._pending.append(("absorbed", event))


def attach_tracer(system, tracer: Optional[Tracer]) -> None:
    """Wire ``tracer`` into a System or HierarchicalSystem: the bus-level
    transaction observer plus every controller's transition trace hook.
    Pass ``None`` to detach."""
    hook = None if tracer is None else tracer.bus_transaction
    transition = None if tracer is None else tracer.transition
    for attr in ("bus", "global_bus"):
        bus = getattr(system, attr, None)
        if bus is not None:
            bus.observer = hook
    bridges = getattr(system, "bridges", None)
    if bridges:
        for bridge in bridges.values():
            bridge.local_bus.observer = hook
    for board in system.controllers.values():
        board.trace_observer = transition

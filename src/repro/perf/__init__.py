"""Parallel execution layer: fan embarrassingly parallel work (the E1
verification matrix, the Arch85-style DES sweeps, the bench suite) out
across worker processes.

The ROADMAP's north star is a system that runs as fast as the hardware
allows; both heavy artifacts -- exhaustive model checking of every
protocol mix and the multi-protocol timed-simulation sweeps -- are
embarrassingly parallel across cases.  This package provides:

* :mod:`repro.perf.pool` -- :func:`parallel_map`: a deterministic
  process-pool map with per-task timeouts and graceful serial fallback;
* :mod:`repro.perf.engine` -- the warm persistent worker pool behind it,
  with chunked batch scheduling (started lazily, reused across calls);
* :mod:`repro.perf.matrix` -- the verification matrix across workers,
  byte-identical rows to the serial path;
* :mod:`repro.perf.sweeps` -- the DES experiment sweeps across workers;
* :mod:`repro.perf.batch` -- the struct-of-arrays batch kernel: N
  independent systems as parallel integer arrays over the compiled
  transition tables (numpy or pure-Python ``array`` backend);
* :mod:`repro.perf.bench` -- the ``repro bench`` suite: serial-vs-parallel
  wall time, explorer states/sec, batch-kernel throughput, written to
  ``BENCH_perf.json``.
"""

from repro.perf.batch import (
    BatchGeometry,
    BatchPopulation,
    BatchResult,
    NotBatchableError,
    available_backends,
    batchable_specs,
    default_backend,
    make_synthetic_population,
    run_population,
    verify_rows,
)
from repro.perf.bench import run_bench_suite, write_bench_json
from repro.perf.engine import pool_stats, run_chunked, shutdown_pool
from repro.perf.matrix import run_batch_matrix, run_matrix_parallel
from repro.perf.pool import (
    ParallelConfig,
    ParallelTimeoutError,
    parallel_map,
    resolve_workers,
)
from repro.perf.sweeps import (
    batch_protocol_sweep,
    protocol_comparison_parallel,
    update_vs_invalidate_parallel,
)

__all__ = [
    "ParallelConfig",
    "ParallelTimeoutError",
    "parallel_map",
    "resolve_workers",
    "run_matrix_parallel",
    "run_batch_matrix",
    "protocol_comparison_parallel",
    "update_vs_invalidate_parallel",
    "batch_protocol_sweep",
    "BatchGeometry",
    "BatchPopulation",
    "BatchResult",
    "NotBatchableError",
    "available_backends",
    "batchable_specs",
    "default_backend",
    "make_synthetic_population",
    "run_population",
    "verify_rows",
    "run_bench_suite",
    "write_bench_json",
    "pool_stats",
    "run_chunked",
    "shutdown_pool",
]

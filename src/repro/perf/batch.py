"""Struct-of-arrays batch simulation kernel over the lowered tables.

One object-graph :class:`repro.system.system.System` steps a few tens of
thousands of transitions per second; population-scale studies (parameter
sweeps, fuzz campaigns, the service-discipline comparisons the ROADMAP
cites) need orders of magnitude more.  This module runs N *independent*
systems as parallel integer arrays -- one row per system, flat columns
for per-line state codes, tags, values, and replacement ranks -- and
steps every row through the integer records of
:func:`repro.core.transitions.lower_batch_tables`.

Two backends, selected at import and identical in output:

* ``"numpy"`` -- time-major stepping where each step **plans** every
  row's event in temporaries (lookup, local record, snoop aggregation
  as OR/sum reductions, data phase, allocation and LRU-rank movement)
  and then **commits** the plan column-wise for every row it fully
  covers: silent hits, misses with line fills, evictions (silent and
  write-back), flush/pass pushes, and non-caching bus traffic.  Rows
  whose event needs semantics the planner does not model -- busy-abort
  retries, read-then-write chaining, crash taxonomy -- are *diverted*
  untouched to the scalar interpreter *on the same arrays*, so the
  vector path can never diverge.  The per-step diverted fraction is
  reported as ``BatchResult.scalar_events``.
* ``"python"`` -- the scalar interpreter over ``array('q')`` columns,
  dependency-free.

Populations may be geometry-heterogeneous: ``BatchPopulation.geometries``
gives each row its own set/way/linesize shape, padded to the population
envelope so one kernel invocation covers a mixed-geometry sweep (padded
ways hold a rank sentinel and stay invalid, so they can never match or
win a replacement choice).

The scalar interpreter replicates the object engine's semantics exactly
-- pending snoop slots keyed by bus serial, abort-push nesting, the raw
``BC`` broadcast rule of the data phase, version-counter ordering, LRU
rank movement, and the fuzz runner's skip (``IllegalTransitionError``)
versus crash (``AssertionError``/``RuntimeError``/``BusLivelockError``)
taxonomy.  The object engine stays the oracle: :func:`replay_row` runs
any row through a real :class:`System` and returns the same snapshot
shape, and :func:`verify_rows` diffs the two byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import random
from array import array
from typing import Optional, Sequence

from repro.core.transitions import (
    BatchTables,
    bus_event_code_table,
    lower_batch_tables,
)
from repro.protocols.registry import make_protocol

try:  # the [perf] optional extra; the kernel runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

__all__ = [
    "BatchGeometry",
    "BatchPopulation",
    "BatchResult",
    "NotBatchableError",
    "EVENT_KIND_CODES",
    "available_backends",
    "batchable_specs",
    "default_backend",
    "envelope_geometry",
    "lower_units",
    "make_synthetic_population",
    "run_population",
    "run_batch_specs",
    "replay_row",
    "verify_rows",
]

#: Event kind codes used in population schedules (matches the fuzz
#: scenario kinds; flush/pass double as replacement traffic).
EVENT_KIND_CODES = {"read": 0, "write": 1, "flush": 2, "pass": 3}

_K_READ, _K_WRITE, _K_FLUSH, _K_PASS = 0, 1, 2, 3
_INVALID = 4  # LineState.INVALID.code
_STATE_LETTERS = "MOESI"
_MAX_RETRIES = 8  # Futurebus.max_retries


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, fastest first."""
    return ("numpy", "python") if _np is not None else ("python",)


def default_backend() -> str:
    """The backend :func:`run_population` picks when none is given."""
    return available_backends()[0]


class NotBatchableError(ValueError):
    """A population names a protocol the lowering cannot handle (seeded
    random / round-robin selection); callers fall back to the object
    engine for those rows."""


@dataclasses.dataclass(frozen=True)
class BatchGeometry:
    """Cache geometry shared by every row of a population."""

    num_sets: int = 4
    associativity: int = 2
    line_size: int = 32
    lines: int = 8  # distinct line addresses the schedules touch


@dataclasses.dataclass
class BatchPopulation:
    """N independent systems sharing one board mix.

    ``events`` holds one schedule per row: a sequence of
    ``(unit_index, kind_code, line_address)`` triples (kind codes per
    :data:`EVENT_KIND_CODES`; line addresses in line units, matching the
    fuzz scenarios' ``line * line_size`` byte addressing).

    ``geometry`` is the population envelope (the kernel's array strides).
    A homogeneous population leaves ``geometries`` as ``None``; a padded
    heterogeneous one supplies one :class:`BatchGeometry` per row, each
    dimension no larger than the envelope's.
    """

    units: tuple[str, ...]
    geometry: BatchGeometry
    events: list
    row_ids: tuple = ()
    geometries: Optional[tuple] = None

    @property
    def rows(self) -> int:
        return len(self.events)

    def geometry_for(self, row: int) -> BatchGeometry:
        """The geometry row ``row`` actually simulates (its envelope
        slice; equal to ``geometry`` for homogeneous populations)."""
        if self.geometries is None:
            return self.geometry
        return self.geometries[row]


def envelope_geometry(geometries: Sequence[BatchGeometry]) -> BatchGeometry:
    """Smallest :class:`BatchGeometry` covering every given one -- the
    padded strides for a heterogeneous population."""
    return BatchGeometry(
        num_sets=max(g.num_sets for g in geometries),
        associativity=max(g.associativity for g in geometries),
        line_size=max(g.line_size for g in geometries),
        lines=max(g.lines for g in geometries),
    )


@dataclasses.dataclass
class BatchResult:
    """Outcome of one kernel run over a population."""

    backend: str
    rows: int
    events: int  # scheduled events attempted (crashed rows stop early)
    transitions: int  # successful table consults, local + snoop
    snapshots: list  # one dict per row (see _Kernel.snapshot_row)
    #: Events the numpy backend diverted to the scalar interpreter
    #: (busy-abort retries, read-then-write chains, crash paths); the
    #: python backend counts every event here.
    scalar_events: int = 0
    #: Events the numpy backend committed column-wise.
    vector_events: int = 0
    #: Per-row accounting (events attempted / successful table consults
    #: for each row) -- what lets a coalesced population de-multiplex
    #: into per-spec reports without re-running anything.
    row_events: tuple = ()
    row_transitions: tuple = ()

    @property
    def scalar_residual(self) -> float:
        """Fraction of attempted events that fell through to the scalar
        interpreter -- the vectorization-coverage metric."""
        return self.scalar_events / self.events if self.events else 0.0


_LOWERED: dict[str, Optional[BatchTables]] = {}


def _lower_spec(spec: str) -> Optional[BatchTables]:
    """Cache-miss path for one registry spec.  With
    ``REPRO_SHARED_TABLES`` set, lowering is served from the
    process-wide shared-memory segment (:mod:`repro.perf.shared`) so the
    packed round trip covers every table the kernel ever uses; otherwise
    the protocol is probed directly."""
    import os

    if os.environ.get("REPRO_SHARED_TABLES"):
        from repro.perf.shared import process_tables

        shared = process_tables()
        if spec in shared:
            return shared[spec]
    return lower_batch_tables(make_protocol(spec))


def lower_units(units: Sequence[str]) -> list:
    """Lower each registry spec to :class:`BatchTables`; raises
    :class:`NotBatchableError` naming the first spec that cannot be."""
    tables = []
    for spec in units:
        if spec not in _LOWERED:
            _LOWERED[spec] = _lower_spec(spec)
        lowered = _LOWERED[spec]
        if lowered is None:
            raise NotBatchableError(
                f"protocol {spec!r} selects actions statefully and cannot "
                "be lowered to batch tables; use the object engine"
            )
        tables.append(lowered)
    return tables


def batchable_specs() -> tuple[str, ...]:
    """Registry names whose protocols lower to batch tables, in registry
    order (the stateful selectors -- seeded random, round-robin -- are
    excluded and stay on the object engine)."""
    from repro.protocols.registry import protocol_names

    names = []
    for spec in protocol_names():
        if spec not in _LOWERED:
            _LOWERED[spec] = _lower_spec(spec)
        if _LOWERED[spec] is not None:
            names.append(spec)
    return tuple(names)


# ---------------------------------------------------------------------------
# Internal control flow: the fuzz runner's taxonomy as exceptions.
# ---------------------------------------------------------------------------
class _Illegal(Exception):
    """IllegalTransitionError equivalent: the event is skipped (partial
    effects persist, exactly like the object engine)."""


class _RowCrash(Exception):
    """AssertionError / RuntimeError / BusLivelockError equivalent: the
    row records ``(step, type_name)`` and stops."""

    def __init__(self, type_name: str) -> None:
        super().__init__(type_name)
        self.type_name = type_name


class _Kernel:
    """The struct-of-arrays interpreter (both backends).

    Flat layout: line slot ``(r, u, set, way)`` lives at index
    ``((r*U + u)*S + set)*W + way`` of ``st``/``tg``/``val``/``rk``;
    memory word ``(r, la)`` at ``r*L + la``.
    """

    def __init__(self, pop: BatchPopulation, tables, backend: str) -> None:
        g = pop.geometry
        self.pop = pop
        self.backend = backend
        self.S = g.num_sets  # array strides: the population envelope
        self.W = g.associativity
        self.L = g.lines
        self.U = len(pop.units)
        self.R = pop.rows
        self.tables = tables
        self.non_caching = [t.non_caching for t in tables]
        self.cached_units = [
            u for u in range(self.U) if not self.non_caching[u]
        ]
        self.bus_code = bus_event_code_table()
        # Per-row simulated geometry (== the envelope when homogeneous).
        if pop.geometries is None:
            self.hetero = False
            self.S_r = [self.S] * self.R
            self.W_r = [self.W] * self.R
            self.L_r = [self.L] * self.R
        else:
            if len(pop.geometries) != self.R:
                raise ValueError(
                    f"geometries has {len(pop.geometries)} entries for "
                    f"{self.R} rows"
                )
            for row_g in pop.geometries:
                if (
                    row_g.num_sets > self.S
                    or row_g.associativity > self.W
                    or row_g.lines > self.L
                ):
                    raise ValueError(
                        f"row geometry {row_g} exceeds envelope {g}"
                    )
            self.S_r = [rg.num_sets for rg in pop.geometries]
            self.W_r = [rg.associativity for rg in pop.geometries]
            self.L_r = [rg.lines for rg in pop.geometries]
            self.hetero = (
                any(s != self.S for s in self.S_r)
                or any(w != self.W for w in self.W_r)
                or any(n != self.L for n in self.L_r)
            )
        n_slots = self.R * self.U * self.S * self.W
        n_words = self.R * self.L
        if self.hetero:
            # Padded ways carry the sentinel rank W (the envelope width):
            # strictly above any live rank, so a pad never looks recently
            # used and _touch's shift-up never moves it.
            rank_pattern = []
            for r in range(self.R):
                row_w = self.W_r[r]
                row_pat = [
                    w if w < row_w else self.W for w in range(self.W)
                ]
                rank_pattern.extend(row_pat * (self.U * self.S))
        else:
            rank_pattern = list(range(self.W)) * (
                n_slots // max(self.W, 1)
            )
        if backend == "numpy":
            z = lambda n: _np.zeros(n, dtype=_np.int64)  # noqa: E731
            self.st = _np.full(n_slots, _INVALID, dtype=_np.int64)
            self.tg = z(n_slots)
            self.val = z(n_slots)
            self.rk = _np.array(rank_pattern, dtype=_np.int64)
            self.mem = z(n_words)
            self.lastv = z(n_words)
            self.vctr = z(self.R)
            self.serial = z(self.R)
            self.bus_txns = z(self.R)
            self.tr = z(self.R)
            max_events = max((len(e) for e in pop.events), default=0)
            self.tokens_buf = z((self.R, max(max_events, 1)))
            self.tok_n = z(self.R)
        else:
            self.st = array("q", [_INVALID]) * n_slots
            self.tg = array("q", [0]) * n_slots
            self.val = array("q", [0]) * n_slots
            self.rk = array("q", rank_pattern)
            self.mem = array("q", [0]) * n_words
            self.lastv = array("q", [0]) * n_words
            self.vctr = array("q", [0]) * self.R
            self.serial = array("q", [0]) * self.R
            self.bus_txns = array("q", [0]) * self.R
            self.tr = array("q", [0]) * self.R
            self.tokens = [[] for _ in range(self.R)]
        #: Per-row, per-unit pending snoop slot: ``(serial, idx, record)``.
        self.pend = [[None] * self.U for _ in range(self.R)]
        self.crash = [None] * self.R
        #: Aggregate of the per-row ``tr`` counters, folded after run().
        self.transitions = 0
        self.events_attempted = 0
        self.scalar_events = 0
        self.vector_events = 0

    # -- shared scalar helpers -----------------------------------------
    def _base(self, r: int, u: int, set_index: int) -> int:
        return ((r * self.U + u) * self.S + set_index) * self.W

    def _lookup(self, r: int, u: int, la: int):
        """First way holding a valid copy of ``la`` (the cache's scan
        order), as ``(set_index, way, flat_index)``; None on miss.
        Padded ways stay INVALID forever, so scanning the envelope width
        is safe for heterogeneous rows."""
        tag, set_index = divmod(la, self.S_r[r])
        base = self._base(r, u, set_index)
        st, tg = self.st, self.tg
        for way in range(self.W):
            i = base + way
            if tg[i] == tag and st[i] != _INVALID:
                return set_index, way, i
        return None

    def _touch(self, r: int, u: int, set_index: int, way: int) -> None:
        """LRU move-to-front: ranks below the touched way's shift up."""
        rk = self.rk
        base = self._base(r, u, set_index)
        old = rk[base + way]
        for w in range(self.W):
            i = base + w
            if rk[i] < old:
                rk[i] += 1
        rk[base + way] = 0

    def _emit_token(self, r: int, token) -> None:
        if self.backend == "numpy":
            self.tokens_buf[r, self.tok_n[r]] = token
            self.tok_n[r] += 1
        else:
            self.tokens[r].append(int(token))

    # -- the bus (Futurebus.execute + _data_phase) ---------------------
    def _snoop(self, r: int, u: int, la: int, ev_code: int, txn_serial: int):
        """One snooper's address-phase response; sets the pending slot on
        a hit (without clearing it on a miss, like the object engine)."""
        found = self._lookup(r, u, la)
        if found is None:
            return 0, 0, 0, 0
        i = found[2]
        rec = self.tables[u].snoop[self.st[i] * 6 + ev_code]
        if rec is None:
            raise _RowCrash("ProtocolGapError")
        self.tr[r] += 1
        self.pend[r][u] = (txn_serial, i, rec)
        return rec[2], rec[3], rec[4], rec[5]

    def _abort_push(self, r: int, u: int, la: int, txn_serial: int) -> None:
        pend_row = self.pend[r]
        p = pend_row[u]
        if p is None or p[0] != txn_serial or not p[2][6]:
            # abort_push's asserts: pending must match and carry a push.
            raise _RowCrash("AssertionError")
        pend_row[u] = None
        rec = p[2]
        self._execute(r, u, la, rec[7], rec[8], rec[9], 2, self.val[p[1]])
        self.st[p[1]] = rec[1]  # next state resolved with CH unasserted

    def _execute(self, r, master_u, la, ca, im, bc, op, wire):
        """One bus transaction to completion; returns ``(value, agg_ch)``
        (``value`` only meaningful for ``op == READ``)."""
        self.serial[r] += 1
        txn_serial = int(self.serial[r])
        bc_eff = 1 if (bc and im) else 0
        ev_code = self.bus_code[ca * 4 + im * 2 + bc_eff]
        snoopers = [u for u in self.cached_units if u != master_u]
        pend_row = self.pend[r]
        retries = 0
        while True:
            resp = [
                self._snoop(r, u, la, ev_code, txn_serial) for u in snoopers
            ]
            agg_ch = agg_bs = 0
            for bits in resp:
                agg_ch |= bits[0]
                agg_bs |= bits[3]
            if agg_bs:
                if retries >= _MAX_RETRIES:
                    raise _RowCrash("BusLivelockError")
                pushers = [
                    u for u, bits in zip(snoopers, resp) if bits[3]
                ]
                for u in snoopers:
                    if u not in pushers:
                        p = pend_row[u]
                        if p is not None and p[0] == txn_serial:
                            pend_row[u] = None
                for u in pushers:
                    self._abort_push(r, u, la, txn_serial)
                retries += 1
                continue
            break

        # Data phase (raw BC decides the broadcast branch, as on the bus).
        di_units = [u for u, bits in zip(snoopers, resp) if bits[1]]
        sl_units = [u for u, bits in zip(snoopers, resp) if bits[2]]
        if len(di_units) > 1:
            raise _RowCrash("RuntimeError")
        value = None
        word = r * self.L + la
        if op == 1:  # READ
            if di_units:
                p = pend_row[di_units[0]]
                if p is None or p[0] != txn_serial:
                    raise _RowCrash("AssertionError")  # supply_data assert
                value = self.val[p[1]]
            else:
                value = self.mem[word]
        elif op == 2:  # WRITE
            if bc or sl_units:
                self.mem[word] = wire
                for u in sl_units:
                    p = pend_row[u]
                    if p is None or p[0] != txn_serial:
                        raise _RowCrash("AssertionError")  # connect assert
                    self.val[p[1]] = wire
                if di_units:
                    raise _RowCrash("RuntimeError")  # DI on broadcast
            elif di_units:
                p = pend_row[di_units[0]]
                if p is None or p[0] != txn_serial:
                    raise _RowCrash("AssertionError")  # capture assert
                self.val[p[1]] = wire  # owner captures; memory stays stale
            else:
                self.mem[word] = wire
        # op == 0: address-only, no data moves.

        st = self.st
        for u in snoopers:  # finalize, attach order
            p = pend_row[u]
            if p is not None and p[0] == txn_serial:
                pend_row[u] = None
                st[p[1]] = p[2][0] if agg_ch else p[2][1]
        self.bus_txns[r] += 1
        return value, agg_ch

    # -- local actions (CacheController) -------------------------------
    def _run_local_action(self, r, u, la, ev, rec, new_value):
        found = self._lookup(r, u, la)
        idx = found[2] if found else None
        ns_ch, ns_nch, ca, im, bc, op = rec
        if op == 3:
            return self._read_then_write(r, u, la, rec, new_value)
        if op == 0 and not ca and not im:  # silent
            if idx is None:
                if ns_nch < _INVALID:
                    raise _RowCrash("AssertionError")
                return new_value if new_value is not None else 0
            if ns_nch < _INVALID:
                self.st[idx] = ns_nch
                if ev == 1:
                    self.val[idx] = new_value
            else:
                self.st[idx] = _INVALID
            return self.val[idx]
        wire = None
        if op == 2:
            if ev == 1:
                wire = new_value
            else:
                if idx is None:  # PASS/FLUSH push needs a cached line
                    raise _RowCrash("AssertionError")
                wire = self.val[idx]
        value, agg_ch = self._execute(r, u, la, ca, im, bc, op, wire)
        resolved = ns_ch if agg_ch else ns_nch
        if ev == 1:
            token = new_value
        elif op == 1:
            if value is None:
                raise _RowCrash("AssertionError")
            token = value
        else:
            token = self.val[idx] if idx is not None else 0
        if resolved < _INVALID:
            if idx is None:
                self._install(r, u, la, resolved, token)
            else:
                self.st[idx] = resolved
                self.val[idx] = token
        elif idx is not None:
            self.st[idx] = _INVALID
        return token

    def _read_then_write(self, r, u, la, rec, new_value):
        ns_ch, ns_nch, ca, im, bc, _op = rec
        value, agg_ch = self._execute(r, u, la, ca, im, bc, 1, None)
        landed = ns_ch if agg_ch else ns_nch
        if value is None:
            raise _RowCrash("AssertionError")
        if landed < _INVALID:
            self._install(r, u, la, landed, value)
        wrec = self.tables[u].local[landed * 4 + 1]
        if wrec is None:
            raise _Illegal()  # propagates: the read's effects persist
        self.tr[r] += 1
        if wrec[5] == 3:
            raise _RowCrash("AssertionError")  # Read>Write may not chain
        return self._run_local_action(r, u, la, 1, wrec, new_value)

    def _install(self, r, u, la, state_code, value):
        row_s, row_w = self.S_r[r], self.W_r[r]
        tag, set_index = divmod(la, row_s)
        base = self._base(r, u, set_index)
        st, rk = self.st, self.rk
        way = -1
        for w in range(row_w):  # first invalid way wins (pads excluded)
            if st[base + w] == _INVALID:
                way = w
                break
        if way < 0:
            best = -1
            for w in range(row_w):  # else the LRU victim (max rank)
                if rk[base + w] > best:
                    best = rk[base + w]
                    way = w
            victim_la = int(self.tg[base + way]) * row_s + set_index
            self._evict(r, u, base + way, victim_la)
        i = base + way
        self.tg[i] = tag
        self.st[i] = state_code
        self.val[i] = value
        self._touch(r, u, set_index, way)

    def _evict(self, r, u, idx, victim_la):
        rec = self.tables[u].local[self.st[idx] * 4 + 3]  # FLUSH
        if rec is None:
            raise _Illegal()  # propagates out of the whole event
        self.tr[r] += 1
        self._run_local_action(r, u, victim_la, 3, rec, None)

    # -- processor port -------------------------------------------------
    def _proc_read(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is not None:
            set_index, way, i = found
            rec = self.tables[u].local[self.st[i] * 4]
            if rec is None:
                raise _Illegal()
            self.tr[r] += 1
            if rec[5] != 0 or rec[2] or rec[3]:  # hit must be silent
                raise _RowCrash("AssertionError")
            self.st[i] = rec[1]
            self._touch(r, u, set_index, way)
            return self.val[i]
        rec = self.tables[u].local[_INVALID * 4]
        if rec is None:
            raise _Illegal()
        self.tr[r] += 1
        return self._run_local_action(r, u, la, 0, rec, None)

    def _proc_write(self, r, u, la, token):
        found = self._lookup(r, u, la)
        if found is not None:
            set_index, way, i = found
            rec = self.tables[u].local[self.st[i] * 4 + 1]
            if rec is None:
                raise _Illegal()
            self.tr[r] += 1
            self._run_local_action(r, u, la, 1, rec, token)
            # The object engine touches the lookup-time coordinates even
            # if the action moved the line; replicated as-is.
            self._touch(r, u, set_index, way)
            return
        rec = self.tables[u].local[_INVALID * 4 + 1]
        if rec is None:
            raise _Illegal()
        self.tr[r] += 1
        self._run_local_action(r, u, la, 1, rec, token)

    def _nc_read(self, r, u, la):
        rec = self.tables[u].local[_INVALID * 4]
        if rec is None:
            raise _Illegal()
        self.tr[r] += 1
        # A non-caching master always issues a bus READ with the cell's
        # signals, whatever the cell's op says.
        value, _ = self._execute(r, u, la, rec[2], rec[3], rec[4], 1, None)
        if value is None:
            raise _RowCrash("AssertionError")
        return value

    def _nc_write(self, r, u, la, token):
        rec = self.tables[u].local[_INVALID * 4 + 1]
        if rec is None:
            raise _Illegal()
        self.tr[r] += 1
        self._execute(r, u, la, rec[2], rec[3], rec[4], 2, token)

    def _flush_line(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is None:
            return
        self._evict(r, u, found[2], la)

    def _clean_line(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is None:
            return
        rec = self.tables[u].local[self.st[found[2]] * 4 + 2]  # PASS
        if rec is None:
            return  # clean states have no PASS entry: caught internally
        self.tr[r] += 1
        self._run_local_action(r, u, la, 2, rec, None)

    # -- one scheduled event --------------------------------------------
    def step_event(self, r, unit, kind, la):
        try:
            if kind == _K_READ:
                if self.non_caching[unit]:
                    token = self._nc_read(r, unit, la)
                else:
                    token = self._proc_read(r, unit, la)
                self._emit_token(r, token)
            elif kind == _K_WRITE:
                # System.write allocates the version token *before* the
                # controller runs; a skipped event still burns a token.
                self.vctr[r] += 1
                token = int(self.vctr[r])
                if self.non_caching[unit]:
                    self._nc_write(r, unit, la, token)
                else:
                    self._proc_write(r, unit, la, token)
                self.lastv[r * self.L + la] = token
            elif self.non_caching[unit]:
                return  # replacement traffic skips cacheless boards
            elif kind == _K_FLUSH:
                self._flush_line(r, unit, la)
            else:
                self._clean_line(r, unit, la)
        except _Illegal:
            return  # inapplicable event: skip, partial effects persist

    # -- drivers ---------------------------------------------------------
    def run(self) -> None:
        if self.backend == "numpy":
            self._run_numpy()
            self.transitions = int(self.tr.sum())
        else:
            self._run_python()
            self.transitions = sum(self.tr)

    def row_events(self) -> tuple:
        """Scheduled events each row attempted (crashed rows stop at the
        crash step; partial steps are impossible)."""
        return tuple(
            self.crash[r][0] + 1
            if self.crash[r] is not None
            else len(self.pop.events[r])
            for r in range(self.R)
        )

    def _run_python(self) -> None:
        for r in range(self.R):
            for step, (unit, kind, la) in enumerate(self.pop.events[r]):
                self.events_attempted += 1
                try:
                    self.step_event(r, unit, kind, la)
                except _RowCrash as exc:
                    self.crash[r] = (step, exc.type_name)
                    break
        self.scalar_events = self.events_attempted

    def _np_local_columns(self):
        """Flatten the local tables into per-(unit, state, event) columns
        plus a 4-way classification: 0 illegal, 1 silent, 2 bus, 3
        read-then-write.  Non-caching cells always classify as bus (the
        master ignores the cell's op and issues the event's kind)."""
        np = _np
        n = self.U * 20
        cols = {
            name: np.zeros(n, dtype=np.int64)
            for name in ("cls", "ns_ch", "ns_nch", "ca", "im", "bc", "op")
        }
        for u in range(self.U):
            table = self.tables[u]
            for cell in range(20):
                rec = table.local[cell]
                if rec is None:
                    continue
                i = u * 20 + cell
                ns_ch, ns_nch, ca, im, bc, op = rec
                cols["ns_ch"][i] = ns_ch
                cols["ns_nch"][i] = ns_nch
                cols["ca"][i] = ca
                cols["im"][i] = im
                cols["bc"][i] = bc
                cols["op"][i] = op
                if op == 3:
                    cols["cls"][i] = 3
                elif op == 0 and not ca and not im:
                    cols["cls"][i] = 2 if table.non_caching else 1
                else:
                    cols["cls"][i] = 2
        return cols

    def _np_snoop_columns(self):
        """Flatten the snoop tables into per-(unit, state, bus-event)
        signal columns (non-caching units never snoop; left illegal)."""
        np = _np
        n = self.U * 30
        leg = np.zeros(n, dtype=bool)
        ns_ch = np.zeros(n, dtype=np.int64)
        ns_nch = np.zeros(n, dtype=np.int64)
        flags = {
            name: np.zeros(n, dtype=bool) for name in ("ch", "di", "sl", "bs")
        }
        for u in self.cached_units:
            table = self.tables[u]
            for cell in range(30):
                rec = table.snoop[cell]
                if rec is None:
                    continue
                i = u * 30 + cell
                leg[i] = True
                ns_ch[i] = rec[0]
                ns_nch[i] = rec[1]
                flags["ch"][i] = bool(rec[2])
                flags["di"][i] = bool(rec[3])
                flags["sl"][i] = bool(rec[4])
                flags["bs"][i] = bool(rec[5])
        return leg, ns_ch, ns_nch, flags

    def _run_numpy(self) -> None:
        np = _np
        R, U = self.R, self.U
        Sm, Wm, Lm = self.S, self.W, self.L
        max_events = max((len(e) for e in self.pop.events), default=0)
        if max_events == 0:
            return
        n_ev = np.array(
            [len(e) for e in self.pop.events], dtype=np.int64
        )
        evs = np.zeros((R, max_events, 3), dtype=np.int64)
        for r, schedule in enumerate(self.pop.events):
            if schedule:
                evs[r, : len(schedule)] = schedule
        # Time-major event columns: one contiguous slice per step.
        evu = np.ascontiguousarray(evs[:, :, 0].T)
        evk = np.ascontiguousarray(evs[:, :, 1].T)
        evl = np.ascontiguousarray(evs[:, :, 2].T)
        del evs

        local = self._np_local_columns()
        l_cls, l_op = local["cls"], local["op"]
        l_ns_ch, l_ns_nch = local["ns_ch"], local["ns_nch"]
        l_ca, l_im, l_bc = local["ca"], local["im"], local["bc"]
        s_leg, s_ns_ch, s_ns_nch, s_flags = self._np_snoop_columns()
        s_ch, s_di = s_flags["ch"], s_flags["di"]
        s_sl, s_bs = s_flags["sl"], s_flags["bs"]

        # Local-event codes per schedule kind: read/write map through,
        # flush consults the FLUSH column (3), pass the PASS column (2).
        ev2local = np.array([0, 1, 3, 2], dtype=np.int64)
        unit_cached = np.array(
            [not nc for nc in self.non_caching], dtype=bool
        )
        buscode = np.array(self.bus_code, dtype=np.int64)
        hetero = self.hetero
        S_arr = np.array(self.S_r, dtype=np.int64)
        W_arr = np.array(self.W_r, dtype=np.int64)
        w_range = np.arange(Wm, dtype=np.int64)
        st, tg, val, rk = self.st, self.tg, self.val, self.rk
        mem, lastv, vctr = self.mem, self.lastv, self.vctr
        # One cache set per matrix row: flat index // Wm.
        st_mat = st.reshape(-1, Wm)
        tg_mat = tg.reshape(-1, Wm)
        rk_mat = rk.reshape(-1, Wm)
        tokens_flat = self.tokens_buf.reshape(-1)
        max_tok = self.tokens_buf.shape[1]
        tok_n = self.tok_n
        crash = self.crash
        snoop_units = self.cached_units
        alive = np.ones(R, dtype=bool)
        row_index = np.arange(R, dtype=np.int64)
        rowoff = row_index * (U * Sm)

        def snoop_plan(base_s, s_stride, master_u, la_s, evb_s):
            """Address-phase plan for one transaction across a row
            subset.  Returns the rows that must divert (illegal snoop
            cell, busy-abort, >1 DI), the OR/sum aggregates, and the
            per-snooper pending slots for the commit phase."""
            size = la_s.shape[0]
            divert = np.zeros(size, dtype=bool)
            agg_ch = np.zeros(size, dtype=bool)
            di_cnt = np.zeros(size, dtype=np.int64)
            di_idx = np.zeros(size, dtype=np.int64)
            sl_any = np.zeros(size, dtype=bool)
            hits = np.zeros(size, dtype=np.int64)
            pend = []
            tag_s = la_s // s_stride
            set_s = la_s - tag_s * s_stride
            for v in snoop_units:
                vmask = master_u != v
                if not vmask.any():
                    continue
                srow_v = base_s + v * Sm + set_s
                match_v = (tg_mat[srow_v] == tag_s[:, None]) & (
                    st_mat[srow_v] != _INVALID
                )
                hit_v = match_v.any(axis=1) & vmask
                sidx_v = srow_v * Wm + np.argmax(match_v, axis=1)
                cell = (v * 5 + st[sidx_v]) * 6 + evb_s
                live = hit_v & s_leg[cell]
                divert |= hit_v & ~s_leg[cell]
                divert |= live & s_bs[cell]
                agg_ch |= live & s_ch[cell]
                di_v = live & s_di[cell]
                di_cnt += di_v
                di_idx = np.where(di_v, sidx_v, di_idx)
                sl_any |= live & s_sl[cell]
                hits += hit_v
                pend.append(
                    (hit_v, sidx_v, s_ns_ch[cell], s_ns_nch[cell],
                     live & s_sl[cell])
                )
            divert |= di_cnt > 1
            return divert, agg_ch, di_cnt > 0, di_idx, sl_any, hits, pend

        # Step-invariant address arithmetic, hoisted out of the loop.
        s_stride_all = S_arr[None, :] if hetero else Sm
        tag_all = evl // s_stride_all
        set_all = evl - tag_all * s_stride_all
        srow_all = rowoff[None, :] + evu * Sm + set_all
        ev2_all = ev2local[evk]
        kla_all = evk <= 1

        for t in range(max_events):
            act = alive & (t < n_ev)
            nact = int(np.count_nonzero(act))
            if nact == 0:
                break
            self.events_attempted += nact
            if nact == R:
                rows = row_index
                u, k, la = evu[t], evk[t], evl[t]
                rbase = rowoff
                tag, set_index = tag_all[t], set_all[t]
                srow = srow_all[t]
                ev2, kla = ev2_all[t], kla_all[t]
            else:
                rows = row_index[act]
                u, k, la = evu[t][act], evk[t][act], evl[t][act]
                rbase = rowoff[act]
                tag, set_index = tag_all[t][act], set_all[t][act]
                srow = srow_all[t][act]
                ev2, kla = ev2_all[t][act], kla_all[t][act]
            stv = st_mat[srow]
            match = (tg_mat[srow] == tag[:, None]) & (stv != _INVALID)
            hit = match.any(axis=1)
            way = np.argmax(match, axis=1)
            hidx = srow * Wm + way
            cstate = np.where(hit, st[hidx], _INVALID)
            idx3 = (u * 5 + cstate) * 4 + ev2
            # A valid slot implies a caching unit, so ``hit`` alone
            # stands in for ``cached & hit`` in the consult rule.
            consult = kla | hit
            cls = np.where(consult, l_cls[idx3], 0)
            fastm = (cls == 1) & hit & kla
            all_fast = bool(fastm.all())

            # -- silent read/write hits ---------------------------------
            if all_fast:
                fr, fk, fidx = rows, k, hidx
                fsrow, fi3, fla = srow, idx3, la
                n_fast = nact
            else:
                fsel = np.nonzero(fastm)[0]
                n_fast = fsel.size
                fr, fk, fidx = rows[fsel], k[fsel], hidx[fsel]
                fsrow, fi3 = srow[fsel], idx3[fsel]
                fla = la[fsel]
            if n_fast:
                ns = l_ns_nch[fi3]
                self.tr[fr] += 1  # one silent consult per row this step
                st[fidx] = ns
                ranks = rk_mat[fsrow]
                old = rk[fidx]
                ranks += ranks < old[:, None]
                rk_mat[fsrow] = ranks
                rk[fidx] = 0
                rm = fk == 0
                if rm.any():
                    rr = fr[rm]
                    tokens_flat[rr * max_tok + tok_n[rr]] = val[fidx[rm]]
                    tok_n[rr] += 1
                wm = ~rm
                if wm.any():
                    wr = fr[wm]
                    widx = fidx[wm]
                    vctr[wr] += 1
                    token = vctr[wr]
                    keep = ns[wm] != _INVALID
                    if keep.all():
                        val[widx] = token
                    else:
                        val[widx[keep]] = token[keep]
                    lastv[wr * Lm + fla[wm]] = token
            if all_fast:
                self.vector_events += nact
                continue

            silent = cls == 1
            flushm = silent & ~kla  # consult w/o kla implies a hit
            busm = (cls == 2) & ~((k == 0) & hit)
            # Pre-commit diverts: read-then-write chains, silent cells
            # on a miss (assert), and non-silent cells on a read hit
            # (the controller crashes; the planner commits nothing).
            scalar_mask = (
                (cls == 3)
                | (silent & kla & ~hit)
                | ((k == 0) & hit & (cls == 2))
            )
            # Skipped (illegal-cell) writes still burn a version token:
            # the port allocates it before the controller runs.
            burn = np.nonzero((cls == 0) & (k == 1))[0]
            if burn.size:
                vctr[rows[burn]] += 1

            # -- silent flush/pass hits (state move only, no touch) -----
            csel = np.nonzero(flushm)[0]
            if csel.size:
                self.tr[rows[csel]] += 1
                st[hidx[csel]] = l_ns_nch[idx3[csel]]

            # -- bus transactions: plan, then commit or divert ----------
            bsel = np.nonzero(busm)[0]
            if bsel.size:
                m = bsel.size
                bu, bk, bla = u[bsel], k[bsel], la[bsel]
                brows = rows[bsel]
                bhit, bhidx = hit[bsel], hidx[bsel]
                bcached = unit_cached[bu]
                btag, bset = tag[bsel], set_index[bsel]
                bsrow = srow[bsel]
                bev2 = ev2[bsel]
                b_stride = S_arr[brows] if hetero else Sm
                b_width = W_arr[brows] if hetero else Wm
                bi3 = idx3[bsel]
                ca, im, bc = l_ca[bi3], l_im[bi3], l_bc[bi3]
                opx = np.where(bcached, l_op[bi3], bk + 1)
                ns_ch, ns_nch = l_ns_ch[bi3], l_ns_nch[bi3]
                bdiv = np.zeros(m, dtype=bool)
                # System.write burns the version token before the
                # controller runs; plan it here, commit it at the end.
                new_value = np.where(bk == 1, vctr[brows] + 1, 0)
                is_w = opx == 2
                is_r = opx == 1
                wire = np.where(is_w & (bev2 == 1), new_value, 0)
                push = is_w & (bev2 != 1)
                if push.any():
                    wire = np.where(push & bhit, val[bhidx], wire)
                    bdiv |= push & ~bhit  # push needs a cached line
                raw_evb = buscode[ca * 4 + im * 2 + (bc & im)]
                bdiv |= raw_evb < 0
                evb = np.maximum(raw_evb, 0)
                sdiv, agg_ch, di_any, di_idx, sl_any, s_hits, pend1 = \
                    snoop_plan(rbase[bsel], b_stride, bu, bla, evb)
                bdiv |= sdiv
                word = brows * Lm + bla
                value = (
                    np.where(di_any, val[di_idx], mem[word])
                    if is_r.any()
                    else np.zeros(m, dtype=np.int64)
                )
                bcast = is_w & ((bc == 1) | sl_any)
                bdiv |= bcast & di_any  # DI on broadcast: RuntimeError
                resolved = np.where(agg_ch, ns_ch, ns_nch)
                token = np.where(
                    bev2 == 1,
                    new_value,
                    np.where(
                        is_r, value, np.where(bhit, val[bhidx], 0)
                    ),
                )

                # Allocation plan: first invalid way, else the LRU
                # victim -- whose line is provably a *different* line
                # than ``bla`` (it missed), so the eviction transaction
                # can be planned from pre-commit state.
                need_install = bcached & ~bhit & (resolved < _INVALID)
                way_fin = np.zeros(m, dtype=np.int64)
                esel = None
                if need_install.any():
                    inv = stv[bsel] == _INVALID
                    if hetero:
                        inv &= w_range[None, :] < b_width[:, None]
                    has_inv = inv.any(axis=1)
                    way_fin = np.argmax(inv, axis=1)
                    ev_rows = need_install & ~has_inv
                    if ev_rows.any():
                        esel = np.nonzero(ev_rows)[0]
                        rkv = rk_mat[bsrow[esel]]
                        if hetero:
                            rkv = np.where(
                                w_range[None, :] < b_width[esel][:, None],
                                rkv,
                                -1,
                            )
                        way_v = np.argmax(rkv, axis=1)
                        way_fin[esel] = way_v
                        vidx = bsrow[esel] * Wm + way_v
                        v_st = st[vidx]
                        e_stride = b_stride[esel] if hetero else Sm
                        v_la = tg[vidx] * e_stride + bset[esel]
                        fi3 = (bu[esel] * 5 + v_st) * 4 + 3  # FLUSH cell
                        fcls = l_cls[fi3]
                        fop = l_op[fi3]
                        # Illegal flush cells raise _Illegal *after* the
                        # main transaction committed; read-then-write and
                        # read-lowered flushes stay scalar territory.
                        ediv = (
                            (fcls == 0)
                            | (fcls == 3)
                            | ((fcls == 2) & (fop != 2) & (fop != 0))
                        )
                        e_sil = fcls == 1
                        e_bus = (fcls == 2) & ~ediv
                        f_ca, f_im, f_bc = l_ca[fi3], l_im[fi3], l_bc[fi3]
                        raw2 = buscode[f_ca * 4 + f_im * 2 + (f_bc & f_im)]
                        ediv |= e_bus & (raw2 < 0)
                        evb2 = np.maximum(raw2, 0)
                        div2, agg2, di_any2, di_idx2, sl_any2, hits2, \
                            pend2 = snoop_plan(
                                rbase[bsel][esel], e_stride, bu[esel],
                                v_la, evb2,
                            )
                        ediv |= e_bus & div2
                        e_bus &= ~ediv
                        is_w2 = fop == 2
                        wire2 = val[vidx]
                        bcast2 = is_w2 & ((f_bc == 1) | sl_any2)
                        ediv |= e_bus & bcast2 & di_any2
                        e_bus &= ~ediv
                        word2 = brows[esel] * Lm + v_la
                        bdiv[esel] |= ediv

                ok = ~bdiv
                oksel = np.nonzero(ok)[0]
                if oksel.size:
                    # One local consult plus one snoop consult per hit,
                    # credited to each transaction's own row (rows are
                    # unique within a step, so the fancy += is exact).
                    self.tr[brows[oksel]] += 1 + s_hits[oksel]
                    okr = brows[oksel]
                    self.serial[okr] += 1
                    self.bus_txns[okr] += 1
                    # Data phase (raw BC decides the broadcast branch).
                    mw = ok & is_w & (bcast | ~di_any)
                    sel = np.nonzero(mw)[0]
                    if sel.size:
                        mem[word[sel]] = wire[sel]
                    dcap = ok & is_w & ~bcast & di_any
                    sel = np.nonzero(dcap)[0]
                    if sel.size:
                        val[di_idx[sel]] = wire[sel]
                    slw = ok & is_w & bcast
                    if slw.any():
                        for _hit_v, sidx_v, _nsc, _nsn, sl_v in pend1:
                            sel = np.nonzero(slw & sl_v)[0]
                            if sel.size:
                                val[sidx_v[sel]] = wire[sel]
                    # Snooper finalize (CH-resolved next states).
                    for hit_v, sidx_v, nsc_v, nsn_v, _sl_v in pend1:
                        sel = np.nonzero(ok & hit_v)[0]
                        if sel.size:
                            st[sidx_v[sel]] = np.where(
                                agg_ch[sel], nsc_v[sel], nsn_v[sel]
                            )
                    # Eviction transaction (the victim write-back).
                    if esel is not None:
                        eok = ok[esel]
                        if eok.any():
                            self.tr[brows[esel][eok]] += 1  # FLUSH consults
                        b2 = eok & e_bus
                        if b2.any():
                            self.tr[brows[esel][b2]] += hits2[b2]
                            r2 = brows[esel[b2]]
                            self.serial[r2] += 1
                            self.bus_txns[r2] += 1
                            mw2 = b2 & is_w2 & (bcast2 | ~di_any2)
                            sel = np.nonzero(mw2)[0]
                            if sel.size:
                                mem[word2[sel]] = wire2[sel]
                            dcap2 = b2 & is_w2 & ~bcast2 & di_any2
                            sel = np.nonzero(dcap2)[0]
                            if sel.size:
                                val[di_idx2[sel]] = wire2[sel]
                            slw2 = b2 & is_w2 & bcast2
                            if slw2.any():
                                for _h, sidx_v, _nsc, _nsn, sl_v in pend2:
                                    sel = np.nonzero(slw2 & sl_v)[0]
                                    if sel.size:
                                        val[sidx_v[sel]] = wire2[sel]
                            for hit_v, sidx_v, nsc_v, nsn_v, _s in pend2:
                                sel = np.nonzero(b2 & hit_v)[0]
                                if sel.size:
                                    st[sidx_v[sel]] = np.where(
                                        agg2[sel], nsc_v[sel], nsn_v[sel]
                                    )
                    # Master finalize: hits move in place...
                    stay = resolved < _INVALID
                    sel = np.nonzero(ok & bhit & stay)[0]
                    if sel.size:
                        st[bhidx[sel]] = resolved[sel]
                        val[bhidx[sel]] = token[sel]
                    sel = np.nonzero(ok & bhit & ~stay)[0]
                    if sel.size:
                        st[bhidx[sel]] = _INVALID
                    # ...misses fill the planned way.
                    inst = ok & need_install
                    isel = np.nonzero(inst)[0]
                    if isel.size:
                        iidx = bsrow[isel] * Wm + way_fin[isel]
                        tg[iidx] = btag[isel]
                        st[iidx] = resolved[isel]
                        val[iidx] = token[isel]
                    # LRU touches: installs at the filled way, write
                    # hits at the lookup-time way (the object engine
                    # touches those coordinates even if the line moved).
                    tmask = inst | (ok & (bk == 1) & bhit)
                    tsel = np.nonzero(tmask)[0]
                    if tsel.size:
                        tway = np.where(
                            need_install[tsel], way_fin[tsel], way[bsel][tsel]
                        )
                        tsrow = bsrow[tsel]
                        tidx = tsrow * Wm + tway
                        ranks = rk_mat[tsrow]
                        old = rk[tidx]
                        ranks += ranks < old[:, None]
                        rk_mat[tsrow] = ranks
                        rk[tidx] = 0
                    # Port-side effects: read tokens, write versions.
                    sel = np.nonzero(ok & (bk == 0))[0]
                    if sel.size:
                        rr = brows[sel]
                        tokens_flat[rr * max_tok + tok_n[rr]] = token[sel]
                        tok_n[rr] += 1
                    sel = np.nonzero(ok & (bk == 1))[0]
                    if sel.size:
                        wr = brows[sel]
                        vctr[wr] += 1
                        lastv[wr * Lm + bla[sel]] = new_value[sel]
                if bdiv.any():
                    scalar_mask[bsel[np.nonzero(bdiv)[0]]] = True

            # -- diverted rows: unmodified, replayed exactly scalar -----
            ssel = np.nonzero(scalar_mask)[0]
            self.scalar_events += ssel.size
            self.vector_events += nact - ssel.size
            for i in ssel:
                r = int(rows[i])
                try:
                    self.step_event(r, int(u[i]), int(k[i]), int(la[i]))
                except _RowCrash as exc:
                    crash[r] = (t, exc.type_name)
                    alive[r] = False

    # -- snapshots -------------------------------------------------------
    def snapshot_row(self, r: int) -> dict:
        row_s, row_w, row_l = self.S_r[r], self.W_r[r], self.L_r[r]
        caches = []
        for u in range(self.U):
            if self.non_caching[u]:
                caches.append(())
                continue
            lines = []
            for set_index in range(row_s):
                base = self._base(r, u, set_index)
                for w in range(row_w):
                    i = base + w
                    if self.st[i] != _INVALID:
                        la = int(self.tg[i]) * row_s + set_index
                        lines.append(
                            (
                                la,
                                _STATE_LETTERS[int(self.st[i])],
                                int(self.val[i]),
                            )
                        )
            lines.sort()
            caches.append(tuple(lines))
        if self.backend == "numpy":
            tokens = [
                int(x) for x in self.tokens_buf[r, : int(self.tok_n[r])]
            ]
        else:
            tokens = list(self.tokens[r])
        word = r * self.L
        return {
            "tokens": tokens,
            "caches": tuple(caches),
            "memory": tuple(
                int(self.mem[word + a]) for a in range(row_l)
            ),
            "version_counter": int(self.vctr[r]),
            "last_version": tuple(
                int(self.lastv[word + a]) for a in range(row_l)
            ),
            "bus_transactions": int(self.bus_txns[r]),
            "crash": self.crash[r],
        }


def run_population(
    pop: BatchPopulation, backend: Optional[str] = None
) -> BatchResult:
    """Run every row of a population through the kernel."""
    chosen = backend or default_backend()
    if chosen not in available_backends():
        raise ValueError(
            f"backend {chosen!r} unavailable; have {available_backends()}"
        )
    tables = lower_units(pop.units)
    kernel = _Kernel(pop, tables, chosen)
    kernel.run()
    return BatchResult(
        backend=chosen,
        rows=pop.rows,
        events=kernel.events_attempted,
        transitions=kernel.transitions,
        snapshots=[kernel.snapshot_row(r) for r in range(pop.rows)],
        scalar_events=kernel.scalar_events,
        vector_events=kernel.vector_events,
        row_events=kernel.row_events(),
        row_transitions=tuple(int(x) for x in kernel.tr),
    )


# ---------------------------------------------------------------------------
# The oracle: one row on the real object engine, same snapshot shape.
# ---------------------------------------------------------------------------
def replay_row(pop: BatchPopulation, row: int) -> dict:
    """Replay one row on a real :class:`System` (the per-object engine)
    and snapshot it identically to the kernel -- the differential oracle
    for every batch run."""
    from repro.bus.futurebus import BusLivelockError
    from repro.cache.controller import NonCachingMaster
    from repro.core.protocol import IllegalTransitionError
    from repro.system.system import BoardSpec, System

    g = pop.geometry_for(row)
    boards = [
        BoardSpec(
            unit_id=f"u{index}",
            protocol=make_protocol(spec),
            num_sets=g.num_sets,
            associativity=g.associativity,
            line_size=g.line_size,
        )
        for index, spec in enumerate(pop.units)
    ]
    system = System(boards, check=False, label=f"batch-row{row}")
    tokens: list = []
    crash = None
    for step, (unit_index, kind, la) in enumerate(pop.events[row]):
        unit = f"u{unit_index}"
        board = system.controllers[unit]
        if kind >= _K_FLUSH and isinstance(board, NonCachingMaster):
            continue
        try:
            if kind == _K_READ:
                tokens.append(system.read(unit, la * g.line_size))
            elif kind == _K_WRITE:
                system.write(unit, la * g.line_size)
            elif kind == _K_FLUSH:
                board.flush_line(la)
            else:
                board.clean_line(la)
        except IllegalTransitionError:
            continue
        except (AssertionError, RuntimeError, BusLivelockError) as exc:
            crash = (step, type(exc).__name__)
            break
    caches = []
    for board in system.controllers.values():
        if isinstance(board, NonCachingMaster):
            caches.append(())
            continue
        caches.append(
            tuple(
                sorted(
                    (la, state.letter, value)
                    for la, state, value in board.cached_lines()
                )
            )
        )
    return {
        "tokens": tokens,
        "caches": tuple(caches),
        "memory": tuple(system.memory.peek(a) for a in range(g.lines)),
        "version_counter": system._version_counter,
        "last_version": tuple(
            system.last_written_token(a) for a in range(g.lines)
        ),
        "bus_transactions": system.bus_stats.transactions,
        "crash": crash,
    }


def verify_rows(
    pop: BatchPopulation,
    result: BatchResult,
    rows: Optional[Sequence[int]] = None,
) -> list:
    """Diff kernel snapshots against object-engine replays; returns
    ``(row, key, kernel_value, oracle_value)`` mismatch tuples (empty
    means byte-equivalent)."""
    mismatches = []
    for row in rows if rows is not None else range(pop.rows):
        expected = replay_row(pop, row)
        got = result.snapshots[row]
        for key in expected:
            if got.get(key) != expected[key]:
                mismatches.append((row, key, got.get(key), expected[key]))
    return mismatches


# ---------------------------------------------------------------------------
# Synthetic populations (benchmarks, sweeps).
# ---------------------------------------------------------------------------
def make_synthetic_population(
    rows: int = 256,
    units: Sequence[str] = ("moesi", "moesi"),
    geometry: Optional[BatchGeometry] = None,
    events_per_row: int = 200,
    seed: int = 0,
    p_write: float = 0.35,
    p_flush: float = 0.02,
    p_pass: float = 0.02,
    geometries: Optional[Sequence[BatchGeometry]] = None,
) -> BatchPopulation:
    """Seeded hit-heavy workload: each row gets its own deterministic
    schedule (pure function of ``(seed, row)``), all rows sharing one
    board mix so the kernel can run them as one block.

    Pass ``geometries`` (cycled across rows) for a padded heterogeneous
    population; each row's line addresses stay inside its own geometry.
    """
    if geometries:
        per_row = tuple(
            geometries[r % len(geometries)] for r in range(rows)
        )
        geometry = envelope_geometry(per_row)
    else:
        per_row = None
        geometry = geometry or BatchGeometry()
    n_units = len(units)
    events = []
    for r in range(rows):
        rng = random.Random(seed * 1_000_003 + r)
        lines = per_row[r].lines if per_row else geometry.lines
        schedule = []
        for _ in range(events_per_row):
            roll = rng.random()
            if roll < p_write:
                kind = _K_WRITE
            elif roll < p_write + p_flush:
                kind = _K_FLUSH
            elif roll < p_write + p_flush + p_pass:
                kind = _K_PASS
            else:
                kind = _K_READ
            schedule.append(
                (
                    rng.randrange(n_units),
                    kind,
                    rng.randrange(lines),
                )
            )
        events.append(schedule)
    return BatchPopulation(
        units=tuple(units),
        geometry=geometry,
        events=events,
        row_ids=tuple(range(rows)),
        geometries=per_row,
    )


# ---------------------------------------------------------------------------
# Continuous batching: many BatchSpecs -> few merged kernel invocations.
# ---------------------------------------------------------------------------
def run_batch_specs(
    specs: Sequence, backend: Optional[str] = None
) -> list[list[dict]]:
    """Coalesce several :class:`repro.specs.BatchSpec` sweeps into merged
    kernel invocations and de-multiplex per-spec reports.

    Every (spec, protocol) pair contributes the *same* synthetic
    sub-population it would get standalone (schedules are pure functions
    of ``(seed, row)`` and of the spec's own geometry); sub-populations
    sharing a board mix are concatenated into one padded
    heterogeneous-geometry population and run in a single kernel call.
    Rows are independent, so the per-row snapshots -- and the per-row
    ``row_events``/``row_transitions`` counters -- are identical to the
    standalone runs, and each spec's report slices straight out.

    Returns one row-list per spec, ordered like ``spec.protocols`` --
    field-for-field equal to
    :func:`repro.perf.sweeps.batch_protocol_sweep` minus the wall-clock
    ``transitions_per_sec`` (a merged run has no per-spec wall time).
    """
    chosen = backend or default_backend()
    out: list[list] = [[None] * len(spec.protocols) for spec in specs]
    groups: dict[tuple, list] = {}
    for si, spec in enumerate(specs):
        geometry = BatchGeometry(*spec.geometry)
        for pi, proto in enumerate(spec.protocols):
            pop = make_synthetic_population(
                rows=spec.rows,
                units=(proto,) * spec.n_units,
                geometry=geometry,
                events_per_row=spec.events_per_row,
                seed=spec.seed,
            )
            groups.setdefault(pop.units, []).append((si, pi, pop))
    for units, members in groups.items():
        events: list = []
        geoms: list = []
        slices = []
        for si, pi, pop in members:
            start = len(events)
            events.extend(pop.events)
            geoms.extend([pop.geometry] * pop.rows)
            slices.append((si, pi, start, len(events)))
        envelope = envelope_geometry(geoms)
        hetero = any(g != envelope for g in geoms)
        merged = BatchPopulation(
            units=units,
            geometry=envelope,
            events=events,
            row_ids=tuple(range(len(events))),
            geometries=tuple(geoms) if hetero else None,
        )
        result = run_population(merged, backend=chosen)
        for si, pi, start, stop in slices:
            out[si][pi] = {
                "protocol": specs[si].protocols[pi],
                "backend": result.backend,
                "rows": stop - start,
                "events": int(sum(result.row_events[start:stop])),
                "transitions": int(
                    sum(result.row_transitions[start:stop])
                ),
                "crashes": sum(
                    1
                    for snapshot in result.snapshots[start:stop]
                    if snapshot["crash"] is not None
                ),
            }
    return out

"""Struct-of-arrays batch simulation kernel over the lowered tables.

One object-graph :class:`repro.system.system.System` steps a few tens of
thousands of transitions per second; population-scale studies (parameter
sweeps, fuzz campaigns, the service-discipline comparisons the ROADMAP
cites) need orders of magnitude more.  This module runs N *independent*
systems as parallel integer arrays -- one row per system, flat columns
for per-line state codes, tags, values, and replacement ranks -- and
steps every row through the integer records of
:func:`repro.core.transitions.lower_batch_tables`.

Two backends, selected at import and identical in output:

* ``"numpy"`` -- time-major stepping with a vectorized fast path for the
  dominant event class (silent read/write hits resolve for every row in
  a handful of array ops); rows whose current event needs the bus, an
  allocation, or crash semantics fall through to the scalar interpreter
  *on the same arrays*, so the fast path can never diverge.
* ``"python"`` -- the scalar interpreter over ``array('q')`` columns,
  dependency-free.

The scalar interpreter replicates the object engine's semantics exactly
-- pending snoop slots keyed by bus serial, abort-push nesting, the raw
``BC`` broadcast rule of the data phase, version-counter ordering, LRU
rank movement, and the fuzz runner's skip (``IllegalTransitionError``)
versus crash (``AssertionError``/``RuntimeError``/``BusLivelockError``)
taxonomy.  The object engine stays the oracle: :func:`replay_row` runs
any row through a real :class:`System` and returns the same snapshot
shape, and :func:`verify_rows` diffs the two byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import random
from array import array
from typing import Optional, Sequence

from repro.core.transitions import (
    BatchTables,
    bus_event_code_table,
    lower_batch_tables,
)
from repro.protocols.registry import make_protocol

try:  # the [perf] optional extra; the kernel runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

__all__ = [
    "BatchGeometry",
    "BatchPopulation",
    "BatchResult",
    "NotBatchableError",
    "EVENT_KIND_CODES",
    "available_backends",
    "batchable_specs",
    "default_backend",
    "lower_units",
    "make_synthetic_population",
    "run_population",
    "replay_row",
    "verify_rows",
]

#: Event kind codes used in population schedules (matches the fuzz
#: scenario kinds; flush/pass double as replacement traffic).
EVENT_KIND_CODES = {"read": 0, "write": 1, "flush": 2, "pass": 3}

_K_READ, _K_WRITE, _K_FLUSH, _K_PASS = 0, 1, 2, 3
_INVALID = 4  # LineState.INVALID.code
_STATE_LETTERS = "MOESI"
_MAX_RETRIES = 8  # Futurebus.max_retries


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, fastest first."""
    return ("numpy", "python") if _np is not None else ("python",)


def default_backend() -> str:
    """The backend :func:`run_population` picks when none is given."""
    return available_backends()[0]


class NotBatchableError(ValueError):
    """A population names a protocol the lowering cannot handle (seeded
    random / round-robin selection); callers fall back to the object
    engine for those rows."""


@dataclasses.dataclass(frozen=True)
class BatchGeometry:
    """Cache geometry shared by every row of a population."""

    num_sets: int = 4
    associativity: int = 2
    line_size: int = 32
    lines: int = 8  # distinct line addresses the schedules touch


@dataclasses.dataclass
class BatchPopulation:
    """N independent systems sharing one board mix and geometry.

    ``events`` holds one schedule per row: a sequence of
    ``(unit_index, kind_code, line_address)`` triples (kind codes per
    :data:`EVENT_KIND_CODES`; line addresses in line units, matching the
    fuzz scenarios' ``line * line_size`` byte addressing).
    """

    units: tuple[str, ...]
    geometry: BatchGeometry
    events: list
    row_ids: tuple = ()

    @property
    def rows(self) -> int:
        return len(self.events)


@dataclasses.dataclass
class BatchResult:
    """Outcome of one kernel run over a population."""

    backend: str
    rows: int
    events: int  # scheduled events attempted (crashed rows stop early)
    transitions: int  # successful table consults, local + snoop
    snapshots: list  # one dict per row (see _Kernel.snapshot_row)


_LOWERED: dict[str, Optional[BatchTables]] = {}


def lower_units(units: Sequence[str]) -> list:
    """Lower each registry spec to :class:`BatchTables`; raises
    :class:`NotBatchableError` naming the first spec that cannot be."""
    tables = []
    for spec in units:
        if spec not in _LOWERED:
            _LOWERED[spec] = lower_batch_tables(make_protocol(spec))
        lowered = _LOWERED[spec]
        if lowered is None:
            raise NotBatchableError(
                f"protocol {spec!r} selects actions statefully and cannot "
                "be lowered to batch tables; use the object engine"
            )
        tables.append(lowered)
    return tables


def batchable_specs() -> tuple[str, ...]:
    """Registry names whose protocols lower to batch tables, in registry
    order (the stateful selectors -- seeded random, round-robin -- are
    excluded and stay on the object engine)."""
    from repro.protocols.registry import protocol_names

    names = []
    for spec in protocol_names():
        if spec not in _LOWERED:
            _LOWERED[spec] = lower_batch_tables(make_protocol(spec))
        if _LOWERED[spec] is not None:
            names.append(spec)
    return tuple(names)


# ---------------------------------------------------------------------------
# Internal control flow: the fuzz runner's taxonomy as exceptions.
# ---------------------------------------------------------------------------
class _Illegal(Exception):
    """IllegalTransitionError equivalent: the event is skipped (partial
    effects persist, exactly like the object engine)."""


class _RowCrash(Exception):
    """AssertionError / RuntimeError / BusLivelockError equivalent: the
    row records ``(step, type_name)`` and stops."""

    def __init__(self, type_name: str) -> None:
        super().__init__(type_name)
        self.type_name = type_name


class _Kernel:
    """The struct-of-arrays interpreter (both backends).

    Flat layout: line slot ``(r, u, set, way)`` lives at index
    ``((r*U + u)*S + set)*W + way`` of ``st``/``tg``/``val``/``rk``;
    memory word ``(r, la)`` at ``r*L + la``.
    """

    def __init__(self, pop: BatchPopulation, tables, backend: str) -> None:
        g = pop.geometry
        self.pop = pop
        self.backend = backend
        self.S = g.num_sets
        self.W = g.associativity
        self.L = g.lines
        self.U = len(pop.units)
        self.R = pop.rows
        self.tables = tables
        self.non_caching = [t.non_caching for t in tables]
        self.cached_units = [
            u for u in range(self.U) if not self.non_caching[u]
        ]
        self.bus_code = bus_event_code_table()
        n_slots = self.R * self.U * self.S * self.W
        n_words = self.R * self.L
        rank_pattern = list(range(self.W)) * (n_slots // max(self.W, 1))
        if backend == "numpy":
            z = lambda n: _np.zeros(n, dtype=_np.int64)  # noqa: E731
            self.st = _np.full(n_slots, _INVALID, dtype=_np.int64)
            self.tg = z(n_slots)
            self.val = z(n_slots)
            self.rk = _np.array(rank_pattern, dtype=_np.int64)
            self.mem = z(n_words)
            self.lastv = z(n_words)
            self.vctr = z(self.R)
            self.serial = z(self.R)
            self.bus_txns = z(self.R)
            max_events = max((len(e) for e in pop.events), default=0)
            self.tokens_buf = z((self.R, max(max_events, 1)))
            self.tok_n = z(self.R)
        else:
            self.st = array("q", [_INVALID]) * n_slots
            self.tg = array("q", [0]) * n_slots
            self.val = array("q", [0]) * n_slots
            self.rk = array("q", rank_pattern)
            self.mem = array("q", [0]) * n_words
            self.lastv = array("q", [0]) * n_words
            self.vctr = array("q", [0]) * self.R
            self.serial = array("q", [0]) * self.R
            self.bus_txns = array("q", [0]) * self.R
            self.tokens = [[] for _ in range(self.R)]
        #: Per-row, per-unit pending snoop slot: ``(serial, idx, record)``.
        self.pend = [[None] * self.U for _ in range(self.R)]
        self.crash = [None] * self.R
        self.transitions = 0
        self.events_attempted = 0

    # -- shared scalar helpers -----------------------------------------
    def _base(self, r: int, u: int, set_index: int) -> int:
        return ((r * self.U + u) * self.S + set_index) * self.W

    def _lookup(self, r: int, u: int, la: int):
        """First way holding a valid copy of ``la`` (the cache's scan
        order), as ``(set_index, way, flat_index)``; None on miss."""
        tag, set_index = divmod(la, self.S)
        base = self._base(r, u, set_index)
        st, tg = self.st, self.tg
        for way in range(self.W):
            i = base + way
            if tg[i] == tag and st[i] != _INVALID:
                return set_index, way, i
        return None

    def _touch(self, r: int, u: int, set_index: int, way: int) -> None:
        """LRU move-to-front: ranks below the touched way's shift up."""
        rk = self.rk
        base = self._base(r, u, set_index)
        old = rk[base + way]
        for w in range(self.W):
            i = base + w
            if rk[i] < old:
                rk[i] += 1
        rk[base + way] = 0

    def _emit_token(self, r: int, token) -> None:
        if self.backend == "numpy":
            self.tokens_buf[r, self.tok_n[r]] = token
            self.tok_n[r] += 1
        else:
            self.tokens[r].append(int(token))

    # -- the bus (Futurebus.execute + _data_phase) ---------------------
    def _snoop(self, r: int, u: int, la: int, ev_code: int, txn_serial: int):
        """One snooper's address-phase response; sets the pending slot on
        a hit (without clearing it on a miss, like the object engine)."""
        found = self._lookup(r, u, la)
        if found is None:
            return 0, 0, 0, 0
        i = found[2]
        rec = self.tables[u].snoop[self.st[i] * 6 + ev_code]
        if rec is None:
            raise _RowCrash("ProtocolGapError")
        self.transitions += 1
        self.pend[r][u] = (txn_serial, i, rec)
        return rec[2], rec[3], rec[4], rec[5]

    def _abort_push(self, r: int, u: int, la: int, txn_serial: int) -> None:
        pend_row = self.pend[r]
        p = pend_row[u]
        if p is None or p[0] != txn_serial or not p[2][6]:
            # abort_push's asserts: pending must match and carry a push.
            raise _RowCrash("AssertionError")
        pend_row[u] = None
        rec = p[2]
        self._execute(r, u, la, rec[7], rec[8], rec[9], 2, self.val[p[1]])
        self.st[p[1]] = rec[1]  # next state resolved with CH unasserted

    def _execute(self, r, master_u, la, ca, im, bc, op, wire):
        """One bus transaction to completion; returns ``(value, agg_ch)``
        (``value`` only meaningful for ``op == READ``)."""
        self.serial[r] += 1
        txn_serial = int(self.serial[r])
        bc_eff = 1 if (bc and im) else 0
        ev_code = self.bus_code[ca * 4 + im * 2 + bc_eff]
        snoopers = [u for u in self.cached_units if u != master_u]
        pend_row = self.pend[r]
        retries = 0
        while True:
            resp = [
                self._snoop(r, u, la, ev_code, txn_serial) for u in snoopers
            ]
            agg_ch = agg_bs = 0
            for bits in resp:
                agg_ch |= bits[0]
                agg_bs |= bits[3]
            if agg_bs:
                if retries >= _MAX_RETRIES:
                    raise _RowCrash("BusLivelockError")
                pushers = [
                    u for u, bits in zip(snoopers, resp) if bits[3]
                ]
                for u in snoopers:
                    if u not in pushers:
                        p = pend_row[u]
                        if p is not None and p[0] == txn_serial:
                            pend_row[u] = None
                for u in pushers:
                    self._abort_push(r, u, la, txn_serial)
                retries += 1
                continue
            break

        # Data phase (raw BC decides the broadcast branch, as on the bus).
        di_units = [u for u, bits in zip(snoopers, resp) if bits[1]]
        sl_units = [u for u, bits in zip(snoopers, resp) if bits[2]]
        if len(di_units) > 1:
            raise _RowCrash("RuntimeError")
        value = None
        word = r * self.L + la
        if op == 1:  # READ
            if di_units:
                p = pend_row[di_units[0]]
                if p is None or p[0] != txn_serial:
                    raise _RowCrash("AssertionError")  # supply_data assert
                value = self.val[p[1]]
            else:
                value = self.mem[word]
        elif op == 2:  # WRITE
            if bc or sl_units:
                self.mem[word] = wire
                for u in sl_units:
                    p = pend_row[u]
                    if p is None or p[0] != txn_serial:
                        raise _RowCrash("AssertionError")  # connect assert
                    self.val[p[1]] = wire
                if di_units:
                    raise _RowCrash("RuntimeError")  # DI on broadcast
            elif di_units:
                p = pend_row[di_units[0]]
                if p is None or p[0] != txn_serial:
                    raise _RowCrash("AssertionError")  # capture assert
                self.val[p[1]] = wire  # owner captures; memory stays stale
            else:
                self.mem[word] = wire
        # op == 0: address-only, no data moves.

        st = self.st
        for u in snoopers:  # finalize, attach order
            p = pend_row[u]
            if p is not None and p[0] == txn_serial:
                pend_row[u] = None
                st[p[1]] = p[2][0] if agg_ch else p[2][1]
        self.bus_txns[r] += 1
        return value, agg_ch

    # -- local actions (CacheController) -------------------------------
    def _run_local_action(self, r, u, la, ev, rec, new_value):
        found = self._lookup(r, u, la)
        idx = found[2] if found else None
        ns_ch, ns_nch, ca, im, bc, op = rec
        if op == 3:
            return self._read_then_write(r, u, la, rec, new_value)
        if op == 0 and not ca and not im:  # silent
            if idx is None:
                if ns_nch < _INVALID:
                    raise _RowCrash("AssertionError")
                return new_value if new_value is not None else 0
            if ns_nch < _INVALID:
                self.st[idx] = ns_nch
                if ev == 1:
                    self.val[idx] = new_value
            else:
                self.st[idx] = _INVALID
            return self.val[idx]
        wire = None
        if op == 2:
            if ev == 1:
                wire = new_value
            else:
                if idx is None:  # PASS/FLUSH push needs a cached line
                    raise _RowCrash("AssertionError")
                wire = self.val[idx]
        value, agg_ch = self._execute(r, u, la, ca, im, bc, op, wire)
        resolved = ns_ch if agg_ch else ns_nch
        if ev == 1:
            token = new_value
        elif op == 1:
            if value is None:
                raise _RowCrash("AssertionError")
            token = value
        else:
            token = self.val[idx] if idx is not None else 0
        if resolved < _INVALID:
            if idx is None:
                self._install(r, u, la, resolved, token)
            else:
                self.st[idx] = resolved
                self.val[idx] = token
        elif idx is not None:
            self.st[idx] = _INVALID
        return token

    def _read_then_write(self, r, u, la, rec, new_value):
        ns_ch, ns_nch, ca, im, bc, _op = rec
        value, agg_ch = self._execute(r, u, la, ca, im, bc, 1, None)
        landed = ns_ch if agg_ch else ns_nch
        if value is None:
            raise _RowCrash("AssertionError")
        if landed < _INVALID:
            self._install(r, u, la, landed, value)
        wrec = self.tables[u].local[landed * 4 + 1]
        if wrec is None:
            raise _Illegal()  # propagates: the read's effects persist
        self.transitions += 1
        if wrec[5] == 3:
            raise _RowCrash("AssertionError")  # Read>Write may not chain
        return self._run_local_action(r, u, la, 1, wrec, new_value)

    def _install(self, r, u, la, state_code, value):
        tag, set_index = divmod(la, self.S)
        base = self._base(r, u, set_index)
        st, rk = self.st, self.rk
        way = -1
        for w in range(self.W):  # first invalid way wins
            if st[base + w] == _INVALID:
                way = w
                break
        if way < 0:
            best = -1
            for w in range(self.W):  # else the LRU victim (max rank)
                if rk[base + w] > best:
                    best = rk[base + w]
                    way = w
            victim_la = int(self.tg[base + way]) * self.S + set_index
            self._evict(r, u, base + way, victim_la)
        i = base + way
        self.tg[i] = tag
        self.st[i] = state_code
        self.val[i] = value
        self._touch(r, u, set_index, way)

    def _evict(self, r, u, idx, victim_la):
        rec = self.tables[u].local[self.st[idx] * 4 + 3]  # FLUSH
        if rec is None:
            raise _Illegal()  # propagates out of the whole event
        self.transitions += 1
        self._run_local_action(r, u, victim_la, 3, rec, None)

    # -- processor port -------------------------------------------------
    def _proc_read(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is not None:
            set_index, way, i = found
            rec = self.tables[u].local[self.st[i] * 4]
            if rec is None:
                raise _Illegal()
            self.transitions += 1
            if rec[5] != 0 or rec[2] or rec[3]:  # hit must be silent
                raise _RowCrash("AssertionError")
            self.st[i] = rec[1]
            self._touch(r, u, set_index, way)
            return self.val[i]
        rec = self.tables[u].local[_INVALID * 4]
        if rec is None:
            raise _Illegal()
        self.transitions += 1
        return self._run_local_action(r, u, la, 0, rec, None)

    def _proc_write(self, r, u, la, token):
        found = self._lookup(r, u, la)
        if found is not None:
            set_index, way, i = found
            rec = self.tables[u].local[self.st[i] * 4 + 1]
            if rec is None:
                raise _Illegal()
            self.transitions += 1
            self._run_local_action(r, u, la, 1, rec, token)
            # The object engine touches the lookup-time coordinates even
            # if the action moved the line; replicated as-is.
            self._touch(r, u, set_index, way)
            return
        rec = self.tables[u].local[_INVALID * 4 + 1]
        if rec is None:
            raise _Illegal()
        self.transitions += 1
        self._run_local_action(r, u, la, 1, rec, token)

    def _nc_read(self, r, u, la):
        rec = self.tables[u].local[_INVALID * 4]
        if rec is None:
            raise _Illegal()
        self.transitions += 1
        # A non-caching master always issues a bus READ with the cell's
        # signals, whatever the cell's op says.
        value, _ = self._execute(r, u, la, rec[2], rec[3], rec[4], 1, None)
        if value is None:
            raise _RowCrash("AssertionError")
        return value

    def _nc_write(self, r, u, la, token):
        rec = self.tables[u].local[_INVALID * 4 + 1]
        if rec is None:
            raise _Illegal()
        self.transitions += 1
        self._execute(r, u, la, rec[2], rec[3], rec[4], 2, token)

    def _flush_line(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is None:
            return
        self._evict(r, u, found[2], la)

    def _clean_line(self, r, u, la):
        found = self._lookup(r, u, la)
        if found is None:
            return
        rec = self.tables[u].local[self.st[found[2]] * 4 + 2]  # PASS
        if rec is None:
            return  # clean states have no PASS entry: caught internally
        self.transitions += 1
        self._run_local_action(r, u, la, 2, rec, None)

    # -- one scheduled event --------------------------------------------
    def step_event(self, r, unit, kind, la):
        try:
            if kind == _K_READ:
                if self.non_caching[unit]:
                    token = self._nc_read(r, unit, la)
                else:
                    token = self._proc_read(r, unit, la)
                self._emit_token(r, token)
            elif kind == _K_WRITE:
                # System.write allocates the version token *before* the
                # controller runs; a skipped event still burns a token.
                self.vctr[r] += 1
                token = int(self.vctr[r])
                if self.non_caching[unit]:
                    self._nc_write(r, unit, la, token)
                else:
                    self._proc_write(r, unit, la, token)
                self.lastv[r * self.L + la] = token
            elif self.non_caching[unit]:
                return  # replacement traffic skips cacheless boards
            elif kind == _K_FLUSH:
                self._flush_line(r, unit, la)
            else:
                self._clean_line(r, unit, la)
        except _Illegal:
            return  # inapplicable event: skip, partial effects persist

    # -- drivers ---------------------------------------------------------
    def run(self) -> None:
        if self.backend == "numpy":
            self._run_numpy()
        else:
            self._run_python()

    def _run_python(self) -> None:
        for r in range(self.R):
            for step, (unit, kind, la) in enumerate(self.pop.events[r]):
                self.events_attempted += 1
                try:
                    self.step_event(r, unit, kind, la)
                except _RowCrash as exc:
                    self.crash[r] = (step, exc.type_name)
                    break

    def _run_numpy(self) -> None:
        np = _np
        R, U, S, W, L = self.R, self.U, self.S, self.W, self.L
        max_events = max((len(e) for e in self.pop.events), default=0)
        n_ev = np.array(
            [len(e) for e in self.pop.events], dtype=np.int64
        )
        ev = np.zeros((R, max(max_events, 1), 3), dtype=np.int64)
        for r, schedule in enumerate(self.pop.events):
            for t, (unit, kind, la) in enumerate(schedule):
                ev[r, t] = (unit, kind, la)
        # Per-unit silent-hit tables: is (state, read/write) a legal
        # silent cell, and which state does it land in (CH unasserted)?
        sil_ok = np.zeros((U, 5, 2), dtype=bool)
        sil_ns = np.zeros((U, 5, 2), dtype=np.int64)
        for u in range(U):
            if self.non_caching[u]:
                continue
            for state in range(5):
                for kind in (0, 1):
                    rec = self.tables[u].local[state * 4 + kind]
                    if rec is not None and rec[5] == 0 and not rec[2] \
                            and not rec[3]:
                        sil_ok[u, state, kind] = True
                        sil_ns[u, state, kind] = rec[1]
        unit_cached = np.array(
            [not nc for nc in self.non_caching], dtype=bool
        )
        w_range = np.arange(W)
        alive = np.ones(R, dtype=bool)
        row_index = np.arange(R)

        for t in range(max_events):
            act = alive & (t < n_ev)
            if not act.any():
                break
            rows = row_index[act]
            self.events_attempted += int(rows.size)
            unit = ev[rows, t, 0]
            kind = ev[rows, t, 1]
            la = ev[rows, t, 2]
            cand = (kind <= 1) & unit_cached[unit]
            fast = np.zeros(rows.size, dtype=bool)
            if cand.any():
                crows = rows[cand]
                cu, ck, cla = unit[cand], kind[cand], la[cand]
                tag = cla // S
                set_index = cla % S
                base = ((crows * U + cu) * S + set_index) * W
                gather = base[:, None] + w_range
                match = (self.tg[gather] == tag[:, None]) & (
                    self.st[gather] != _INVALID
                )
                hit = match.any(axis=1)
                way = np.argmax(match, axis=1)
                hidx = base + way
                ok = hit & sil_ok[cu, self.st[hidx], ck]
                fast[np.nonzero(cand)[0]] = ok
                if ok.any():
                    fr = crows[ok]
                    fk = ck[ok]
                    fidx = hidx[ok]
                    fns = sil_ns[cu[ok], self.st[fidx], fk]
                    self.transitions += int(fr.size)
                    self.st[fidx] = fns
                    # LRU move-to-front across each hit set.
                    fgather = base[ok][:, None] + w_range
                    ranks = self.rk[fgather]
                    old = np.take_along_axis(ranks, way[ok][:, None], 1)
                    ranks += ranks < old
                    np.put_along_axis(ranks, way[ok][:, None], 0, 1)
                    self.rk[fgather] = ranks
                    rmask = fk == 0
                    if rmask.any():
                        rr = fr[rmask]
                        self.tokens_buf[rr, self.tok_n[rr]] = self.val[
                            fidx[rmask]
                        ]
                        self.tok_n[rr] += 1
                    wmask = fk == 1
                    if wmask.any():
                        wr = fr[wmask]
                        wla = cla[ok][wmask]
                        self.vctr[wr] += 1
                        token = self.vctr[wr]
                        self.val[fidx[wmask]] = token
                        self.lastv[wr * L + wla] = token
            # Everything else -- misses, bus traffic, flush/pass,
            # non-caching boards, illegal cells -- runs scalar.
            for i in np.nonzero(~fast)[0]:
                r = int(rows[i])
                try:
                    self.step_event(r, int(unit[i]), int(kind[i]), int(la[i]))
                except _RowCrash as exc:
                    self.crash[r] = (t, exc.type_name)
                    alive[r] = False

    # -- snapshots -------------------------------------------------------
    def snapshot_row(self, r: int) -> dict:
        caches = []
        for u in range(self.U):
            if self.non_caching[u]:
                caches.append(())
                continue
            lines = []
            for set_index in range(self.S):
                base = self._base(r, u, set_index)
                for w in range(self.W):
                    i = base + w
                    if self.st[i] != _INVALID:
                        la = int(self.tg[i]) * self.S + set_index
                        lines.append(
                            (
                                la,
                                _STATE_LETTERS[int(self.st[i])],
                                int(self.val[i]),
                            )
                        )
            lines.sort()
            caches.append(tuple(lines))
        if self.backend == "numpy":
            tokens = [
                int(x) for x in self.tokens_buf[r, : int(self.tok_n[r])]
            ]
        else:
            tokens = list(self.tokens[r])
        word = r * self.L
        return {
            "tokens": tokens,
            "caches": tuple(caches),
            "memory": tuple(
                int(self.mem[word + a]) for a in range(self.L)
            ),
            "version_counter": int(self.vctr[r]),
            "last_version": tuple(
                int(self.lastv[word + a]) for a in range(self.L)
            ),
            "bus_transactions": int(self.bus_txns[r]),
            "crash": self.crash[r],
        }


def run_population(
    pop: BatchPopulation, backend: Optional[str] = None
) -> BatchResult:
    """Run every row of a population through the kernel."""
    chosen = backend or default_backend()
    if chosen not in available_backends():
        raise ValueError(
            f"backend {chosen!r} unavailable; have {available_backends()}"
        )
    tables = lower_units(pop.units)
    kernel = _Kernel(pop, tables, chosen)
    kernel.run()
    return BatchResult(
        backend=chosen,
        rows=pop.rows,
        events=kernel.events_attempted,
        transitions=kernel.transitions,
        snapshots=[kernel.snapshot_row(r) for r in range(pop.rows)],
    )


# ---------------------------------------------------------------------------
# The oracle: one row on the real object engine, same snapshot shape.
# ---------------------------------------------------------------------------
def replay_row(pop: BatchPopulation, row: int) -> dict:
    """Replay one row on a real :class:`System` (the per-object engine)
    and snapshot it identically to the kernel -- the differential oracle
    for every batch run."""
    from repro.bus.futurebus import BusLivelockError
    from repro.cache.controller import NonCachingMaster
    from repro.core.protocol import IllegalTransitionError
    from repro.system.system import BoardSpec, System

    g = pop.geometry
    boards = [
        BoardSpec(
            unit_id=f"u{index}",
            protocol=make_protocol(spec),
            num_sets=g.num_sets,
            associativity=g.associativity,
            line_size=g.line_size,
        )
        for index, spec in enumerate(pop.units)
    ]
    system = System(boards, check=False, label=f"batch-row{row}")
    tokens: list = []
    crash = None
    for step, (unit_index, kind, la) in enumerate(pop.events[row]):
        unit = f"u{unit_index}"
        board = system.controllers[unit]
        if kind >= _K_FLUSH and isinstance(board, NonCachingMaster):
            continue
        try:
            if kind == _K_READ:
                tokens.append(system.read(unit, la * g.line_size))
            elif kind == _K_WRITE:
                system.write(unit, la * g.line_size)
            elif kind == _K_FLUSH:
                board.flush_line(la)
            else:
                board.clean_line(la)
        except IllegalTransitionError:
            continue
        except (AssertionError, RuntimeError, BusLivelockError) as exc:
            crash = (step, type(exc).__name__)
            break
    caches = []
    for board in system.controllers.values():
        if isinstance(board, NonCachingMaster):
            caches.append(())
            continue
        caches.append(
            tuple(
                sorted(
                    (la, state.letter, value)
                    for la, state, value in board.cached_lines()
                )
            )
        )
    return {
        "tokens": tokens,
        "caches": tuple(caches),
        "memory": tuple(system.memory.peek(a) for a in range(g.lines)),
        "version_counter": system._version_counter,
        "last_version": tuple(
            system.last_written_token(a) for a in range(g.lines)
        ),
        "bus_transactions": system.bus_stats.transactions,
        "crash": crash,
    }


def verify_rows(
    pop: BatchPopulation,
    result: BatchResult,
    rows: Optional[Sequence[int]] = None,
) -> list:
    """Diff kernel snapshots against object-engine replays; returns
    ``(row, key, kernel_value, oracle_value)`` mismatch tuples (empty
    means byte-equivalent)."""
    mismatches = []
    for row in rows if rows is not None else range(pop.rows):
        expected = replay_row(pop, row)
        got = result.snapshots[row]
        for key in expected:
            if got.get(key) != expected[key]:
                mismatches.append((row, key, got.get(key), expected[key]))
    return mismatches


# ---------------------------------------------------------------------------
# Synthetic populations (benchmarks, sweeps).
# ---------------------------------------------------------------------------
def make_synthetic_population(
    rows: int = 256,
    units: Sequence[str] = ("moesi", "moesi"),
    geometry: Optional[BatchGeometry] = None,
    events_per_row: int = 200,
    seed: int = 0,
    p_write: float = 0.35,
    p_flush: float = 0.02,
    p_pass: float = 0.02,
) -> BatchPopulation:
    """Seeded hit-heavy workload: each row gets its own deterministic
    schedule (pure function of ``(seed, row)``), all rows sharing one
    board mix and geometry so the kernel can run them as one block."""
    geometry = geometry or BatchGeometry()
    n_units = len(units)
    events = []
    for r in range(rows):
        rng = random.Random(seed * 1_000_003 + r)
        schedule = []
        for _ in range(events_per_row):
            roll = rng.random()
            if roll < p_write:
                kind = _K_WRITE
            elif roll < p_write + p_flush:
                kind = _K_FLUSH
            elif roll < p_write + p_flush + p_pass:
                kind = _K_PASS
            else:
                kind = _K_READ
            schedule.append(
                (
                    rng.randrange(n_units),
                    kind,
                    rng.randrange(geometry.lines),
                )
            )
        events.append(schedule)
    return BatchPopulation(
        units=tuple(units),
        geometry=geometry,
        events=events,
        row_ids=tuple(range(rows)),
    )

"""The ``repro bench`` suite: serial vs parallel wall time, explorer
throughput, written to ``BENCH_perf.json``.

The suite is fixed so successive PRs can track the trajectory:

* **explorer** -- single-worker exhaustive exploration of canonical
  mixes; reports states/sec (the hot-path metric the in-process
  optimisations move);
* **matrix** -- the full E1 compatibility matrix, serial then pooled;
* **des** -- the E2 protocol-comparison sweep, serial then pooled;
* **obs** -- observability overhead: the same heterogeneous run driven
  directly (pre-facade style), through :class:`repro.api.Session` with
  tracing disabled (the guard-only path, budgeted at <5%), and with
  tracing enabled;
* **batch** -- the struct-of-arrays population kernel: one hit-heavy
  population timed on every available backend and spot-verified against
  the object engine, gated at >=10x the baseline explorer's
  transitions/sec (calibration-normalized);
* **serve** -- the memoizing service tier: one spec executed cold
  (cache miss, full job body) then answered warm (cache hit), with the
  cache hit/miss counters and the warm-pool dispatch stats recorded.
  The memo-hit latency is gated against an absolute budget
  (:data:`MAX_SERVE_HIT_S`); the miss side stays informational;
* **serve_batch** -- continuous batching: a burst of compatible batch
  specs executed one at a time (the pre-batching serve path) and then
  as one coalesced population
  (:func:`repro.serve.jobs.execute_batch_payloads`), byte-compared,
  with the sustained requests/sec of both legs recorded.  On the numpy
  backend the speedup is gated at :data:`MIN_SERVE_BATCH_SPEEDUP`
  (host-normalized like the throughput gates); the pure-Python backend
  only saves the per-request fixed costs, so there the ratio stays
  informational.

Wall-clock speedups depend on the host (a single-core container cannot
beat serial); the JSON records ``cpu_count`` next to every ratio so the
numbers stay interpretable.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

__all__ = [
    "run_bench_suite",
    "write_bench_json",
    "load_baseline",
    "regression_report",
    "BENCH_FILENAME",
    "MIN_TPS_RATIO",
    "MAX_TRACED_OVERHEAD_PCT",
    "BATCH_MIN_EXPLORER_MULTIPLE",
    "MAX_SERVE_HIT_S",
    "MIN_SERVE_BATCH_SPEEDUP",
]

BENCH_FILENAME = "BENCH_perf.json"

#: Regression budgets the bench smoke job enforces: the explorer may not
#: lose more than 10% transitions/sec against the committed baseline,
#: and the traced-run observability tax must stay within budget.
MIN_TPS_RATIO = 0.9
MAX_TRACED_OVERHEAD_PCT = 25.0

#: The batch kernel's floor: aggregate transitions/sec must stay at
#: least this multiple of the committed explorer baseline
#: (calibration-normalized, like the explorer gate).
BATCH_MIN_EXPLORER_MULTIPLE = 10.0

#: Absolute budget on the serve tier's memo-hit latency.  A healthy hit
#: is a dict lookup (~1 microsecond); the budget sits far above timer
#: jitter but ~50x below the cold miss, so it fires only when "hit"
#: starts doing real work (hashing the payload, re-canonicalizing,
#: touching the pool) rather than on a noisy run.
MAX_SERVE_HIT_S = 500e-6

#: Floor on the continuous-batching speedup: a coalesced compatible
#: burst must sustain at least this many times the one-at-a-time
#: requests/sec.  Gated only on the numpy backend -- that is where
#: coalescing buys vectorization width on top of amortized fixed costs;
#: the scalar interpreter does the same per-event work either way.
MIN_SERVE_BATCH_SPEEDUP = 5.0

#: Explorer mixes timed by the hot-path section: (label, specs, lines).
EXPLORER_MIXES = (
    ("full-class+full-class", ("full-class", "full-class"), 1),
    ("moesi-scripted x2", ("moesi-scripted", "moesi-scripted"), 1),
    ("moesi x2 / 2 lines", ("moesi", "moesi"), 2),
)


#: Iterations of the calibration kernel (fixed, so ops/sec is comparable
#: across reports).
_CALIBRATION_N = 50_000


def _calibration_kernel(n: int = _CALIBRATION_N) -> int:
    """A fixed pure-Python kernel shaped like the explorer's inner loop
    (tuple-keyed dict lookups, small-int arithmetic, tuple builds).

    Timing it next to the explorer gives an interpreter-speed yardstick
    taken in the *same* host phase, so the regression gate can separate
    "this host/runner is slower right now" from "the code got slower".
    """
    table = {(i, j): (i, j) for i in range(5) for j in range(6)}
    acc = 0
    pair = (3, 4)
    for i in range(n):
        a, b = table[pair]
        acc += a + b + (i & 7)
        pair = (acc % 5, i % 6)
    return acc


def _bench_explorer(quick: bool) -> tuple[list[dict], float]:
    """Time the explorer mixes; returns ``(rows, calibration_ops_per_sec)``
    with the calibration kernel interleaved between exploration runs."""
    from repro.verify.explorer import Explorer

    mixes = EXPLORER_MIXES[:1] if quick else EXPLORER_MIXES
    repeats = 3
    rows = []
    cal_seconds = float("inf")
    for label, specs, lines in mixes:
        # Best-of-N: one exploration runs for tens of milliseconds, so a
        # single sample is at the mercy of scheduler noise; the minimum
        # is the stable throughput estimate the regression gate compares.
        seconds = float("inf")
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = Explorer(list(specs), lines=lines, label=label).run()
            seconds = min(seconds, time.perf_counter() - start)
            start = time.perf_counter()
            _calibration_kernel()
            cal_seconds = min(cal_seconds, time.perf_counter() - start)
        rows.append(
            {
                "mix": label,
                "states": result.states_explored,
                "transitions": result.transitions_taken,
                "seconds": round(seconds, 4),
                "states_per_sec": round(result.states_explored / seconds, 1),
                "transitions_per_sec": round(
                    result.transitions_taken / seconds, 1
                ),
            }
        )
    return rows, round(_CALIBRATION_N / cal_seconds, 1)


def _bench_matrix(workers: int, quick: bool) -> dict:
    from repro.verify.mixes import (
        class_member_mixes,
        homogeneous_foreign,
        incompatible_mixes,
        mutant_mixes,
        run_matrix,
    )

    cases = class_member_mixes() + homogeneous_foreign()
    if not quick:
        cases += incompatible_mixes() + mutant_mixes()
    start = time.perf_counter()
    serial_rows = run_matrix(cases)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = run_matrix(cases, workers=workers)
    parallel_s = time.perf_counter() - start
    return {
        "cases": len(cases),
        "all_ok": all(r["ok"] for r in serial_rows),
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def _bench_des(workers: int, quick: bool) -> dict:
    from repro.analysis.compare import protocol_comparison

    references = 1000 if quick else 4000
    start = time.perf_counter()
    serial_rows = protocol_comparison(references=references)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = protocol_comparison(
        references=references, workers=workers
    )
    parallel_s = time.perf_counter() - start
    return {
        "protocols": len(serial_rows),
        "references": references,
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def _bench_obs(quick: bool) -> dict:
    """Observability tax on one heterogeneous DES-free run.

    ``baseline`` builds and drives the System directly (how pre-facade
    callers did); ``disabled`` goes through the Session facade with no
    tracer (every emission site evaluates its ``is not None`` guard);
    ``traced`` records the full structured stream.  Legs are interleaved
    and the per-leg minimum taken, so a background stall cannot charge
    one leg only.
    """
    from repro.api import Session
    from repro.system.system import BoardSpec, System
    from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

    # Enough references that the facade's fixed per-session setup cost
    # cannot dominate the percentage on a fast run.
    references = 1500 if quick else 3000
    repeats = 3 if quick else 5
    config = SyntheticConfig(processors=4, p_shared=0.3, p_write=0.3)
    workload = SyntheticWorkload(config, seed=11).trace(references)
    protocols = ("moesi", "dragon", "berkeley", "write-through")
    units = workload.units()

    def _direct() -> None:
        system = System(
            [BoardSpec(unit, name)
             for unit, name in zip(units, protocols)],
            check=False,
        )
        system.run_trace(workload)
        system.check_coherence()
        system.report()

    def _facade(trace: bool) -> None:
        session = Session(label="bench-obs", trace=trace)
        session.run_experiment(
            protocols=protocols, workload=workload, check=False
        )

    def _time(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    # One untimed warm-up per leg: first calls pay lazy imports, table
    # compilation and interning that belong to neither leg's steady state.
    _direct()
    _facade(False)
    _facade(True)
    legs: dict[str, list[float]] = {
        "baseline": [], "disabled": [], "traced": []
    }
    for _ in range(repeats):
        legs["baseline"].append(_time(_direct))
        legs["disabled"].append(_time(lambda: _facade(False)))
        legs["traced"].append(_time(lambda: _facade(True)))
    baseline_s = min(legs["baseline"])
    disabled_s = min(legs["disabled"])
    traced_s = min(legs["traced"])
    return {
        "references": references,
        "repeats": repeats,
        "baseline_s": round(baseline_s, 4),
        "disabled_s": round(disabled_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_disabled_pct": round(
            (disabled_s - baseline_s) / baseline_s * 100.0, 2
        ),
        "overhead_traced_pct": round(
            (traced_s - baseline_s) / baseline_s * 100.0, 2
        ),
    }


def _bench_batch(quick: bool) -> dict:
    """Batch-kernel throughput: one hit-heavy single-unit population
    timed (best-of-N) on every available backend, with the first rows
    spot-verified against the object engine.

    The population is single-unit and replacement-free so nearly every
    event is a silent hit -- the regime the vectorized fast path exists
    for; transitions are identical across backends by construction."""
    from repro.perf.batch import (
        BatchGeometry,
        available_backends,
        default_backend,
        make_synthetic_population,
        run_population,
        verify_rows,
    )

    rows = 256 if quick else 1024
    events_per_row = 200
    pop = make_synthetic_population(
        rows=rows,
        units=("moesi",),
        geometry=BatchGeometry(4, 2, 32, 8),
        events_per_row=events_per_row,
        seed=0,
        p_write=0.35,
        p_flush=0.0,
        p_pass=0.0,
    )
    repeats = 2 if quick else 3
    sample = list(range(min(3, rows)))
    verified_ok = True
    backends = {}
    for backend in available_backends():
        seconds = float("inf")
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_population(pop, backend=backend)
            seconds = min(seconds, time.perf_counter() - start)
        verified_ok = verified_ok and not verify_rows(pop, result, rows=sample)
        backends[backend] = {
            "seconds": round(seconds, 4),
            "transitions": result.transitions,
            "transitions_per_sec": round(result.transitions / seconds, 1),
            # Vectorization coverage: fraction of events the backend fed
            # to the scalar interpreter (1.0 by definition for python).
            "scalar_residual": round(result.scalar_residual, 4),
        }
    return {
        "rows": rows,
        "events_per_row": events_per_row,
        "units": ["moesi"],
        "default_backend": default_backend(),
        "backends": backends,
        "verified_rows": len(sample),
        "verified_ok": verified_ok,
    }


def _bench_serve(quick: bool) -> dict:
    """Service-tier latency: the same spec answered by a cold execute
    (cache miss) and by the memo cache (hit), plus the counters the
    serve ``status`` command exposes.  The miss runs the real job body
    (:func:`repro.serve.jobs.execute_payload`) in-process and stays
    informational (its cost is the experiment, not the tier); the hit
    side is gated by :func:`regression_report` against the absolute
    :data:`MAX_SERVE_HIT_S` budget -- a hit/miss *ratio* would only
    measure noise, microseconds against tens of milliseconds."""
    from repro.perf.engine import pool_stats
    from repro.serve.cache import MemoCache
    from repro.serve.jobs import execute_payload
    from repro.specs import ExperimentSpec, WorkloadSpec

    references = 300 if quick else 1500
    spec = ExperimentSpec(
        workload=WorkloadSpec(references=references, seed=7), timed=True
    )
    canonical = spec.canonical()
    key = spec.content_hash()
    cache = MemoCache(capacity=8)

    miss_s = float("inf")
    payload = None
    for _ in range(2):
        lookup = cache.get(key)  # always a miss: counted, never stored
        assert lookup is None
        start = time.perf_counter()
        payload = execute_payload(canonical)
        miss_s = min(miss_s, time.perf_counter() - start)
    cache.put(key, payload)
    hit_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        hit = cache.get(key)
        hit_s = min(hit_s, time.perf_counter() - start)
    assert hit is payload
    return {
        "references": references,
        "spec_hash": key,
        "miss_s": round(miss_s, 4),
        "hit_s": round(hit_s, 6),
        "hit_speedup": round(miss_s / hit_s, 1) if hit_s else None,
        "cache": cache.stats(),
        "pool": pool_stats(),
    }


def _bench_serve_batch(quick: bool) -> dict:
    """Continuous-batching throughput: one compatible burst dispatched
    one spec at a time (the scalar serve path) and then as a single
    coalesced population, byte-compared payload by payload.

    The burst is what the daemon's admission window sees from
    ``ServeClient.execute_many``: N distinct-seed batch specs sharing a
    ``batch_key()``.  Both legs run in-process (no daemon, no sockets)
    so the ratio isolates the kernel-side win -- amortized population
    synthesis, one shared-tables epoch, one SoA run instead of N."""
    from repro.perf.batch import default_backend
    from repro.serve.jobs import execute_batch_payloads, execute_payload
    from repro.serve.protocol import payload_json
    from repro.specs import BatchSpec

    requests = 64 if quick else 256
    specs = [
        BatchSpec(
            protocols=("moesi",), rows=4, events_per_row=60, seed=seed
        )
        for seed in range(requests)
    ]
    canonicals = [spec.canonical() for spec in specs]
    assert len({spec.batch_key() for spec in specs}) == 1

    scalar_payloads = None
    scalar_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_payloads = [
            execute_payload(canonical) for canonical in canonicals
        ]
        scalar_s = min(scalar_s, time.perf_counter() - start)
    batched_payloads = None
    batched_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched_payloads = execute_batch_payloads(tuple(canonicals))
        batched_s = min(batched_s, time.perf_counter() - start)
    identical = [payload_json(p) for p in scalar_payloads] == [
        payload_json(p) for p in batched_payloads
    ]
    return {
        "requests": requests,
        "rows_per_request": 4,
        "events_per_row": 60,
        "backend": default_backend(),
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "scalar_rps": round(requests / scalar_s, 1),
        "batched_rps": round(requests / batched_s, 1),
        "speedup": round(scalar_s / batched_s, 2) if batched_s else None,
        "identical": identical,
    }


def load_baseline(path: str = BENCH_FILENAME) -> Optional[dict]:
    """The committed baseline report, or None when absent/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def regression_report(report: dict, baseline: dict) -> dict:
    """Compare a fresh bench report against a committed baseline.

    Per explorer mix present in both reports: the transitions/sec ratio
    (current / baseline; < :data:`MIN_TPS_RATIO` is a failure).  When
    both reports carry a ``calibration_ops_per_sec`` yardstick (see
    :func:`_calibration_kernel`) the gated ratio is *normalized* by the
    calibration ratio first -- raw transitions/sec on a CI runner or a
    throttled container says more about the host than the code, and the
    yardstick cancels host speed out.  The serial-vs-parallel speedups
    and the observability overheads are reported side by side; the
    traced overhead is additionally checked against
    :data:`MAX_TRACED_OVERHEAD_PCT` (an absolute budget, so it holds
    even when the baseline itself was over), and the serve tier's
    memo-hit latency against :data:`MAX_SERVE_HIT_S` (absolute,
    host-discounted the same way as the throughput gates).
    """
    failures: list[str] = []
    explorer_rows = []
    baseline_mixes = {row["mix"]: row for row in baseline.get("explorer", ())}
    cal_current = report.get("calibration_ops_per_sec")
    cal_baseline = baseline.get("calibration_ops_per_sec")
    # raw_ratio * host_factor = (tps_cur / cal_cur) / (tps_base / cal_base)
    host_factor = (
        cal_baseline / cal_current if cal_current and cal_baseline else None
    )
    for row in report["explorer"]:
        base = baseline_mixes.get(row["mix"])
        if base is None:
            continue
        ratio = (
            row["transitions_per_sec"] / base["transitions_per_sec"]
            if base["transitions_per_sec"]
            else None
        )
        normalized = (
            ratio * host_factor
            if ratio is not None and host_factor is not None
            else None
        )
        # A genuine code regression depresses both the raw and the
        # host-normalized ratio; a throttled host depresses only the raw
        # one and calibration drift only the normalized one.  Gating on
        # the better of the two flags real regressions without tripping
        # on either noise source alone.
        if ratio is not None and normalized is not None:
            gated = max(ratio, normalized)
        else:
            gated = normalized if normalized is not None else ratio
        explorer_rows.append(
            {
                "mix": row["mix"],
                "baseline_tps": base["transitions_per_sec"],
                "current_tps": row["transitions_per_sec"],
                "ratio": round(ratio, 3) if ratio is not None else None,
                "ratio_normalized": (
                    round(normalized, 3) if normalized is not None else None
                ),
            }
        )
        if gated is not None and gated < MIN_TPS_RATIO:
            kind = "normalized " if normalized is not None else ""
            failures.append(
                f"explorer {row['mix']}: {kind}transitions/sec regressed "
                f"to {gated:.2f}x baseline (budget {MIN_TPS_RATIO}x)"
            )
    speedups = {
        name: {
            "baseline": baseline.get(name, {}).get("speedup"),
            "current": report[name]["speedup"],
        }
        for name in ("matrix", "des")
    }
    traced = report["obs"]["overhead_traced_pct"]
    if traced > MAX_TRACED_OVERHEAD_PCT:
        failures.append(
            f"obs: traced overhead {traced:.2f}% exceeds budget "
            f"{MAX_TRACED_OVERHEAD_PCT:.0f}%"
        )
    batch = report.get("batch")
    batch_section = None
    if batch is not None:
        if not batch.get("verified_ok", True):
            failures.append(
                "batch: kernel diverged from the object engine on "
                "sampled rows"
            )
        best_tps = max(
            leg["transitions_per_sec"] for leg in batch["backends"].values()
        )

        def _gated(raw: Optional[float]) -> Optional[float]:
            if raw is None:
                return None
            if host_factor is None:
                return raw
            return max(raw, raw * host_factor)

        # Floor: the kernel's aggregate throughput against the committed
        # explorer baseline (the "10x the per-object engine" claim).
        explorer_base = baseline_mixes.get("full-class+full-class")
        multiple = (
            best_tps / explorer_base["transitions_per_sec"]
            if explorer_base and explorer_base["transitions_per_sec"]
            else None
        )
        gated_multiple = _gated(multiple)
        if (
            gated_multiple is not None
            and gated_multiple < BATCH_MIN_EXPLORER_MULTIPLE
        ):
            failures.append(
                f"batch: {gated_multiple:.1f}x the baseline explorer "
                f"transitions/sec, below the "
                f"{BATCH_MIN_EXPLORER_MULTIPLE:.0f}x floor"
            )
        # Budget: batch-vs-batch regression once a baseline carries a
        # batch section (same gate shape as the explorer rows). The gate
        # only fires like-for-like: quick runs use a smaller population
        # whose fixed setup costs amortize worse, so their tps is not
        # comparable to a full-suite baseline — the ratio is still
        # reported, and the explorer-multiple floor above applies in
        # both modes.
        base_batch = baseline.get("batch")
        ratio = None
        if base_batch:
            base_tps = max(
                leg["transitions_per_sec"]
                for leg in base_batch["backends"].values()
            )
            ratio = best_tps / base_tps if base_tps else None
            gated_ratio = _gated(ratio)
            if (
                base_batch.get("rows") == batch.get("rows")
                and gated_ratio is not None
                and gated_ratio < MIN_TPS_RATIO
            ):
                failures.append(
                    f"batch: transitions/sec regressed to "
                    f"{gated_ratio:.2f}x baseline (budget "
                    f"{MIN_TPS_RATIO}x)"
                )
        batch_section = {
            "current_tps": best_tps,
            "baseline_tps": (
                max(
                    leg["transitions_per_sec"]
                    for leg in base_batch["backends"].values()
                )
                if base_batch
                else None
            ),
            "ratio": round(ratio, 3) if ratio is not None else None,
            "explorer_multiple": (
                round(multiple, 1) if multiple is not None else None
            ),
            "explorer_multiple_normalized": (
                round(multiple * host_factor, 1)
                if multiple is not None and host_factor is not None
                else None
            ),
        }
    serve_batch = report.get("serve_batch")
    serve_batch_section = None
    if serve_batch is not None:
        if not serve_batch.get("identical", True):
            failures.append(
                "serve_batch: coalesced payloads diverged from "
                "one-at-a-time execution"
            )
        speedup = serve_batch.get("speedup")
        normalized_speedup = (
            speedup * host_factor
            if speedup is not None and host_factor is not None
            else None
        )
        # Same better-of-raw/normalized shape as the tps gates; only the
        # numpy backend carries the vectorization-width claim the 5x
        # floor encodes.
        if normalized_speedup is not None:
            gated_speedup = max(speedup, normalized_speedup)
        else:
            gated_speedup = speedup
        if (
            serve_batch.get("backend") == "numpy"
            and gated_speedup is not None
            and gated_speedup < MIN_SERVE_BATCH_SPEEDUP
        ):
            failures.append(
                f"serve_batch: coalesced burst only {gated_speedup:.1f}x "
                f"one-at-a-time dispatch, below the "
                f"{MIN_SERVE_BATCH_SPEEDUP:.0f}x floor"
            )
        serve_batch_section = {
            "backend": serve_batch.get("backend"),
            "requests": serve_batch.get("requests"),
            "baseline_speedup": baseline.get("serve_batch", {}).get(
                "speedup"
            ),
            "current_speedup": speedup,
            "current_speedup_normalized": (
                round(normalized_speedup, 2)
                if normalized_speedup is not None
                else None
            ),
        }
    serve = report.get("serve")
    serve_section = None
    if serve is not None and serve.get("hit_s") is not None:
        hit_s = serve["hit_s"]
        # Lower-is-better normalization, mirroring the tps gates: a
        # slower host (host_factor > 1) inflates the raw latency, so the
        # host-discounted value is hit_s / host_factor and the gate
        # takes whichever of the two clears the budget -- a real memo
        # regression inflates both.
        normalized_hit = (
            hit_s / host_factor if host_factor else None
        )
        gated_hit = (
            min(hit_s, normalized_hit) if normalized_hit is not None else hit_s
        )
        if gated_hit > MAX_SERVE_HIT_S:
            failures.append(
                f"serve: memo-hit latency {gated_hit * 1e6:.0f}us exceeds "
                f"the {MAX_SERVE_HIT_S * 1e6:.0f}us budget"
            )
        serve_section = {
            "baseline_hit_s": baseline.get("serve", {}).get("hit_s"),
            "current_hit_s": hit_s,
            "current_hit_s_normalized": (
                round(normalized_hit, 6)
                if normalized_hit is not None
                else None
            ),
        }
    return {
        "baseline_timestamp": baseline.get("timestamp"),
        "explorer": explorer_rows,
        "speedups": speedups,
        "obs": {
            "baseline_traced_pct": baseline.get("obs", {}).get(
                "overhead_traced_pct"
            ),
            "current_traced_pct": traced,
        },
        "batch": batch_section,
        "serve": serve_section,
        "serve_batch": serve_batch_section,
        "budgets": {
            "min_tps_ratio": MIN_TPS_RATIO,
            "max_traced_overhead_pct": MAX_TRACED_OVERHEAD_PCT,
            "min_batch_explorer_multiple": BATCH_MIN_EXPLORER_MULTIPLE,
            "max_serve_hit_s": MAX_SERVE_HIT_S,
            "min_serve_batch_speedup": MIN_SERVE_BATCH_SPEEDUP,
        },
        "failures": failures,
        "ok": not failures,
    }


def run_bench_suite(
    workers: Optional[int] = None,
    quick: bool = False,
    baseline_path: Optional[str] = None,
) -> dict:
    """Run the fixed suite; returns the machine-readable report dict.

    When a baseline report exists (``baseline_path``, defaulting to the
    committed ``BENCH_perf.json`` in the working directory) the report
    gains a ``regression`` section comparing against it.
    """
    from repro.perf.pool import resolve_workers

    effective = resolve_workers(workers) if workers is None else max(1, workers)
    baseline = load_baseline(baseline_path or BENCH_FILENAME)
    explorer_rows, calibration = _bench_explorer(quick)
    report = {
        "suite": "repro-bench",
        "version": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers": effective,
        "quick": quick,
        "calibration_ops_per_sec": calibration,
        "explorer": explorer_rows,
        "matrix": _bench_matrix(effective, quick),
        "des": _bench_des(effective, quick),
        "obs": _bench_obs(quick),
        "batch": _bench_batch(quick),
        "serve": _bench_serve(quick),
        "serve_batch": _bench_serve_batch(quick),
    }
    if baseline is not None:
        report["regression"] = regression_report(report, baseline)
    return report


def write_bench_json(report: dict, path: str = BENCH_FILENAME) -> str:
    """Persist the bench report; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path

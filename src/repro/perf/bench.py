"""The ``repro bench`` suite: serial vs parallel wall time, explorer
throughput, written to ``BENCH_perf.json``.

The suite is fixed so successive PRs can track the trajectory:

* **explorer** -- single-worker exhaustive exploration of canonical
  mixes; reports states/sec (the hot-path metric the in-process
  optimisations move);
* **matrix** -- the full E1 compatibility matrix, serial then pooled;
* **des** -- the E2 protocol-comparison sweep, serial then pooled;
* **obs** -- observability overhead: the same heterogeneous run driven
  directly (pre-facade style), through :class:`repro.api.Session` with
  tracing disabled (the guard-only path, budgeted at <5%), and with
  tracing enabled.

Wall-clock speedups depend on the host (a single-core container cannot
beat serial); the JSON records ``cpu_count`` next to every ratio so the
numbers stay interpretable.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

__all__ = ["run_bench_suite", "write_bench_json", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_perf.json"

#: Explorer mixes timed by the hot-path section: (label, specs, lines).
EXPLORER_MIXES = (
    ("full-class+full-class", ("full-class", "full-class"), 1),
    ("moesi-scripted x2", ("moesi-scripted", "moesi-scripted"), 1),
    ("moesi x2 / 2 lines", ("moesi", "moesi"), 2),
)


def _bench_explorer(quick: bool) -> list[dict]:
    from repro.verify.explorer import Explorer

    mixes = EXPLORER_MIXES[:1] if quick else EXPLORER_MIXES
    rows = []
    for label, specs, lines in mixes:
        start = time.perf_counter()
        result = Explorer(list(specs), lines=lines, label=label).run()
        seconds = time.perf_counter() - start
        rows.append(
            {
                "mix": label,
                "states": result.states_explored,
                "transitions": result.transitions_taken,
                "seconds": round(seconds, 4),
                "states_per_sec": round(result.states_explored / seconds, 1),
                "transitions_per_sec": round(
                    result.transitions_taken / seconds, 1
                ),
            }
        )
    return rows


def _bench_matrix(workers: int, quick: bool) -> dict:
    from repro.verify.mixes import (
        class_member_mixes,
        homogeneous_foreign,
        incompatible_mixes,
        mutant_mixes,
        run_matrix,
    )

    cases = class_member_mixes() + homogeneous_foreign()
    if not quick:
        cases += incompatible_mixes() + mutant_mixes()
    start = time.perf_counter()
    serial_rows = run_matrix(cases)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = run_matrix(cases, workers=workers)
    parallel_s = time.perf_counter() - start
    return {
        "cases": len(cases),
        "all_ok": all(r["ok"] for r in serial_rows),
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def _bench_des(workers: int, quick: bool) -> dict:
    from repro.analysis.compare import protocol_comparison

    references = 1000 if quick else 4000
    start = time.perf_counter()
    serial_rows = protocol_comparison(references=references)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = protocol_comparison(
        references=references, workers=workers
    )
    parallel_s = time.perf_counter() - start
    return {
        "protocols": len(serial_rows),
        "references": references,
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def _bench_obs(quick: bool) -> dict:
    """Observability tax on one heterogeneous DES-free run.

    ``baseline`` builds and drives the System directly (how pre-facade
    callers did); ``disabled`` goes through the Session facade with no
    tracer (every emission site evaluates its ``is not None`` guard);
    ``traced`` records the full structured stream.  Legs are interleaved
    and the per-leg minimum taken, so a background stall cannot charge
    one leg only.
    """
    from repro.api import Session
    from repro.system.system import BoardSpec, System
    from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

    references = 800 if quick else 3000
    repeats = 2 if quick else 4
    config = SyntheticConfig(processors=4, p_shared=0.3, p_write=0.3)
    workload = SyntheticWorkload(config, seed=11).trace(references)
    protocols = ("moesi", "dragon", "berkeley", "write-through")
    units = workload.units()

    def _direct() -> None:
        system = System(
            [BoardSpec(unit, name)
             for unit, name in zip(units, protocols)],
            check=False,
        )
        system.run_trace(workload)
        system.check_coherence()
        system.report()

    def _facade(trace: bool) -> None:
        session = Session(label="bench-obs", trace=trace)
        session.run_experiment(
            protocols=protocols, workload=workload, check=False
        )

    def _time(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    legs: dict[str, list[float]] = {
        "baseline": [], "disabled": [], "traced": []
    }
    for _ in range(repeats):
        legs["baseline"].append(_time(_direct))
        legs["disabled"].append(_time(lambda: _facade(False)))
        legs["traced"].append(_time(lambda: _facade(True)))
    baseline_s = min(legs["baseline"])
    disabled_s = min(legs["disabled"])
    traced_s = min(legs["traced"])
    return {
        "references": references,
        "repeats": repeats,
        "baseline_s": round(baseline_s, 4),
        "disabled_s": round(disabled_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_disabled_pct": round(
            (disabled_s - baseline_s) / baseline_s * 100.0, 2
        ),
        "overhead_traced_pct": round(
            (traced_s - baseline_s) / baseline_s * 100.0, 2
        ),
    }


def run_bench_suite(
    workers: Optional[int] = None, quick: bool = False
) -> dict:
    """Run the fixed suite; returns the machine-readable report dict."""
    from repro.perf.pool import resolve_workers

    effective = resolve_workers(workers) if workers is None else max(1, workers)
    return {
        "suite": "repro-bench",
        "version": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers": effective,
        "quick": quick,
        "explorer": _bench_explorer(quick),
        "matrix": _bench_matrix(effective, quick),
        "des": _bench_des(effective, quick),
        "obs": _bench_obs(quick),
    }


def write_bench_json(report: dict, path: str = BENCH_FILENAME) -> str:
    """Persist the bench report; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path

"""The ``repro bench`` suite: serial vs parallel wall time, explorer
throughput, written to ``BENCH_perf.json``.

The suite is fixed so successive PRs can track the trajectory:

* **explorer** -- single-worker exhaustive exploration of canonical
  mixes; reports states/sec (the hot-path metric the in-process
  optimisations move);
* **matrix** -- the full E1 compatibility matrix, serial then pooled;
* **des** -- the E2 protocol-comparison sweep, serial then pooled.

Wall-clock speedups depend on the host (a single-core container cannot
beat serial); the JSON records ``cpu_count`` next to every ratio so the
numbers stay interpretable.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

__all__ = ["run_bench_suite", "write_bench_json", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_perf.json"

#: Explorer mixes timed by the hot-path section: (label, specs, lines).
EXPLORER_MIXES = (
    ("full-class+full-class", ("full-class", "full-class"), 1),
    ("moesi-scripted x2", ("moesi-scripted", "moesi-scripted"), 1),
    ("moesi x2 / 2 lines", ("moesi", "moesi"), 2),
)


def _bench_explorer(quick: bool) -> list[dict]:
    from repro.verify.explorer import Explorer

    mixes = EXPLORER_MIXES[:1] if quick else EXPLORER_MIXES
    rows = []
    for label, specs, lines in mixes:
        start = time.perf_counter()
        result = Explorer(list(specs), lines=lines, label=label).run()
        seconds = time.perf_counter() - start
        rows.append(
            {
                "mix": label,
                "states": result.states_explored,
                "transitions": result.transitions_taken,
                "seconds": round(seconds, 4),
                "states_per_sec": round(result.states_explored / seconds, 1),
                "transitions_per_sec": round(
                    result.transitions_taken / seconds, 1
                ),
            }
        )
    return rows


def _bench_matrix(workers: int, quick: bool) -> dict:
    from repro.verify.mixes import (
        class_member_mixes,
        homogeneous_foreign,
        incompatible_mixes,
        mutant_mixes,
        run_matrix,
    )

    cases = class_member_mixes() + homogeneous_foreign()
    if not quick:
        cases += incompatible_mixes() + mutant_mixes()
    start = time.perf_counter()
    serial_rows = run_matrix(cases)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = run_matrix(cases, workers=workers)
    parallel_s = time.perf_counter() - start
    return {
        "cases": len(cases),
        "all_ok": all(r["ok"] for r in serial_rows),
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def _bench_des(workers: int, quick: bool) -> dict:
    from repro.analysis.compare import protocol_comparison

    references = 1000 if quick else 4000
    start = time.perf_counter()
    serial_rows = protocol_comparison(references=references)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = protocol_comparison(
        references=references, workers=workers
    )
    parallel_s = time.perf_counter() - start
    return {
        "protocols": len(serial_rows),
        "references": references,
        "rows_identical": serial_rows == parallel_rows,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def run_bench_suite(
    workers: Optional[int] = None, quick: bool = False
) -> dict:
    """Run the fixed suite; returns the machine-readable report dict."""
    from repro.perf.pool import resolve_workers

    effective = resolve_workers(workers) if workers is None else max(1, workers)
    return {
        "suite": "repro-bench",
        "version": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers": effective,
        "quick": quick,
        "explorer": _bench_explorer(quick),
        "matrix": _bench_matrix(effective, quick),
        "des": _bench_des(effective, quick),
    }


def write_bench_json(report: dict, path: str = BENCH_FILENAME) -> str:
    """Persist the bench report; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path

"""Warm persistent worker pool with chunked batch scheduling.

:mod:`repro.perf.pool` used to build a fresh :class:`ProcessPoolExecutor`
per ``parallel_map`` call; for the bench matrix and the explorer frontier
that start-up cost (fork + interpreter warm-up per call) dominated the
useful work.  This module keeps **one process-wide pool** alive across
calls:

* the pool is started lazily on first use and reused by every subsequent
  map (grown in place if a later call asks for more workers);
* it is shut down via :mod:`atexit`, and a forked child silently drops
  the inherited handle instead of tearing down its parent's workers;
* items are submitted in **chunks** of roughly
  ``len(items) / (4 * workers)`` so each future carries a batch and the
  per-item pickle/dispatch overhead is amortized, while keeping enough
  chunks in flight for load balancing;
* on a per-task timeout the stuck workers are **terminated** (not
  joined), so a hung task costs the caller ``timeout_s``, not the task's
  full runtime, and the next map starts from a fresh pool.

Everything here preserves the :func:`repro.perf.pool.parallel_map`
contract: deterministic input-order results, worker exceptions
propagating to the caller, and serial fallback handled by the caller on
:class:`BrokenProcessPool`.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence, TypeVar

from repro.core.transitions import tables_epoch

__all__ = [
    "ADAPTIVE_CUTOVER_S",
    "DEFAULT_MAX_WORKERS",
    "ParallelTimeoutError",
    "default_chunk_size",
    "dispatch_one",
    "get_executor",
    "note_batch_dispatch",
    "pool_stats",
    "resolve_workers",
    "run_chunked",
    "shutdown_pool",
]

T = TypeVar("T")
R = TypeVar("R")

#: Upper bound on the default worker count; beyond this the matrix's
#: longest single case dominates and extra processes only add start-up
#: cost.
DEFAULT_MAX_WORKERS = 8

#: Chunks submitted per worker: >1 for load balancing (a worker that
#: draws a cheap chunk picks up another), small enough that per-chunk
#: pickling stays negligible.
CHUNKS_PER_WORKER = 4

#: Projected whole-map cost (items x measured per-item seconds) below
#: which an ``"auto"`` map stays serial: dispatching to the pool costs
#: on the order of a hundred milliseconds of pickling and scheduling,
#: so fanning out cheaper maps than this *loses* wall time (the 0.91x /
#: 0.65x matrix/DES "speedups" the bench used to record).
ADAPTIVE_CUTOVER_S = 0.2


class ParallelTimeoutError(TimeoutError):
    """A pooled task exceeded its per-task timeout."""

    def __init__(self, index: int, timeout_s: float) -> None:
        super().__init__(
            f"parallel task #{index} exceeded {timeout_s:g}s timeout"
        )
        self.index = index
        self.timeout_s = timeout_s


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit, else cpu-bounded default."""
    if workers is not None:
        return max(1, workers)
    return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS))


def default_chunk_size(n_items: int, workers: int) -> int:
    """Items per chunk: ~``CHUNKS_PER_WORKER`` chunks per worker."""
    return max(1, -(-n_items // (CHUNKS_PER_WORKER * max(1, workers))))


# ---------------------------------------------------------------------------
# The process-wide warm pool.
# ---------------------------------------------------------------------------
_executor: Optional[ProcessPoolExecutor] = None
_executor_workers: int = 0
_executor_pid: Optional[int] = None
_executor_epoch: int = -1
_atexit_registered = False
_stats = {
    "pool_starts": 0,
    "pool_reuses": 0,
    "pool_refreshes": 0,
    "maps": 0,
    "chunks": 0,
    "dispatches": 0,
    "dispatch_degraded": 0,
    "batch_dispatches": 0,
    "batch_dispatch_rows": 0,
}


def pool_stats() -> dict[str, int]:
    """Counters for tests and the bench report (copy; safe to mutate)."""
    return dict(_stats)


def note_batch_dispatch(rows: int) -> None:
    """Record one coalesced serve dispatch of ``rows`` admitted requests
    (surfaced via :func:`pool_stats` and ``repro serve --status``)."""
    _stats["batch_dispatches"] += 1
    _stats["batch_dispatch_rows"] += rows


def get_executor(workers: int) -> ProcessPoolExecutor:
    """The shared pool, started lazily and reused across calls.

    A pool smaller than ``workers`` is replaced by one sized to the
    larger request (never shrunk: idle workers are cheap, forking is
    not).  Raises ``OSError``/``ValueError`` when process pools cannot
    run in this environment (restricted sandboxes) -- callers fall back
    to serial execution.
    """
    global _executor, _executor_workers, _executor_pid, _executor_epoch
    global _atexit_registered
    workers = max(1, workers)
    if _executor is not None and _executor_pid != os.getpid():
        # Forked child: the handle belongs to the parent.  Drop it
        # without shutdown -- a shutdown would poison the parent's pool.
        _executor = None
        _executor_workers = 0
    if _executor is not None and _executor_epoch != tables_epoch():
        # set_fast_tables was toggled after the workers forked: they
        # froze the old compiled-table setting.  Restart, don't reuse.
        _stats["pool_refreshes"] += 1
        shutdown_pool(wait=False)
    if _executor is not None:
        if _executor_workers >= workers:
            _stats["pool_reuses"] += 1
            return _executor
        workers = max(workers, _executor_workers)
        shutdown_pool(wait=False)
    executor = ProcessPoolExecutor(max_workers=workers)
    _executor = executor
    _executor_workers = workers
    _executor_pid = os.getpid()
    _executor_epoch = tables_epoch()
    _stats["pool_starts"] += 1
    if not _atexit_registered:
        atexit.register(shutdown_pool)
        _atexit_registered = True
    return executor


def shutdown_pool(wait: bool = False) -> None:
    """Shut down the warm pool (no-op if none is running).

    Called automatically at interpreter exit; callers invalidate the
    pool explicitly after a :class:`BrokenProcessPool` or a timeout so
    the next map starts fresh.
    """
    global _executor, _executor_workers, _executor_pid
    executor, _executor = _executor, None
    _executor_workers = 0
    _executor_pid = None
    if executor is not None:
        executor.shutdown(wait=wait, cancel_futures=True)


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Kill the pool's worker processes outright (timeout recovery).

    ``shutdown(wait=False)`` alone leaves a stuck worker running to
    completion in the background; terminating makes the cost of a hung
    task the timeout, not the task."""
    try:
        processes = list((executor._processes or {}).values())
    except Exception:  # pragma: no cover - implementation detail moved
        processes = []
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Worker-side body: map one chunk in-process (top-level: picklable)."""
    return [fn(item) for item in chunk]


def run_chunked(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    *,
    executor: Optional[ProcessPoolExecutor] = None,
    timeout_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``items`` on the warm pool in chunked batches.

    Results come back in input order regardless of completion order, so
    the output is byte-identical to ``[fn(x) for x in items]`` for pure
    ``fn``.  Worker exceptions propagate; ``BrokenProcessPool``
    propagates for the caller's serial fallback.  When no chunk
    completes within ``timeout_s`` the earliest pending task index is
    reported via :class:`ParallelTimeoutError`, the stuck workers are
    terminated and the pool is invalidated.
    """
    items = list(items)
    if not items:
        return []
    if executor is None:
        executor = get_executor(workers)
    if chunk_size is None:
        chunk_size = default_chunk_size(len(items), workers)
    chunks = [
        items[start:start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
    _stats["maps"] += 1
    _stats["chunks"] += len(chunks)
    futures = {
        executor.submit(_run_chunk, fn, chunk): index
        for index, chunk in enumerate(chunks)
    }
    results: dict[int, list[R]] = {}
    pending = set(futures)
    while pending:
        done, pending = wait(
            pending, timeout=timeout_s, return_when=FIRST_COMPLETED
        )
        if not done:
            # Nothing finished within the window: the earliest
            # still-pending chunk's first task is declared stuck.
            stuck_chunk = min(futures[f] for f in pending)
            for future in pending:
                future.cancel()
            _terminate_workers(executor)
            shutdown_pool(wait=False)
            raise ParallelTimeoutError(
                stuck_chunk * chunk_size, timeout_s or 0.0
            )
        for future in done:
            results[futures[future]] = future.result()
    return [
        result for index in range(len(chunks)) for result in results[index]
    ]


def dispatch_one(
    fn: Callable[[T], R],
    item: T,
    *,
    timeout_s: Optional[float] = None,
    workers: Optional[int] = None,
) -> R:
    """Run one task on the warm pool with the per-task timeout machinery.

    The single-job entry point the serve tier multiplexes requests
    through: each job is one chunk of one item, so a stuck job is
    terminated after ``timeout_s`` exactly like a stuck map chunk
    (:class:`ParallelTimeoutError`, workers killed, pool invalidated).
    Environments whose sandbox forbids process pools degrade to an
    in-process call -- the result is identical, but the deadline is then
    best-effort only (nothing can terminate the caller's own process).
    Worker exceptions propagate.
    """
    from concurrent.futures.process import BrokenProcessPool

    _stats["dispatches"] += 1
    try:
        executor = get_executor(resolve_workers(workers))
    except (OSError, ValueError):
        executor = None
    if executor is not None:
        try:
            return run_chunked(
                fn,
                [item],
                1,
                executor=executor,
                timeout_s=timeout_s,
                chunk_size=1,
            )[0]
        except ParallelTimeoutError:
            raise
        except BrokenProcessPool:
            shutdown_pool(wait=False)
    _stats["dispatch_degraded"] += 1
    return fn(item)

"""The E1 verification matrix across worker processes.

Each :class:`~repro.verify.mixes.MixCase` is one pooled task.  Cases whose
specs are plain registry names travel to the worker directly; cases built
from callables (the mutants, ad-hoc lambdas) cannot be pickled, so stamped
cases travel as their ``(suite_name, index)`` reference and are rebuilt in
the worker from :data:`repro.verify.mixes.SUITES`.  Unstamped callable
cases fall back to in-process execution, preserving row order.

The worker returns the same row dict :func:`repro.verify.mixes.matrix_row`
builds serially, so ``run_matrix(cases, workers=N)`` is byte-identical to
``run_matrix(cases)``.
"""

from __future__ import annotations

import functools
from typing import Optional, Sequence

from repro.perf.pool import ParallelConfig, parallel_map
from repro.verify.mixes import SUITES, MixCase, matrix_row

__all__ = ["run_batch_matrix", "run_matrix_parallel"]


def _case_descriptor(case: MixCase, kwargs: dict) -> Optional[tuple]:
    """A picklable recipe for re-running ``case`` in a worker, or None."""
    if case.suite_ref is not None:
        suite, index = case.suite_ref
        if suite in SUITES:
            return ("suite", suite, index, tuple(sorted(kwargs.items())))
    if all(isinstance(spec, str) for spec in case.specs):
        return (
            "specs",
            tuple(case.specs),
            case.expect_consistent,
            case.label,
            case.note,
            tuple(sorted(kwargs.items())),
        )
    return None


def _run_descriptor(descriptor: tuple) -> dict:
    """Worker entry point: rebuild the case, explore, emit its row."""
    if descriptor[0] == "suite":
        _, suite, index, kw_items = descriptor
        case = SUITES[suite]()[index]
    else:
        _, specs, expect_consistent, label, note, kw_items = descriptor
        case = MixCase(list(specs), expect_consistent, label=label, note=note)
    kwargs = dict(kw_items)
    return matrix_row(case, case.run(**kwargs))


def run_matrix_parallel(
    cases: Sequence[MixCase],
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    **kwargs,
) -> list[dict]:
    """Run the matrix on a process pool; rows in case order.

    Cases that cannot be described picklably run in-process; everything
    else fans out.  Results are spliced back into the original order.
    """
    descriptors = [_case_descriptor(case, kwargs) for case in cases]
    pooled = [d for d in descriptors if d is not None]
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    pooled_rows = iter(parallel_map(_run_descriptor, pooled, config))
    rows = []
    for case, descriptor in zip(cases, descriptors):
        if descriptor is None:
            rows.append(matrix_row(case, case.run(**kwargs)))
        else:
            rows.append(next(pooled_rows))
    return rows


# ---------------------------------------------------------------------------
# Batch-kernel verification matrix (PR 6).
# ---------------------------------------------------------------------------
def _batch_matrix_task(
    rows: int,
    events_per_row: int,
    n_units: int,
    verify_sample: int,
    backend: Optional[str],
    task: tuple,
) -> dict:
    """One verified batch population; task is ``(spec, seed, geometry)``."""
    from repro.perf.batch import (
        BatchGeometry,
        make_synthetic_population,
        run_population,
        verify_rows,
    )

    spec, seed, geometry = task
    pop = make_synthetic_population(
        rows=rows,
        units=(spec,) * n_units,
        geometry=BatchGeometry(*geometry),
        events_per_row=events_per_row,
        seed=seed,
    )
    result = run_population(pop, backend=backend)
    sample = list(range(min(verify_sample, pop.rows)))
    mismatches = verify_rows(pop, result, rows=sample)
    return {
        "protocol": spec,
        "backend": result.backend,
        "rows": result.rows,
        "transitions": result.transitions,
        "crashes": sum(
            1
            for snapshot in result.snapshots
            if snapshot["crash"] is not None
        ),
        "verified_rows": len(sample),
        "ok": not mismatches,
    }


def run_batch_matrix(
    specs: Optional[Sequence[str]] = None,
    rows: int = 32,
    events_per_row: int = 60,
    seed: int = 0,
    n_units: int = 2,
    geometry: tuple = (4, 2, 32, 8),
    verify_sample: int = 2,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> list[dict]:
    """The batch analog of the verification matrix: one population per
    batchable spec, each kernel run spot-checked row-by-row against the
    object engine (``verify_sample`` oracle replays per spec).

    Tasks travel as ``(spec, seed, geometry)`` tuples -- nothing
    object-shaped crosses the chunk protocol."""
    if specs is None:
        from repro.perf.batch import batchable_specs

        specs = batchable_specs()
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    task_fn = functools.partial(
        _batch_matrix_task, rows, events_per_row, n_units, verify_sample,
        backend,
    )
    tasks = [(spec, seed, tuple(geometry)) for spec in specs]
    return parallel_map(task_fn, tasks, config)

"""A deterministic, fault-tolerant process-pool map.

:func:`parallel_map` is the single primitive the rest of :mod:`repro.perf`
builds on.  Guarantees:

* **deterministic ordering** -- results come back in input order no
  matter which worker finished first;
* **per-task timeouts** -- a stuck case raises
  :class:`ParallelTimeoutError` naming the offending task instead of
  hanging the whole run;
* **graceful serial fallback** -- on a single-core host, with
  ``workers <= 1``, when the task function or an item cannot be pickled,
  or when the pool itself fails to start (restricted sandboxes), the map
  silently degrades to an in-process loop that produces the same results.

Worker exceptions propagate to the caller in both modes, so parallel and
serial execution are observationally equivalent (modulo wall time).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, TypeVar

__all__ = [
    "ParallelConfig",
    "ParallelTimeoutError",
    "parallel_map",
    "resolve_workers",
]

T = TypeVar("T")
R = TypeVar("R")

#: Upper bound on the default worker count; beyond this the matrix's
#: longest single case dominates and extra processes only add start-up
#: cost.
DEFAULT_MAX_WORKERS = 8


class ParallelTimeoutError(TimeoutError):
    """A pooled task exceeded its per-task timeout."""

    def __init__(self, index: int, timeout_s: float) -> None:
        super().__init__(
            f"parallel task #{index} exceeded {timeout_s:g}s timeout"
        )
        self.index = index
        self.timeout_s = timeout_s


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit, else cpu-bounded default."""
    if workers is not None:
        return max(1, workers)
    return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS))


@dataclasses.dataclass
class ParallelConfig:
    """Knobs for :func:`parallel_map`.

    mode:
        ``"auto"`` (pool when it can help, serial otherwise),
        ``"serial"`` (never fork), or ``"process"`` (insist on the pool;
        still falls back if the pool cannot run the work at all).
    """

    workers: Optional[int] = None
    mode: str = "auto"
    task_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown parallel mode {self.mode!r}")

    @property
    def effective_workers(self) -> int:
        return resolve_workers(self.workers)


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: Optional[ParallelConfig] = None,
    profiler=None,
) -> list[R]:
    """Map ``fn`` over ``items`` on a process pool; results in input order.

    Falls back to a serial in-process map whenever the pool cannot help
    (see module docstring).  Exceptions raised by ``fn`` propagate; a task
    overrunning ``config.task_timeout_s`` raises
    :class:`ParallelTimeoutError`.  An optional
    :class:`repro.obs.profile.Profiler` times the whole fan-out.
    """
    config = config or ParallelConfig()
    items = list(items)
    if profiler is not None:
        with profiler.region(
            "pool.map",
            items=len(items),
            workers=min(config.effective_workers, max(1, len(items))),
            mode=config.mode,
        ):
            return _map(fn, items, config)
    return _map(fn, items, config)


def _map(
    fn: Callable[[T], R],
    items: list[T],
    config: ParallelConfig,
) -> list[R]:
    if not items:
        return []
    workers = min(config.effective_workers, len(items))
    if config.mode == "serial" or workers <= 1:
        return _serial_map(fn, items)
    if not _picklable(fn, *items):
        return _serial_map(fn, items)
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):  # restricted sandbox / no semaphores
        return _serial_map(fn, items)
    try:
        with executor:
            futures = {
                executor.submit(fn, item): index
                for index, item in enumerate(items)
            }
            results: dict[int, R] = {}
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending,
                    timeout=config.task_timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing finished within the window: the earliest
                    # still-pending task is declared stuck.
                    stuck = min(futures[f] for f in pending)
                    for future in pending:
                        future.cancel()
                    raise ParallelTimeoutError(
                        stuck, config.task_timeout_s or 0.0
                    )
                for future in done:
                    results[futures[future]] = future.result()
            return [results[index] for index in range(len(items))]
    except BrokenProcessPool:
        # A worker died (OOM, signal): redo the whole map serially so the
        # caller still gets deterministic, complete results.
        return _serial_map(fn, items)

"""A deterministic, fault-tolerant process-pool map.

:func:`parallel_map` is the single primitive the rest of :mod:`repro.perf`
builds on.  Guarantees:

* **deterministic ordering** -- results come back in input order no
  matter which worker finished first;
* **per-task timeouts** -- a stuck case raises
  :class:`ParallelTimeoutError` naming the offending task instead of
  hanging the whole run;
* **graceful serial fallback** -- on a single-core host, with
  ``workers <= 1``, when the task function or an item cannot be pickled,
  or when the pool itself fails to start (restricted sandboxes), the map
  silently degrades to an in-process loop that produces the same results.
  When the caller explicitly asked for parallelism the degrade is not
  entirely silent: a once-per-reason :class:`RuntimeWarning` explains it.

Worker exceptions propagate to the caller in both modes, so parallel and
serial execution are observationally equivalent (modulo wall time).

Since the warm-pool rework the actual scheduling lives in
:mod:`repro.perf.engine`: one persistent process pool shared across
calls, fed in chunked batches.  This module keeps the policy -- mode
resolution, picklability probing, and the serial fallback ladder.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, TypeVar

from repro.deprecation import warn_once
from repro.perf.engine import (
    ADAPTIVE_CUTOVER_S,
    DEFAULT_MAX_WORKERS,
    ParallelTimeoutError,
    get_executor,
    resolve_workers,
    run_chunked,
    shutdown_pool,
)

__all__ = [
    "ParallelConfig",
    "ParallelTimeoutError",
    "parallel_map",
    "resolve_workers",
    "shutdown_pool",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclasses.dataclass
class ParallelConfig:
    """Knobs for :func:`parallel_map`.

    mode:
        ``"auto"`` (pool when it can help, serial otherwise),
        ``"serial"`` (never fork), or ``"process"`` (insist on the pool;
        still falls back if the pool cannot run the work at all).
    chunk_size:
        Items per submitted batch; default ``None`` lets the engine pick
        ``~len(items) / (4 * workers)``.
    """

    workers: Optional[int] = None
    mode: str = "auto"
    task_timeout_s: Optional[float] = None
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown parallel mode {self.mode!r}")

    @property
    def effective_workers(self) -> int:
        return resolve_workers(self.workers)


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def _warn_degrade(key: str, reason: str) -> None:
    warn_once(
        f"pool-degrade:{key}",
        f"parallel_map: requested parallelism degraded to serial ({reason})",
        category=RuntimeWarning,
        stacklevel=5,
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: Optional[ParallelConfig] = None,
    profiler=None,
) -> list[R]:
    """Map ``fn`` over ``items`` on a process pool; results in input order.

    Falls back to a serial in-process map whenever the pool cannot help
    (see module docstring).  Exceptions raised by ``fn`` propagate; a task
    overrunning ``config.task_timeout_s`` raises
    :class:`ParallelTimeoutError`.  An optional
    :class:`repro.obs.profile.Profiler` times the whole fan-out.
    """
    config = config or ParallelConfig()
    items = list(items)
    if profiler is not None:
        with profiler.region(
            "pool.map",
            items=len(items),
            workers=min(config.effective_workers, max(1, len(items))),
            mode=config.mode,
        ):
            return _map(fn, items, config)
    return _map(fn, items, config)


def _map(
    fn: Callable[[T], R],
    items: list[T],
    config: ParallelConfig,
) -> list[R]:
    if not items:
        return []
    workers = min(config.effective_workers, len(items))
    if config.mode == "serial" or workers <= 1:
        return _serial_map(fn, items)
    if not _picklable(fn, *items):
        _warn_degrade("pickle", "task or items not picklable")
        return _serial_map(fn, items)
    head: list[R] = []
    if config.mode == "auto" and config.task_timeout_s is None:
        # Adaptive cutover: an "auto" map only goes to the pool when the
        # work can plausibly pay the dispatch overhead back.  Without a
        # second core the pool can never win; otherwise run the first
        # item in-process as a cost probe and stay serial when the whole
        # map projects below the cutover.  Explicit ``mode="process"``
        # and per-task timeouts (which need the pool's termination
        # machinery) bypass the probe.
        if (os.cpu_count() or 1) < 2:
            return _serial_map(fn, items)
        start = time.perf_counter()
        head = [fn(items[0])]
        per_item_s = time.perf_counter() - start
        if per_item_s * len(items) < ADAPTIVE_CUTOVER_S:
            return head + _serial_map(fn, items[1:])
        items = items[1:]
        workers = min(workers, len(items))
    try:
        executor = get_executor(workers)
    except (OSError, ValueError):  # restricted sandbox / no semaphores
        _warn_degrade("pool-start", "process pool unavailable here")
        return head + _serial_map(fn, items)
    try:
        return head + run_chunked(
            fn,
            items,
            workers,
            executor=executor,
            timeout_s=config.task_timeout_s,
            chunk_size=config.chunk_size,
        )
    except BrokenProcessPool:
        # A worker died (OOM, signal): invalidate the warm pool and redo
        # the whole map serially so the caller still gets deterministic,
        # complete results.
        shutdown_pool(wait=False)
        _warn_degrade("broken-pool", "a worker process died mid-map")
        return head + _serial_map(fn, items)

"""Zero-copy distribution of lowered batch tables to pool workers.

:func:`repro.core.transitions.lower_batch_tables` is cheap to *read*
but expensive to *build*: it instantiates the protocol, probes every
table cell through a context harness, and verifies the lowering against
a fresh probe.  Before this module, every pool worker repeated that work
(or had the tables pickled at it per chunk) for every spec it touched.

Two distribution paths, both read-only:

* **fork inheritance** -- on fork start methods the parent's lowering
  cache is inherited copy-on-write for free; :func:`prime_fork_cache`
  simply fills it before the pool starts.
* **``multiprocessing.shared_memory``** -- :func:`publish_tables` packs
  every lowered spec into one flat int64 segment (a small JSON directory
  followed by fixed-width records); :func:`attach_tables` maps it
  zero-copy in a worker, rebuilds the record tuples from the mapped
  buffer (no second copy of the blob, no unpickling), and seeds the
  kernel's lowering cache so :func:`repro.perf.batch.lower_units` never
  probes a protocol again in that process.

Setting ``REPRO_SHARED_TABLES=1`` routes in-process lowering through a
self-published segment (:func:`process_tables`) -- the CI equivalence
job runs the whole oracle sweep through the packed form to prove the
round trip is lossless.

Layout (all little-endian int64 words unless noted)::

    word 0        magic (0x5250524f = "RPRO")
    word 1        header length H in bytes
    bytes 16..16+H  UTF-8 JSON: {"version": 1, "specs": [...],
                                 "names": [...], "non_caching": [...]}
    (padded to the next word boundary)
    then per spec, in directory order:
        20 local cells  x (legal, ns_ch, ns_nch, ca, im, bc, op)
        30 snoop cells  x (legal, ns_ch, ns_nch, ch, di, sl, bs,
                           abort_push, push_ca, push_im, push_bc)
"""

from __future__ import annotations

import atexit
import json
import os
from typing import Optional, Sequence

from repro.core.transitions import (
    BATCH_LOCAL_WIDTH,
    BATCH_SNOOP_WIDTH,
    N_BUS_EVENTS,
    N_LOCAL_EVENTS,
    N_STATES,
    BatchTables,
    lower_batch_tables,
)
from repro.protocols.registry import make_protocol, protocol_names

__all__ = [
    "ENV_FLAG",
    "SharedTablesError",
    "attach_tables",
    "detach_tables",
    "pack_tables",
    "prime_fork_cache",
    "process_tables",
    "publish_tables",
    "shared_tables_requested",
    "tables_for_epoch",
    "unlink_tables",
    "unpack_tables",
]

#: Environment switch: route all in-process lowering through a
#: self-published shared-memory segment (round-trip proof mode).
ENV_FLAG = "REPRO_SHARED_TABLES"

_MAGIC = 0x5250524F  # "RPRO"
_HEADER_WORDS = 2
_LOCAL_CELLS = N_STATES * N_LOCAL_EVENTS
_SNOOP_CELLS = N_STATES * N_BUS_EVENTS
_LOCAL_REC = 1 + BATCH_LOCAL_WIDTH  # legal flag + fields
_SNOOP_REC = 1 + BATCH_SNOOP_WIDTH
PER_SPEC_WORDS = _LOCAL_CELLS * _LOCAL_REC + _SNOOP_CELLS * _SNOOP_REC


class SharedTablesError(RuntimeError):
    """A shared-tables segment is malformed or unavailable."""


def shared_tables_requested() -> bool:
    """Whether :data:`ENV_FLAG` asks for shared-memory table routing."""
    return bool(os.environ.get(ENV_FLAG))


def _lower_all(specs: Optional[Sequence[str]] = None) -> dict:
    """Directly lower every (given or batchable) registry spec --
    the publisher's own scan, never routed back through the kernel's
    cache (no recursion)."""
    out = {}
    for spec in specs if specs is not None else protocol_names():
        tables = lower_batch_tables(make_protocol(spec))
        if tables is not None:
            out[spec] = tables
    return out


# ---------------------------------------------------------------------------
# Packing: BatchTables <-> flat int64 words.
# ---------------------------------------------------------------------------
def pack_tables(tables: dict) -> bytes:
    """Serialize ``{spec: BatchTables}`` into the flat segment image."""
    from array import array

    specs = sorted(tables)
    header = json.dumps(
        {
            "version": 1,
            "specs": specs,
            "names": [tables[s].name for s in specs],
            "non_caching": [int(tables[s].non_caching) for s in specs],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    pad = (-len(header)) % 8
    words = array("q", [_MAGIC, len(header)])
    payload = array("q")
    for spec in specs:
        t = tables[spec]
        for rec in t.local:
            if rec is None:
                payload.extend([0] * _LOCAL_REC)
            else:
                payload.append(1)
                payload.extend(int(x) for x in rec)
        for rec in t.snoop:
            if rec is None:
                payload.extend([0] * _SNOOP_REC)
            else:
                payload.append(1)
                payload.extend(int(x) for x in rec)
    return (
        words.tobytes() + header + b"\0" * pad + payload.tobytes()
    )


def unpack_tables(buf) -> dict:
    """Rebuild ``{spec: BatchTables}`` from a segment buffer.

    ``buf`` may be any buffer object (a mapped ``SharedMemory.buf``
    included); the int64 words are read through a zero-copy
    ``memoryview`` cast, so the blob itself is never duplicated."""
    view = memoryview(buf)
    words = view.cast("q")
    if len(words) < _HEADER_WORDS or words[0] != _MAGIC:
        raise SharedTablesError("not a shared-tables segment")
    header_len = words[1]
    header_end = _HEADER_WORDS * 8 + header_len
    try:
        header = json.loads(bytes(view[_HEADER_WORDS * 8:header_end]))
    except ValueError as error:
        raise SharedTablesError(f"bad segment directory: {error}") from None
    if header.get("version") != 1:
        raise SharedTablesError(
            f"unsupported segment version {header.get('version')!r}"
        )
    specs = header["specs"]
    payload_word = (header_end + 7) // 8
    need = payload_word + len(specs) * PER_SPEC_WORDS
    if len(words) < need:
        raise SharedTablesError(
            f"segment truncated: {len(words)} words, need {need}"
        )
    out = {}
    pos = payload_word
    for index, spec in enumerate(specs):
        local = []
        for _ in range(_LOCAL_CELLS):
            if words[pos]:
                local.append(tuple(words[pos + 1:pos + _LOCAL_REC]))
            else:
                local.append(None)
            pos += _LOCAL_REC
        snoop = []
        for _ in range(_SNOOP_CELLS):
            if words[pos]:
                snoop.append(tuple(words[pos + 1:pos + _SNOOP_REC]))
            else:
                snoop.append(None)
            pos += _SNOOP_REC
        out[spec] = BatchTables(
            name=header["names"][index],
            non_caching=bool(header["non_caching"][index]),
            local=tuple(local),
            snoop=tuple(snoop),
        )
    return out


# ---------------------------------------------------------------------------
# Shared-memory lifecycle.
# ---------------------------------------------------------------------------
_PUBLISHED: dict = {}  # name -> SharedMemory we created (unlink on exit)
_ATTACHED: dict = {}  # name -> (SharedMemory, {spec: BatchTables})
_atexit_registered = False


def _untrack(shm) -> None:
    """Detach an attached-only segment from the resource tracker: the
    tracker would otherwise unlink it when *this* process exits, yanking
    the mapping out from under the publisher (bpo-38119)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations
        pass


def _cleanup() -> None:
    for name in list(_ATTACHED):
        detach_tables(name)
    for name in list(_PUBLISHED):
        unlink_tables(name)


def publish_tables(specs: Optional[Sequence[str]] = None) -> str:
    """Lower the given specs (default: every batchable registry spec),
    pack them, and publish the image as a read-only shared-memory
    segment.  Returns the segment name for workers to attach; the
    segment is unlinked at interpreter exit (or via
    :func:`unlink_tables`)."""
    global _atexit_registered
    from multiprocessing.shared_memory import SharedMemory

    image = pack_tables(_lower_all(specs))
    shm = SharedMemory(create=True, size=len(image))
    shm.buf[: len(image)] = image
    _PUBLISHED[shm.name] = shm
    if not _atexit_registered:
        atexit.register(_cleanup)
        _atexit_registered = True
    return shm.name


def attach_tables(name: str, seed_kernel_cache: bool = True) -> dict:
    """Map a published segment and rebuild its tables (memoized per
    process per segment).  With ``seed_kernel_cache`` the result is
    pushed into :data:`repro.perf.batch._LOWERED`, so every subsequent
    ``lower_units`` in this worker is a dictionary hit -- no protocol
    probing, no pickled tables on the task wire."""
    cached = _ATTACHED.get(name)
    if cached is None:
        from multiprocessing.shared_memory import SharedMemory

        if name in _PUBLISHED:
            shm = _PUBLISHED[name]
            tables = unpack_tables(shm.buf)
            cached = (None, tables)  # publisher keeps its own handle
        else:
            try:
                shm = SharedMemory(name=name, track=False)
            except TypeError:  # Python < 3.13: no track parameter
                shm = SharedMemory(name=name)
                _untrack(shm)
            tables = unpack_tables(shm.buf)
            cached = (shm, tables)
        _ATTACHED[name] = cached
    if seed_kernel_cache:
        from repro.perf import batch

        for spec, tables in cached[1].items():
            batch._LOWERED.setdefault(spec, tables)
    return dict(cached[1])


def detach_tables(name: str) -> None:
    """Drop this process's mapping of a segment (no-op if unknown)."""
    cached = _ATTACHED.pop(name, None)
    if cached is not None and cached[0] is not None:
        try:
            cached[0].close()
        except Exception:  # pragma: no cover - already closed
            pass


def unlink_tables(name: str) -> None:
    """Destroy a segment this process published (no-op otherwise).
    Existing mappings stay valid; new attaches fail and callers fall
    back to direct lowering."""
    detach_tables(name)
    shm = _PUBLISHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass


# ---------------------------------------------------------------------------
# In-process routing (the REPRO_SHARED_TABLES env flag).
# ---------------------------------------------------------------------------
_PROCESS_TABLES: Optional[dict] = None
_BUILDING = False


def process_tables() -> dict:
    """The process-wide shared-tables map used when :data:`ENV_FLAG` is
    set: published once into shared memory, attached back from the
    mapped buffer (a full pack/unpack round trip), then served from the
    per-process memo.  Falls back to direct lowering when shared memory
    is unavailable (restricted sandboxes).  Returns ``{}`` while the
    publisher itself is lowering, so its scan cannot recurse."""
    global _PROCESS_TABLES, _BUILDING
    if _PROCESS_TABLES is not None:
        return _PROCESS_TABLES
    if _BUILDING:
        return {}
    _BUILDING = True
    try:
        try:
            name = publish_tables()
            _PROCESS_TABLES = attach_tables(name, seed_kernel_cache=False)
        except (ImportError, OSError, PermissionError):
            _PROCESS_TABLES = _lower_all()
    finally:
        _BUILDING = False
    return _PROCESS_TABLES


def tables_for_epoch() -> Optional[str]:
    """The long-lived publish-once segment for serving tiers.

    Unlike the per-sweep publish/unlink in
    :func:`repro.perf.sweeps.batch_protocol_sweep`, a daemon coalescing
    requests wants one segment for its whole life: published on first
    use, reused for every population, and republished only when
    ``set_fast_tables`` bumps the tables epoch (the same signal that
    restarts the warm pool, so workers never attach stale tables).
    Returns ``None`` where shared memory is unavailable -- workers then
    lower directly, which is correct, just slower."""
    global _EPOCH_SEGMENT
    from repro.core.transitions import tables_epoch

    epoch = tables_epoch()
    if _EPOCH_SEGMENT is not None and _EPOCH_SEGMENT[0] == epoch:
        return _EPOCH_SEGMENT[1]
    if _EPOCH_SEGMENT is not None and _EPOCH_SEGMENT[1] is not None:
        unlink_tables(_EPOCH_SEGMENT[1])
    try:
        name: Optional[str] = publish_tables()
    except Exception:
        name = None
    _EPOCH_SEGMENT = (epoch, name)
    return name


_EPOCH_SEGMENT: Optional[tuple] = None


def prime_fork_cache(specs: Optional[Sequence[str]] = None) -> int:
    """Fill the kernel's lowering cache in the parent *before* the pool
    forks, so workers inherit the compiled tables copy-on-write -- the
    zero-ceremony path on fork start methods.  Returns the number of
    specs now cached."""
    from repro.perf import batch

    try:
        names = list(specs) if specs is not None else None
        for spec, tables in _lower_all(names).items():
            batch._LOWERED.setdefault(spec, tables)
    except Exception:  # pragma: no cover - registry import failures
        pass
    return sum(1 for t in batch._LOWERED.values() if t is not None)

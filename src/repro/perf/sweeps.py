"""The Arch85-style DES experiment sweeps across worker processes.

Each task regenerates or receives its workload deterministically and runs
one timed simulation, so pooled rows are identical to the serial sweeps
in :mod:`repro.analysis.compare` -- only the wall clock changes.

Tasks travel compactly: the shared workload (a trace, or better, a
:func:`synthetic_trace_recipe` tuple the worker regenerates from) is
bound to the task function once via :func:`functools.partial`, so the
chunk protocol pickles it per chunk instead of per item, and the items
themselves are bare spec strings, labels, or floats.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Optional, Sequence

from repro.analysis.compare import (
    DEFAULT_PROTOCOLS,
    HETEROGENEOUS_MIXES,
    comparison_row,
    heterogeneous_row,
    update_vs_invalidate_row,
)
from repro.perf.pool import ParallelConfig, parallel_map
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Trace

__all__ = [
    "protocol_comparison_parallel",
    "update_vs_invalidate_parallel",
    "heterogeneous_parallel",
    "batch_protocol_sweep",
    "synthetic_trace_recipe",
]


def synthetic_trace_recipe(
    config: SyntheticConfig, seed: int, references: int
) -> tuple:
    """A compact, picklable recipe for a synthetic trace.

    Workers rebuild (and memoize) the trace from this tuple instead of
    unpickling the full reference stream per task."""
    return (
        tuple(sorted(dataclasses.asdict(config).items())),
        seed,
        references,
    )


_TRACE_CACHE: dict[tuple, Trace] = {}


def _resolve_trace(trace_ref) -> Trace:
    """A trace from either a real :class:`Trace` or a recipe tuple."""
    if isinstance(trace_ref, Trace):
        return trace_ref
    trace = _TRACE_CACHE.get(trace_ref)
    if trace is None:
        config_items, seed, references = trace_ref
        config = SyntheticConfig(**dict(config_items))
        trace = SyntheticWorkload(config, seed=seed).trace(references)
        _TRACE_CACHE[trace_ref] = trace
    return trace


def _comparison_task(trace_ref, timed: bool, protocol: str) -> dict:
    return comparison_row(protocol, _resolve_trace(trace_ref), timed)


def _comparison_traced_task(trace_ref, timed: bool, protocol: str) -> dict:
    from repro.analysis.compare import comparison_row_traced

    return comparison_row_traced(protocol, _resolve_trace(trace_ref), timed)


def protocol_comparison_parallel(
    trace: Optional[Trace],
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    timed: bool = True,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    traced: bool = False,
    profiler=None,
    recipe: Optional[tuple] = None,
) -> list[dict]:
    """E2 with one pooled task per protocol; rows in protocol order.

    With ``traced=True`` each task returns ``{"row", "events"}`` -- the
    exported per-protocol trace stream, identical to what the serial
    path produces, for order-preserving absorption by the caller.  A
    ``recipe`` (see :func:`synthetic_trace_recipe`) replaces the pickled
    trace on the wire; tasks are then bare protocol spec strings."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    trace_ref = recipe if recipe is not None else trace
    if trace_ref is None:
        raise ValueError("need a trace or a recipe")
    task_fn = functools.partial(
        _comparison_traced_task if traced else _comparison_task,
        trace_ref,
        timed,
    )
    return parallel_map(task_fn, list(protocols), config, profiler=profiler)


def _update_vs_invalidate_task(
    references: int, seed: int, processors: int, p_shared: float
) -> dict:
    return update_vs_invalidate_row(p_shared, references, seed, processors)


def update_vs_invalidate_parallel(
    sharing_levels: Sequence[float],
    references: int = 3000,
    seed: int = 11,
    processors: int = 4,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> list[dict]:
    """E3 with one pooled task per sharing level (tasks are bare floats;
    the fixed sweep parameters ride on the task function)."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    task_fn = functools.partial(
        _update_vs_invalidate_task, references, seed, processors
    )
    return parallel_map(task_fn, list(sharing_levels), config)


def _heterogeneous_task(trace_ref, label: str) -> dict:
    return heterogeneous_row(
        label, HETEROGENEOUS_MIXES[label], _resolve_trace(trace_ref)
    )


def heterogeneous_parallel(
    trace: Optional[Trace],
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    recipe: Optional[tuple] = None,
) -> list[dict]:
    """E8 with one pooled task per board mix (tasks are mix labels; the
    worker rebuilds the mix from :data:`HETEROGENEOUS_MIXES`)."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    trace_ref = recipe if recipe is not None else trace
    if trace_ref is None:
        raise ValueError("need a trace or a recipe")
    task_fn = functools.partial(_heterogeneous_task, trace_ref)
    return parallel_map(task_fn, list(HETEROGENEOUS_MIXES), config)


# ---------------------------------------------------------------------------
# Batch-kernel population sweep (PR 6).
# ---------------------------------------------------------------------------
def _batch_task(
    rows: int,
    events_per_row: int,
    n_units: int,
    backend: Optional[str],
    tables_shm: Optional[str],
    task: tuple,
) -> dict:
    """One pooled batch run; the task is ``(spec, seed, geometry)`` --
    a spec string plus integers, nothing object-shaped on the wire.

    ``tables_shm`` names the parent's shared-memory tables segment; the
    worker attaches once (memoized per process) and seeds the lowering
    cache from the mapping, so no worker ever re-derives -- or receives
    a pickled copy of -- the compiled transition tables."""
    from repro.perf.batch import (
        BatchGeometry,
        make_synthetic_population,
        run_population,
    )

    if tables_shm is not None:
        from repro.perf.shared import attach_tables

        try:
            attach_tables(tables_shm)
        except Exception:
            pass  # segment gone or unsupported: lower directly below

    spec, seed, geometry = task
    pop = make_synthetic_population(
        rows=rows,
        units=(spec,) * n_units,
        geometry=BatchGeometry(*geometry),
        events_per_row=events_per_row,
        seed=seed,
    )
    start = time.perf_counter()
    result = run_population(pop, backend=backend)
    seconds = time.perf_counter() - start
    crashes = sum(
        1 for snapshot in result.snapshots if snapshot["crash"] is not None
    )
    return {
        "protocol": spec,
        "backend": result.backend,
        "rows": result.rows,
        "events": result.events,
        "transitions": result.transitions,
        "transitions_per_sec": round(result.transitions / seconds, 1)
        if seconds > 0
        else 0.0,
        "crashes": crashes,
    }


def batch_protocol_sweep(
    protocols: Optional[Sequence[str]] = None,
    rows: int = 64,
    events_per_row: int = 100,
    seed: int = 0,
    n_units: int = 2,
    geometry: tuple = (4, 2, 32, 8),
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> list[dict]:
    """One batch-kernel population per protocol, fanned over the pool.

    ``protocols`` defaults to every registry spec the lowering accepts
    (:func:`repro.perf.batch.batchable_specs`).  Each task ships as a
    ``(spec, seed, geometry)`` tuple; the worker synthesizes the
    population and runs the struct-of-arrays kernel over it."""
    if protocols is None:
        from repro.perf.batch import batchable_specs

        protocols = batchable_specs()
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    from repro.perf.shared import publish_tables, unlink_tables

    try:
        tables_shm = publish_tables(list(protocols))
    except Exception:
        tables_shm = None  # no shared memory here: workers lower directly
    task_fn = functools.partial(
        _batch_task, rows, events_per_row, n_units, backend, tables_shm
    )
    tasks = [(spec, seed, tuple(geometry)) for spec in protocols]
    try:
        return parallel_map(task_fn, tasks, config)
    finally:
        if tables_shm is not None:
            unlink_tables(tables_shm)

"""The Arch85-style DES experiment sweeps across worker processes.

Each task regenerates or receives its workload deterministically and runs
one timed simulation, so pooled rows are identical to the serial sweeps
in :mod:`repro.analysis.compare` -- only the wall clock changes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.compare import (
    DEFAULT_PROTOCOLS,
    HETEROGENEOUS_MIXES,
    comparison_row,
    heterogeneous_row,
    update_vs_invalidate_row,
)
from repro.perf.pool import ParallelConfig, parallel_map
from repro.workloads.trace import Trace

__all__ = [
    "protocol_comparison_parallel",
    "update_vs_invalidate_parallel",
    "heterogeneous_parallel",
]


def _comparison_task(task: tuple) -> dict:
    protocol, trace, timed = task
    return comparison_row(protocol, trace, timed)


def _comparison_traced_task(task: tuple) -> dict:
    from repro.analysis.compare import comparison_row_traced

    protocol, trace, timed = task
    return comparison_row_traced(protocol, trace, timed)


def protocol_comparison_parallel(
    trace: Trace,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    timed: bool = True,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    traced: bool = False,
    profiler=None,
) -> list[dict]:
    """E2 with one pooled task per protocol; rows in protocol order.

    With ``traced=True`` each task returns ``{"row", "events"}`` -- the
    exported per-protocol trace stream, identical to what the serial
    path produces, for order-preserving absorption by the caller."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    tasks = [(protocol, trace, timed) for protocol in protocols]
    task_fn = _comparison_traced_task if traced else _comparison_task
    return parallel_map(task_fn, tasks, config, profiler=profiler)


def _update_vs_invalidate_task(task: tuple) -> dict:
    p_shared, references, seed, processors = task
    return update_vs_invalidate_row(p_shared, references, seed, processors)


def update_vs_invalidate_parallel(
    sharing_levels: Sequence[float],
    references: int = 3000,
    seed: int = 11,
    processors: int = 4,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> list[dict]:
    """E3 with one pooled task per sharing level."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    tasks = [
        (p_shared, references, seed, processors)
        for p_shared in sharing_levels
    ]
    return parallel_map(_update_vs_invalidate_task, tasks, config)


def _heterogeneous_task(task: tuple) -> dict:
    label, protocols, trace = task
    return heterogeneous_row(label, protocols, trace)


def heterogeneous_parallel(
    trace: Trace,
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> list[dict]:
    """E8 with one pooled task per board mix."""
    config = ParallelConfig(workers=workers, task_timeout_s=task_timeout_s)
    tasks = [
        (label, protocols, trace)
        for label, protocols in HETEROGENEOUS_MIXES.items()
    ]
    return parallel_map(_heterogeneous_task, tasks, config)

"""Concrete consistency protocols.

The MOESI class itself (:class:`~repro.protocols.moesi.MoesiProtocol`, with
pluggable selection policies), the two prior protocols the paper shows fall
within the class (Berkeley, Dragon), the three that require the BS
adaptation (Write-Once, Illinois, Firefly), and the simpler class members
(write-through caches and non-caching boards).
"""

from repro.protocols.berkeley import BerkeleyProtocol
from repro.protocols.dragon import DragonProtocol
from repro.protocols.firefly import FireflyProtocol
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.moesi import MoesiProtocol
from repro.protocols.noncaching import NonCachingProtocol
from repro.protocols.registry import (
    PROTOCOL_FACTORIES,
    make_protocol,
    protocol_names,
)
from repro.protocols.write_once import WriteOnceProtocol
from repro.protocols.write_through import WriteThroughProtocol

__all__ = [
    "BerkeleyProtocol",
    "DragonProtocol",
    "FireflyProtocol",
    "IllinoisProtocol",
    "MoesiProtocol",
    "NonCachingProtocol",
    "WriteOnceProtocol",
    "WriteThroughProtocol",
    "PROTOCOL_FACTORIES",
    "make_protocol",
    "protocol_names",
]

"""The Berkeley protocol (paper section 4.1, Table 3).

Defined by Katz et al. for the SPUR multiprocessor.  Its states map into
M, O, S and I -- there is no E state -- and it is a pure-invalidation
protocol: a write to a non-exclusive line sends an address-only invalidate
(CA, IM, no data) and takes M; a read miss always lands in S.

The paper notes one difference from [Katz85]: the CH signal is generated
here for compatibility with the MOESI mechanism (SPUR itself does not use
CH).  The Futurebus facilities implement Berkeley exactly -- no BS
adaptation is needed -- so Berkeley is a *member* of the MOESI class,
though it must be extended with class-default responses for the bus events
its own algorithm never generates (columns 7-10).
"""

from __future__ import annotations

from repro.core.actions import BusOp, LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["BerkeleyProtocol"]

M, O, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _local(next_state, *, ca=False, im=False, op=BusOp.NONE) -> LocalAction:
    return LocalAction(next_state, MasterSignals(ca=ca, im=im), op)


def _snoop(next_state, *, ch=False, di=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di))


class BerkeleyProtocol(TableProtocol):
    """Berkeley (SPUR) ownership protocol -- Table 3 of the paper."""

    name = "Berkeley"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, O, S, I})
    requires_busy = False
    paper_table = 3
    snoop_default_to_class = True

    local_transitions = {
        # Reads hit silently in every valid state.
        (M, LocalEvent.READ): _local(M),
        (O, LocalEvent.READ): _local(O),
        (S, LocalEvent.READ): _local(S),
        # Read miss: always land shared (Berkeley has no E state).
        (I, LocalEvent.READ): _local(S, ca=True, op=BusOp.READ),
        # Writes: hit in M is silent; otherwise invalidate and take M.
        (M, LocalEvent.WRITE): _local(M),
        (O, LocalEvent.WRITE): _local(M, ca=True, im=True),
        (S, LocalEvent.WRITE): _local(M, ca=True, im=True),
        # Write miss: read-for-ownership (one transaction).
        (I, LocalEvent.WRITE): _local(M, ca=True, im=True, op=BusOp.READ),
        # Replacement behaviour (not shown in Table 3 but required to run
        # the protocol): dirty lines write back, clean lines drop.  With no
        # E state, a push-and-keep lands in S (memory is fresh afterwards).
        (M, LocalEvent.PASS): _local(S, ca=True, op=BusOp.WRITE),
        (O, LocalEvent.PASS): _local(S, ca=True, op=BusOp.WRITE),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (O, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (S, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Column 5: read by another cache master.
        (M, BusEvent.CACHE_READ): _snoop(O, ch=True, di=True),
        (O, BusEvent.CACHE_READ): _snoop(O, ch=True, di=True),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (I, BusEvent.CACHE_READ): _snoop(I),
        # Column 6: read-for-modify / invalidate.
        (M, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I, di=True),
        (O, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I, di=True),
        (S, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (I, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
    }

"""Compile-then-verify over the whole protocol registry.

The table compiler (:mod:`repro.core.transitions`) lowers each protocol's
``(state, event) -> action`` cells into integer-indexed flat tuples; this
module applies it across every registered protocol and reports, per name,
that the compiled tables agree cell-by-cell with the dict-based
specification.  ``repro verify`` runs the exhaustive explorer; this is
the cheap static counterpart the bench smoke job and the table-compiler
tests use.
"""

from __future__ import annotations

from repro.core.protocol import Protocol, TableProtocol
from repro.core.transitions import (
    CompiledCells,
    compile_cells,
    compile_deterministic,
)
from repro.protocols.registry import PROTOCOL_FACTORIES, make_protocol

__all__ = [
    "compile_protocol",
    "compile_registry",
    "compiled_table_report",
]


def compile_protocol(protocol: Protocol) -> CompiledCells:
    """Compile (and verify) one protocol's full cell tables.

    Works for any :class:`Protocol` via its ``local_cell`` / ``snoop_cell``
    introspection, so policy-driven protocols (MOESI under a policy) are
    compiled over their complete choice sets, and deterministic
    :class:`TableProtocol` subclasses over their single-action cells.
    """
    return compile_cells(protocol.local_cell, protocol.snoop_cell)


def compile_registry() -> dict[str, CompiledCells]:
    """Compile every registered protocol; raises
    :class:`repro.core.transitions.TableCompilationError` on any cell
    mismatch."""
    return {
        name: compile_protocol(make_protocol(name))
        for name in sorted(PROTOCOL_FACTORIES)
    }


def compiled_table_report() -> list[dict]:
    """One row per registered protocol: cell counts and whether the
    deterministic (single-action) fast path applies."""
    rows = []
    for name in sorted(PROTOCOL_FACTORIES):
        protocol = make_protocol(name)
        cells = compile_protocol(protocol)
        deterministic = isinstance(protocol, TableProtocol)
        if deterministic:
            # Exercise the TableProtocol fast-path compiler too, so the
            # report only says "ok" when both lowerings verified.
            fallback = (
                protocol._class_snoop_fallback
                if protocol.snoop_default_to_class
                else None
            )
            compile_deterministic(
                protocol.local_transitions,
                protocol.snoop_transitions,
                fallback,
            )
        rows.append(
            {
                "protocol": name,
                "deterministic": deterministic,
                "local_cells": sum(1 for c in cells.local if c),
                "snoop_cells": sum(1 for c in cells.snoop if c),
                "ok": True,
            }
        )
    return rows

"""The Dragon protocol (paper section 4.2, Table 4).

Used in the Xerox PARC Dragon processor.  Dragon is the canonical
*update*-based protocol: writes to shared lines are broadcast so every
holder refreshes its copy, and no cache ever invalidates another.

The paper notes Dragon is "implementable almost exactly" on the Futurebus.
The one divergence: a Futurebus broadcast write also updates main memory,
while true Dragon defers the memory update to replacement time.  "Extra
memory updates, however, cause no incompatibility" -- the simulator's
reflective-memory flag models exactly this.

Dragon's own algorithm generates only bus-event columns 5 and 8; the
remaining columns fall back to the class-default responses so a Dragon
board can coexist with other class members (the extension the paper says
is necessary but does not spell out).
"""

from __future__ import annotations

from repro.core.actions import (
    CH_O_OR_M,
    CH_S_OR_E,
    BusOp,
    LocalAction,
    MasterKind,
    SnoopAction,
)
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["DragonProtocol"]

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _local(next_state, *, ca=False, im=False, bc=False, op=BusOp.NONE,
           bc_dont_care=False) -> LocalAction:
    return LocalAction(
        next_state, MasterSignals(ca=ca, im=im, bc=bc), op,
        bc_dont_care=bc_dont_care,
    )


def _snoop(next_state, *, ch=False, di=False, sl=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di, sl=sl))


class DragonProtocol(TableProtocol):
    """Dragon update-based ownership protocol -- Table 4 of the paper."""

    name = "Dragon"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, O, E, S, I})
    requires_busy = False
    paper_table = 4
    snoop_default_to_class = True

    local_transitions = {
        (M, LocalEvent.READ): _local(M),
        (O, LocalEvent.READ): _local(O),
        (E, LocalEvent.READ): _local(E),
        (S, LocalEvent.READ): _local(S),
        (I, LocalEvent.READ): _local(CH_S_OR_E, ca=True, op=BusOp.READ),
        (M, LocalEvent.WRITE): _local(M),
        # Writes to non-exclusive lines are always broadcast; the writer
        # remains (or becomes) owner, taking M if no other copy survives.
        (O, LocalEvent.WRITE): _local(
            CH_O_OR_M, ca=True, im=True, bc=True, op=BusOp.WRITE
        ),
        (E, LocalEvent.WRITE): _local(M),
        (S, LocalEvent.WRITE): _local(
            CH_O_OR_M, ca=True, im=True, bc=True, op=BusOp.WRITE
        ),
        (I, LocalEvent.WRITE): _local(
            CH_S_OR_E, ca=True, op=BusOp.READ_THEN_WRITE
        ),
        # Replacement (true Dragon updates memory here).
        (M, LocalEvent.PASS): _local(
            E, ca=True, op=BusOp.WRITE, bc_dont_care=True
        ),
        (O, LocalEvent.PASS): _local(
            CH_S_OR_E, ca=True, op=BusOp.WRITE, bc_dont_care=True
        ),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE, bc_dont_care=True),
        (O, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE, bc_dont_care=True),
        (E, LocalEvent.FLUSH): _local(I),
        (S, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Column 5: read by another cache -- owners supply and share.
        (M, BusEvent.CACHE_READ): _snoop(O, ch=True, di=True),
        (O, BusEvent.CACHE_READ): _snoop(O, ch=True, di=True),
        (E, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (I, BusEvent.CACHE_READ): _snoop(I),
        # Column 8: broadcast write by another cache -- connect and update,
        # never invalidate; the writer takes over ownership.
        (O, BusEvent.CACHE_BROADCAST_WRITE): _snoop(S, ch=True, sl=True),
        (S, BusEvent.CACHE_BROADCAST_WRITE): _snoop(S, ch=True, sl=True),
        (I, BusEvent.CACHE_BROADCAST_WRITE): _snoop(I),
    }

"""The Firefly protocol (paper section 4.5, Table 7).

The DEC SRC Firefly workstation's consistency scheme (known only from the
Archibald & Baer comparison).  Like Dragon it is update-based -- writes to
shared lines are broadcast, nothing is ever invalidated -- but unlike
Dragon the broadcast also updates memory, so Firefly needs no O state:
its S and E states are always consistent with main memory.

Futurebus adaptations (as for Illinois): an intervenient supply that must
also update memory becomes a BS abort + push + retry, and only a unique
respondent (owner or memory) ever supplies data.

A subtlety reproduced from Table 7: on an external read of an M line, the
holder pushes and lands in **E** (not S) -- the *retried* transaction then
snoops it in E and performs the normal E -> S, CH downgrade, so both caches
correctly end up shared.
"""

from __future__ import annotations

from repro.core.actions import (
    CH_S_OR_E,
    BusOp,
    LocalAction,
    MasterKind,
    SnoopAction,
)
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["FireflyProtocol"]

M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _local(next_state, *, ca=False, im=False, bc=False,
           op=BusOp.NONE) -> LocalAction:
    return LocalAction(next_state, MasterSignals(ca=ca, im=im, bc=bc), op)


def _abort_push(next_state) -> SnoopAction:
    return SnoopAction(
        next_state,
        SnoopResponse(bs=True),
        abort_push=True,
        push_signals=MasterSignals(ca=True),
    )


def _snoop(next_state, *, ch=False, sl=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, sl=sl))


class FireflyProtocol(TableProtocol):
    """Firefly update protocol, BS-adapted for the Futurebus -- Table 7."""

    name = "Firefly"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, E, S, I})
    requires_busy = True
    paper_table = 7
    snoop_default_to_class = False

    local_transitions = {
        (M, LocalEvent.READ): _local(M),
        (E, LocalEvent.READ): _local(E),
        (S, LocalEvent.READ): _local(S),
        (I, LocalEvent.READ): _local(CH_S_OR_E, ca=True, op=BusOp.READ),
        (M, LocalEvent.WRITE): _local(M),
        (E, LocalEvent.WRITE): _local(M),
        # Broadcast update; memory is updated too, so the result is clean:
        # S while other copies survive, E once the writer is alone
        # ("CH:S/E,CA,IM,BC,W" -- note S/E, not the class's O/M).
        (S, LocalEvent.WRITE): _local(
            CH_S_OR_E, ca=True, im=True, bc=True, op=BusOp.WRITE
        ),
        (I, LocalEvent.WRITE): _local(
            CH_S_OR_E, ca=True, op=BusOp.READ_THEN_WRITE
        ),
        # Replacement.
        (M, LocalEvent.PASS): _local(E, ca=True, op=BusOp.WRITE),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (E, LocalEvent.FLUSH): _local(I),
        (S, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Column 5: push dirty data, land in E; the retried read then
        # downgrades E -> S with CH as usual.
        (M, BusEvent.CACHE_READ): _abort_push(E),
        (E, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (I, BusEvent.CACHE_READ): _snoop(I),
        # Column 8: connect to broadcast writes and update.
        (S, BusEvent.CACHE_BROADCAST_WRITE): _snoop(S, ch=True, sl=True),
        (I, BusEvent.CACHE_BROADCAST_WRITE): _snoop(I),
    }

"""The Illinois protocol (paper section 4.4, Table 6).

Papamarcos & Patel's protocol -- what later literature calls MESI.  Two
features prevent an exact Futurebus implementation:

1. Memory must be updated when a dirty block passes between caches; the
   adaptation aborts the transaction (BS), pushes the block, and lets the
   transaction restart against a fresh memory.
2. In the original, *all* caches holding the block respond and bus
   priority picks the supplier; the Futurebus permits only a unique
   respondent, so here either the intervenient cache or memory responds,
   and caches in S/E never supply data.

The Illinois S state means "consistent with memory" -- stronger than the
MOESI class's S ("consistent with the owner").  The protocol is therefore
classified as *adapted*, intended for homogeneous systems.
"""

from __future__ import annotations

from repro.core.actions import (
    CH_S_OR_E,
    BusOp,
    LocalAction,
    MasterKind,
    SnoopAction,
)
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["IllinoisProtocol"]

M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _local(next_state, *, ca=False, im=False, op=BusOp.NONE) -> LocalAction:
    return LocalAction(next_state, MasterSignals(ca=ca, im=im), op)


def _abort_push(next_state) -> SnoopAction:
    return SnoopAction(
        next_state,
        SnoopResponse(bs=True),
        abort_push=True,
        push_signals=MasterSignals(ca=True),
    )


def _snoop(next_state, *, ch=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch))


class IllinoisProtocol(TableProtocol):
    """Illinois (MESI), BS-adapted for the Futurebus -- Table 6."""

    name = "Illinois"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, E, S, I})
    requires_busy = True
    paper_table = 6
    snoop_default_to_class = False

    local_transitions = {
        (M, LocalEvent.READ): _local(M),
        (E, LocalEvent.READ): _local(E),
        (S, LocalEvent.READ): _local(S),
        # Read miss: E if nobody else holds it, else S ("CH:S/E,CA,R").
        (I, LocalEvent.READ): _local(CH_S_OR_E, ca=True, op=BusOp.READ),
        (M, LocalEvent.WRITE): _local(M),
        (E, LocalEvent.WRITE): _local(M),
        # Write hit on a shared line: address-only invalidate, take M.
        (S, LocalEvent.WRITE): _local(M, ca=True, im=True),
        # Write miss: read-with-invalidate.
        (I, LocalEvent.WRITE): _local(M, ca=True, im=True, op=BusOp.READ),
        # Replacement.
        (M, LocalEvent.PASS): _local(E, ca=True, op=BusOp.WRITE),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (E, LocalEvent.FLUSH): _local(I),
        (S, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Dirty data always goes through memory via the BS abort-push.
        (M, BusEvent.CACHE_READ): _abort_push(S),
        (M, BusEvent.CACHE_READ_FOR_MODIFY): _abort_push(S),
        (E, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (E, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (S, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (I, BusEvent.CACHE_READ): _snoop(I),
        (I, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
    }

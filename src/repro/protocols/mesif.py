"""MESIF (Intel QuickPath) -- the deliberate *non*-member of the class.

MESIF adds a Forward state to MESI: exactly one sharer of a clean line
is the designated responder, so cache-to-cache supply works without an
owner and without the O state's write-back obligation.  We model F on
the vocabulary's O slot (both mean "the unique respondent for a shared
line"), which makes the semantic clash precise and machine-checkable:

* **F is clean.**  The class's O is dirty-with-respect-to-memory and
  must be written back; MESIF's F may be dropped silently and never
  intervenes on a read-for-modify.  Both behaviours fall outside the
  Table 1/2 relaxation closure.
* **Read misses land in F.**  The class only permits a read fill to
  reach S or E (``CH:S/E`` and its relaxations); landing in O(F) on a
  clean fill is out of class.
* **F hands itself off.**  On a snooped read the forwarder supplies the
  data and demotes to S (the requester becomes the new F); the class
  requires an owner to *stay* owner (``O,CH,DI``).

Like Illinois, dirty data always reaches memory through the BS
abort-push, so homogeneous MESIF systems are value-coherent and run
end-to-end (shootout baseline, fuzzing, batch kernel).  The membership
validator must *reject* this protocol -- it is the conformance
harness's negative fixture, proving the checker distinguishes
"runs fine" from "belongs to the class".
"""

from __future__ import annotations

from repro.core.actions import (
    BusOp,
    ConditionalState,
    LocalAction,
    MasterKind,
    SnoopAction,
)
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["MesifProtocol", "CH_F_OR_E"]

M, F, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,  # the F (Forward) state rides the O slot
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)

#: MESIF's read-miss result: F if another cache holds the line, else E.
CH_F_OR_E = ConditionalState(F, E)


def _local(next_state, *, ca=False, im=False, op=BusOp.NONE) -> LocalAction:
    return LocalAction(next_state, MasterSignals(ca=ca, im=im), op)


def _abort_push(next_state) -> SnoopAction:
    return SnoopAction(
        next_state,
        SnoopResponse(bs=True),
        abort_push=True,
        push_signals=MasterSignals(ca=True),
    )


def _snoop(next_state, *, ch=False, di=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di))


class MesifProtocol(TableProtocol):
    """MESIF with F mapped onto the O slot -- out-of-class by design."""

    name = "MESIF"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, F, E, S, I})
    requires_busy = True
    snoop_default_to_class = False

    local_transitions = {
        (M, LocalEvent.READ): _local(M),
        (F, LocalEvent.READ): _local(F),
        (E, LocalEvent.READ): _local(E),
        (S, LocalEvent.READ): _local(S),
        # Read miss: land in F when another cache asserts CH, else E.
        # OUT OF CLASS: a clean fill may not take the owner slot.
        (I, LocalEvent.READ): _local(CH_F_OR_E, ca=True, op=BusOp.READ),
        (M, LocalEvent.WRITE): _local(M),
        (E, LocalEvent.WRITE): _local(M),
        # Writes to shared lines invalidate (MESIF never broadcasts).
        (S, LocalEvent.WRITE): _local(M, ca=True, im=True),
        (F, LocalEvent.WRITE): _local(M, ca=True, im=True),
        (I, LocalEvent.WRITE): _local(M, ca=True, im=True, op=BusOp.READ),
        # Replacement.
        (M, LocalEvent.PASS): _local(E, ca=True, op=BusOp.WRITE),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (E, LocalEvent.FLUSH): _local(I),
        (S, LocalEvent.FLUSH): _local(I),
        # OUT OF CLASS: F is clean, so MESIF drops it silently; the
        # class's O must write back on eviction.
        (F, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Dirty data reaches memory via the BS abort-push (Illinois
        # idiom); the restarted read then finds memory current and the
        # requester becomes the forwarder.
        (M, BusEvent.CACHE_READ): _abort_push(S),
        (M, BusEvent.CACHE_READ_FOR_MODIFY): _abort_push(I),
        (E, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (E, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (S, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        # OUT OF CLASS: the forwarder supplies the line and demotes to
        # S (the requester becomes the new F); a class owner must stay
        # owner ("O,CH,DI").
        (F, BusEvent.CACHE_READ): _snoop(S, ch=True, di=True),
        # OUT OF CLASS: F declines to intervene on a read-for-modify
        # (memory is current, the copy is clean); a class owner must
        # supply the data ("I,DI").
        (F, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (I, BusEvent.CACHE_READ): _snoop(I),
        (I, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
    }

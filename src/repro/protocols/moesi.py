"""The full MOESI copy-back protocol, parameterized by a selection policy.

This is the paper's own protocol (Tables 1 and 2 restricted to the
copy-back entries).  The constructor's policy decides, per event, among
the permitted choices -- the preferred policy reproduces the first entry
of every cell; the invalidate/update/random/round-robin policies realize
the alternatives section 3.4 declares equally safe.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.policy import ActionPolicy, PreferredPolicy
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    SnoopContext,
)
from repro.core.states import LineState
from repro.core.transitions import local_choices, snoop_choices

__all__ = ["MoesiProtocol"]


class MoesiProtocol(Protocol):
    """Copy-back cache using the full five-state MOESI class tables.

    Parameters
    ----------
    policy:
        Selection rule over each cell's permitted actions.  Defaults to the
        paper-preferred choices.
    name:
        Override the display name (useful when instantiating several
        differently-configured members for a comparison run).
    """

    kind = MasterKind.COPY_BACK
    states = frozenset(LineState)
    paper_table = 1  # Tables 1 and 2

    def __init__(
        self,
        policy: Optional[ActionPolicy] = None,
        name: Optional[str] = None,
    ) -> None:
        self.policy = policy or PreferredPolicy()
        self.name = name or f"MOESI({self.policy.name})"

    def local_action(
        self,
        state: LineState,
        event: LocalEvent,
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        choices = local_choices(state, event, MasterKind.COPY_BACK)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_local(state, event, choices, ctx)

    def snoop_action(
        self,
        state: LineState,
        event: BusEvent,
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        choices = snoop_choices(state, event)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_snoop(state, event, choices, ctx)

    # The table generator reports the *full* choice sets, which is what the
    # paper prints (entries joined by "or").
    def local_cell(
        self, state: LineState, event: LocalEvent
    ) -> tuple[LocalAction, ...]:
        return local_choices(state, event, MasterKind.COPY_BACK)

    def snoop_cell(
        self, state: LineState, event: BusEvent
    ) -> tuple[SnoopAction, ...]:
        return snoop_choices(state, event)

"""Non-caching bus masters, e.g. I/O processors (paper section 3.3).

"Our protocol also applies to processors without caches ... Such a
processor writes with or without broadcast (as with a write through
cache), and reads without asserting CA.  A non-caching unit never responds
to bus events."  These are the ``**`` entries of Table 1.

A non-caching unit has a single (conceptual) state I: it retains nothing,
so every access goes to the bus and every snoop is a silent no-op.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import BusOp, LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    SnoopContext,
)
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["NonCachingProtocol"]

I = LineState.INVALID


class NonCachingProtocol(Protocol):
    """A board with no cache: reads without CA, writes past, never snoops."""

    kind = MasterKind.NON_CACHING
    states = frozenset({I})
    requires_busy = False
    paper_table = 1  # the "**" entries of Table 1

    def __init__(
        self, broadcast_writes: bool = False, name: Optional[str] = None
    ) -> None:
        self.broadcast_writes = broadcast_writes
        self.name = name or (
            "NonCaching(BC)" if broadcast_writes else "NonCaching"
        )
        # "I,R**": read without asserting CA (bus event column 7).
        self._read = LocalAction(I, MasterSignals(), BusOp.READ,
                                 kind=MasterKind.NON_CACHING)
        # "I,IM,BC,W**" / "I,IM,W**" (bus event columns 10 / 9).
        self._write = LocalAction(
            I,
            MasterSignals(im=True, bc=broadcast_writes),
            BusOp.WRITE,
            kind=MasterKind.NON_CACHING,
        )

    def local_action(
        self,
        state: LineState,
        event: LocalEvent,
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        if state is not I:
            raise IllegalTransitionError(self.name, state, event)
        if event is LocalEvent.READ:
            return self._read
        if event is LocalEvent.WRITE:
            return self._write
        raise IllegalTransitionError(self.name, state, event)

    def snoop_action(
        self,
        state: LineState,
        event: BusEvent,
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        # "A non-caching unit never responds to bus events."
        return SnoopAction(I, SnoopResponse.NONE)

    def local_cell(self, state, event):
        if state is I and event is LocalEvent.READ:
            return (self._read,)
        if state is I and event is LocalEvent.WRITE:
            return (self._write,)
        return ()

    def snoop_cell(self, state, event):
        return (SnoopAction(I, SnoopResponse.NONE),)

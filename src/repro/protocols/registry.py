"""Registry of all implemented protocols, keyed by name.

Used by examples, benchmarks and the comparison harness to instantiate
protocols from configuration strings.
"""

from __future__ import annotations

from typing import Callable

from repro.core.policy import (
    CompetitiveAdaptivePolicy,
    InvalidatePolicy,
    PreferredPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ThresholdAdaptivePolicy,
    UpdatePolicy,
)
from repro.core.protocol import Protocol
from repro.protocols.berkeley import BerkeleyProtocol
from repro.protocols.dragon import DragonProtocol
from repro.protocols.firefly import FireflyProtocol
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.mesif import MesifProtocol
from repro.protocols.moesi import MoesiProtocol
from repro.protocols.noncaching import NonCachingProtocol
from repro.protocols.write_once import WriteOnceProtocol
from repro.protocols.write_through import WriteThroughProtocol

__all__ = ["PROTOCOL_FACTORIES", "make_protocol", "protocol_names"]

PROTOCOL_FACTORIES: dict[str, Callable[[], Protocol]] = {
    # The paper's own class, under its various selection policies.
    "moesi": lambda: MoesiProtocol(PreferredPolicy()),
    "moesi-invalidate": lambda: MoesiProtocol(
        InvalidatePolicy(), name="MOESI(invalidate)"
    ),
    "moesi-update": lambda: MoesiProtocol(UpdatePolicy(), name="MOESI(update)"),
    "moesi-random": lambda: MoesiProtocol(
        RandomPolicy(seed=0), name="MOESI(random)"
    ),
    "moesi-round-robin": lambda: MoesiProtocol(
        RoundRobinPolicy(), name="MOESI(round-robin)"
    ),
    # Adaptive update/invalidate hybrids (Dovgopol & Rosonke style):
    # per-line counters steer between the update and invalidate biases,
    # always inside the permitted choice sets -- full class members.
    "moesi-adaptive-threshold": lambda: MoesiProtocol(
        ThresholdAdaptivePolicy(), name="MOESI(adaptive-threshold)"
    ),
    "moesi-adaptive-competitive": lambda: MoesiProtocol(
        CompetitiveAdaptivePolicy(), name="MOESI(adaptive-competitive)"
    ),
    # Prior protocols mapped onto the Futurebus (paper section 4).
    "berkeley": BerkeleyProtocol,
    "dragon": DragonProtocol,
    "write-once": WriteOnceProtocol,
    "illinois": IllinoisProtocol,
    "firefly": FireflyProtocol,
    # Out-of-class negative fixture: runs end-to-end, must be REJECTED
    # by the membership validator (conformance-harness teeth).
    "mesif": MesifProtocol,
    # Simpler boards.
    "write-through": lambda: WriteThroughProtocol(),
    "write-through-noalloc-nobc": lambda: WriteThroughProtocol(
        broadcast_writes=False, write_allocate=False
    ),
    "write-through-alloc": lambda: WriteThroughProtocol(write_allocate=True),
    "non-caching": NonCachingProtocol,
    "non-caching-bc": lambda: NonCachingProtocol(broadcast_writes=True),
}


def make_protocol(name: str) -> Protocol:
    """Instantiate a protocol by registry name.

    >>> make_protocol("berkeley").name
    'Berkeley'
    """
    try:
        factory = PROTOCOL_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_FACTORIES))
        raise ValueError(f"unknown protocol {name!r}; known: {known}") from None
    return factory()


def protocol_names() -> list[str]:
    """All registry names, sorted."""
    return sorted(PROTOCOL_FACTORIES)

"""The Write-Once protocol (paper section 4.3, Table 5).

Goodman's write-once protocol [Good83] was the first bus-based consistency
protocol.  Its name comes from writing the *first* modification of a line
through to memory (invalidating other copies); later writes stay local.

Write-Once requires that when an intervenient cache supplies a dirty line,
memory be updated in the same transfer.  The Futurebus cannot do that, so
the paper's adaptation replaces intervention by an **abort**: the dirty
cache asserts BS to abort the transaction, immediately pushes the line to
memory, and when the aborted transaction restarts, memory is up to date
and no intervention is needed.

The original definition is ambiguous in places; as in the paper, two cells
offer "or" alternatives (this implementation takes the first).  Write-Once
is *not* a member of the MOESI class: its first-write ("E,CA,IM,W") lands
in E after a write-through, which presumes the stronger foreign-protocol
meaning of S/E ("consistent with memory") -- safe in a homogeneous
Write-Once system, demonstrably unsafe against an arbitrary MOESI owner
(see ``repro.verify`` and the tests).
"""

from __future__ import annotations

from repro.core.actions import BusOp, LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import TableProtocol
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["WriteOnceProtocol"]

M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


def _local(next_state, *, ca=False, im=False, op=BusOp.NONE) -> LocalAction:
    return LocalAction(next_state, MasterSignals(ca=ca, im=im), op)


def _abort_push(next_state) -> SnoopAction:
    """``BS;<state>,CA,W``: abort, push to memory, land in ``next_state``."""
    return SnoopAction(
        next_state,
        SnoopResponse(bs=True),
        abort_push=True,
        push_signals=MasterSignals(ca=True),
    )


def _snoop(next_state, *, ch=False, di=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, di=di))


class WriteOnceProtocol(TableProtocol):
    """Goodman's Write-Once, BS-adapted for the Futurebus -- Table 5."""

    name = "Write-Once"
    kind = MasterKind.COPY_BACK
    states = frozenset({M, E, S, I})
    requires_busy = True
    paper_table = 5
    # Write-Once's S state means "consistent with memory", so it must NOT
    # adopt class defaults blindly; it is intended for homogeneous systems.
    snoop_default_to_class = False

    local_transitions = {
        (M, LocalEvent.READ): _local(M),
        (E, LocalEvent.READ): _local(E),
        (S, LocalEvent.READ): _local(S),
        (I, LocalEvent.READ): _local(S, ca=True, op=BusOp.READ),
        (M, LocalEvent.WRITE): _local(M),
        (E, LocalEvent.WRITE): _local(M),
        # The eponymous "write once": write through, invalidating other
        # copies, and land in E (called "Reserved" in [Good83]).
        (S, LocalEvent.WRITE): _local(E, ca=True, im=True, op=BusOp.WRITE),
        # Write miss: read-with-invalidate ("M,CA,IM,R"), or Read>Write.
        (I, LocalEvent.WRITE): _local(M, ca=True, im=True, op=BusOp.READ),
        # Replacement.
        (M, LocalEvent.PASS): _local(E, ca=True, op=BusOp.WRITE),
        (M, LocalEvent.FLUSH): _local(I, op=BusOp.WRITE),
        (E, LocalEvent.FLUSH): _local(I),
        (S, LocalEvent.FLUSH): _local(I),
    }

    snoop_transitions = {
        # Column 5: dirty data is pushed via abort before the read retries.
        (M, BusEvent.CACHE_READ): _abort_push(S),
        (E, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
        (I, BusEvent.CACHE_READ): _snoop(I),
        # Column 6: supply-and-invalidate ("I,DI"), the paper's preferred
        # reading; the alternative "BS;S,CA,W" also appears in Table 5.
        (M, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I, di=True),
        (E, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (S, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
        (I, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
    }

    #: The paper's "or" alternatives, exposed so the table generator can
    #: print both entries and tests can exercise either: a dirty snooper
    #: may answer a read-for-modify by abort-push instead of
    #: supply-and-invalidate, and a write miss may be handled as two
    #: transactions (read to S, then the write-once write-through).
    ALTERNATE_M_COL6 = _abort_push(S)
    ALTERNATE_I_WRITE = _local(S, ca=True, op=BusOp.READ_THEN_WRITE)

    def snoop_cell(self, state, event):
        cell = super().snoop_cell(state, event)
        if (state, event) == (M, BusEvent.CACHE_READ_FOR_MODIFY):
            return cell + (self.ALTERNATE_M_COL6,)
        return cell

    def local_cell(self, state, event):
        cell = super().local_cell(state, event)
        if (state, event) == (I, LocalEvent.WRITE):
            return cell + (self.ALTERNATE_I_WRITE,)
        return cell

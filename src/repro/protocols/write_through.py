"""The write-through cache as a MOESI-class member (paper section 3.3).

A write-through cache has two states, V (valid) and I (invalid); "a write
through cache is not capable of ownership."  The paper equates its V state
with the class's S state, marks its Table-1 entries with ``*``, and
observes (items 6-8):

6. a write simply writes through, with or without broadcast; with write
   allocate, it reads first and then writes;
7. a read miss does a normal read, asserting CA;
8. snooping: reads leave it valid; broadcast writes let it update or
   invalidate; non-broadcast writes force invalidation, since it is not
   capable of intervention.

Configuration knobs mirror the class's permitted variations:

* ``broadcast_writes`` -- assert BC on write-throughs so other caches and
  memory update themselves (columns 10 vs 9 for snoopers);
* ``write_allocate`` -- on a write miss, Read>Write instead of writing
  past the cache;
* ``update_on_broadcast`` -- as a snooper, connect (SL) to broadcast
  writes rather than invalidating.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import BusOp, LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import (
    IllegalTransitionError,
    LocalContext,
    Protocol,
    SnoopContext,
)
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState

__all__ = ["WriteThroughProtocol"]

S, I = LineState.SHAREABLE, LineState.INVALID


def _local(next_state, *, ca=False, im=False, bc=False, op=BusOp.NONE,
           kind=MasterKind.WRITE_THROUGH) -> LocalAction:
    return LocalAction(
        next_state, MasterSignals(ca=ca, im=im, bc=bc), op, kind=kind
    )


def _snoop(next_state, *, ch=False, sl=False) -> SnoopAction:
    return SnoopAction(next_state, SnoopResponse(ch=ch, sl=sl))


class WriteThroughProtocol(Protocol):
    """Two-state (V/I) write-through cache; V is the class's S state."""

    kind = MasterKind.WRITE_THROUGH
    states = frozenset({S, I})
    requires_busy = False
    paper_table = 1  # the "*" entries of Table 1

    def __init__(
        self,
        broadcast_writes: bool = True,
        write_allocate: bool = False,
        update_on_broadcast: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.broadcast_writes = broadcast_writes
        self.write_allocate = write_allocate
        self.update_on_broadcast = update_on_broadcast
        flavor = []
        flavor.append("BC" if broadcast_writes else "noBC")
        flavor.append("alloc" if write_allocate else "noalloc")
        self.name = name or f"WriteThrough({','.join(flavor)})"
        self._build_tables()

    def _build_tables(self) -> None:
        bc = self.broadcast_writes
        # "S,IM,BC,W*" / "S,IM,W*": write past the cache, stay valid.
        hit_write = _local(S, im=True, bc=bc, op=BusOp.WRITE)
        if self.write_allocate:
            # "Read>Write*": read to V, then write through.
            miss_write = _local(S, ca=True, op=BusOp.READ_THEN_WRITE)
        else:
            # "I,IM,BC,W*" / "I,IM,W*": write past without allocating.
            miss_write = _local(I, im=True, bc=bc, op=BusOp.WRITE)
        self._local = {
            (S, LocalEvent.READ): _local(S),
            # "S,CA,R*": a write-through read miss asserts CA.
            (I, LocalEvent.READ): _local(S, ca=True, op=BusOp.READ),
            (S, LocalEvent.WRITE): hit_write,
            (I, LocalEvent.WRITE): miss_write,
            # Lines are never dirty; replacement is a silent drop.
            (S, LocalEvent.FLUSH): _local(I),
        }
        on_broadcast = (
            _snoop(S, ch=True, sl=True) if self.update_on_broadcast
            else _snoop(I)
        )
        self._snoop = {
            (S, BusEvent.CACHE_READ): _snoop(S, ch=True),
            (S, BusEvent.CACHE_READ_FOR_MODIFY): _snoop(I),
            (S, BusEvent.UNCACHED_READ): _snoop(S, ch=True),
            (S, BusEvent.CACHE_BROADCAST_WRITE): on_broadcast,
            # Not capable of intervention or ownership: must invalidate.
            (S, BusEvent.UNCACHED_WRITE): _snoop(I),
            (S, BusEvent.UNCACHED_BROADCAST_WRITE): on_broadcast,
        }
        for event in BusEvent:
            self._snoop[(I, event)] = _snoop(I)

    def local_action(
        self,
        state: LineState,
        event: LocalEvent,
        ctx: Optional[LocalContext] = None,
    ) -> LocalAction:
        try:
            return self._local[(state, event)]
        except KeyError:
            raise IllegalTransitionError(self.name, state, event) from None

    def snoop_action(
        self,
        state: LineState,
        event: BusEvent,
        ctx: Optional[SnoopContext] = None,
    ) -> SnoopAction:
        try:
            return self._snoop[(state, event)]
        except KeyError:
            raise IllegalTransitionError(self.name, state, event) from None

    def local_cell(self, state, event):
        action = self._local.get((state, event))
        return (action,) if action is not None else ()

    def snoop_cell(self, state, event):
        action = self._snoop.get((state, event))
        return (action,) if action is not None else ()

"""``repro.serve``: the long-lived, memoizing service tier.

The plan/execute split (:mod:`repro.specs`, :mod:`repro.api`) makes an
experiment a frozen value with a canonical content hash; this package is
what that buys at scale.  A :class:`~repro.serve.server.ReproServer` is
an asyncio daemon speaking newline-delimited JSON (the CLI's
``{"command", "ok", "data", "metrics"}`` envelope) over TCP and/or a
unix socket, admitting ``{"command": "execute", "spec", "deadline"}``
jobs and:

* **memoizing** results behind ``spec.content_hash()`` -- an identical
  request never recomputes (:mod:`repro.serve.cache`);
* **coalescing** concurrent identical requests into one in-flight
  computation (single-flight);
* **multiplexing** distinct jobs onto the warm worker pool through
  :func:`repro.perf.engine.dispatch_one`, which enforces per-request
  deadlines with the pool's per-task timeout machinery;
* applying **bounded-queue back-pressure**: a saturated daemon answers
  ``{"ok": false, "error": "busy", "retry_after": ...}`` instead of
  growing an unbounded queue;
* **streaming** large observability payloads as incremental
  metrics/trace frames (:mod:`repro.obs.stream`).

Client side, :class:`~repro.serve.client.ServeClient` (and the
``repro submit`` CLI) submits specs and reassembles streamed frames.
The served response payload is byte-for-byte the canonical local
serialization (:func:`repro.serve.protocol.payload_for` of a direct
``repro.api.execute``), cached or not.
"""

from repro.serve.cache import MemoCache
from repro.serve.client import ServeClient
from repro.serve.protocol import payload_for
from repro.serve.server import ReproServer, ServeConfig

__all__ = [
    "MemoCache",
    "ServeClient",
    "ReproServer",
    "ServeConfig",
    "payload_for",
]

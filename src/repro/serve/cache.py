"""Content-addressed result memoization for the serve tier.

Keys are spec content hashes (:meth:`repro.specs._SpecBase.content_hash`);
values are the canonical JSON-safe result payloads of
:func:`repro.serve.protocol.payload_for`.  Because a spec hash covers
everything that can change the result -- and deliberately nothing that
cannot (worker counts, backends) -- a hit is *correct by construction*,
not a heuristic: the daemon returns the cached payload without
dispatching a worker task.

The cache is a bounded LRU with hit/miss/eviction counters, surfaced
through the serve ``status`` command and the ``serve`` section of
``repro bench``.  A lock keeps the counters coherent when the daemon's
dispatcher threads and the event loop touch the cache concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["MemoCache"]


class MemoCache:
    """A bounded, thread-safe LRU mapping spec hashes to result payloads."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, refreshed to most-recent; None
        on a miss.  Every call counts as exactly one hit or miss."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        """Insert (or refresh) ``key``, evicting the least-recently-used
        entry beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counters for ``status`` and the bench report (a copy)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

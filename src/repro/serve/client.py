"""A small blocking client for the serve daemon (and ``repro submit``).

One connection per request keeps the client stateless and trivially
thread-safe: N threads submitting the same spec exercise the daemon's
single-flight coalescing, not client-side locking.  Streamed responses
are reassembled transparently -- :meth:`ServeClient.execute` returns the
same envelope shape whether the daemon streamed or not, with ``trace``
and ``metrics`` reinstated from the frames
(:func:`repro.obs.stream.reassemble_trace` checks for gaps and short
deliveries).

:meth:`ServeClient.execute_many` submits a burst over *concurrent*
connections (a private asyncio loop; the blocking surface is
unchanged).  Concurrency is what feeds the daemon's continuous-batching
admission window: the server reads one request per connection at a
time, so a sequential loop of :meth:`execute` calls can only ever form
populations of one.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional, Sequence

from repro.obs.stream import reassemble_trace

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking NDJSON client over TCP or a unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_socket: Optional[str] = None,
        timeout_s: float = 120.0,
    ) -> None:
        if port is None and unix_socket is None:
            raise ValueError("need a port or a unix_socket")
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.unix_socket)
            return sock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        return sock

    def _roundtrip(self, request: dict) -> dict:
        """Send one request; collect frames until the final envelope."""
        frames: list[dict] = []
        with self._connect() as sock:
            sock.sendall(json.dumps(request).encode("ascii") + b"\n")
            with sock.makefile("r", encoding="ascii") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    message = json.loads(line)
                    if message.get("frame"):
                        frames.append(message)
                        continue
                    return self._finalize(message, frames)
        raise ConnectionError("server closed before a final response")

    @staticmethod
    def _finalize(envelope: dict, frames: list) -> dict:
        if envelope.get("streamed"):
            envelope = dict(envelope)
            envelope["trace"] = reassemble_trace(frames) or None
            for frame in frames:
                if frame.get("frame") == "metrics":
                    envelope["metrics"] = frame.get("metrics")
                    break
        return envelope

    # ------------------------------------------------------------------
    def execute(
        self,
        spec,
        deadline: Optional[float] = None,
        stream: bool = False,
    ) -> dict:
        """Submit a spec (object, dict payload, or canonical string).

        Returns the response envelope; on ``ok`` it carries ``data``,
        ``metrics``, ``trace``, ``hash``, and ``cached``."""
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        request: dict = {"command": "execute", "spec": spec}
        if deadline is not None:
            request["deadline"] = deadline
        if stream:
            request["stream"] = True
        return self._roundtrip(request)

    def execute_many(
        self,
        specs: Sequence,
        deadline: Optional[float] = None,
        stream: bool = False,
        concurrency: int = 32,
    ) -> list[dict]:
        """Submit many specs at once over parallel connections.

        Returns one envelope per spec, in input order.  Compatible
        batch specs landing inside the daemon's admission window
        coalesce into shared SoA populations (check ``batched`` /
        ``population`` on the envelopes); everything else behaves as N
        independent :meth:`execute` calls."""
        payloads = [
            spec.to_dict() if hasattr(spec, "to_dict") else spec
            for spec in specs
        ]

        async def _one(sem: asyncio.Semaphore, payload) -> dict:
            request: dict = {"command": "execute", "spec": payload}
            if deadline is not None:
                request["deadline"] = deadline
            if stream:
                request["stream"] = True
            async with sem:
                return await self._async_roundtrip(request)

        async def _run() -> list[dict]:
            sem = asyncio.Semaphore(max(1, concurrency))
            return list(
                await asyncio.gather(
                    *(_one(sem, payload) for payload in payloads)
                )
            )

        return asyncio.run(_run())

    async def _async_roundtrip(self, request: dict) -> dict:
        """One request over one fresh asyncio connection."""
        if self.unix_socket is not None:
            reader, writer = await asyncio.open_unix_connection(
                self.unix_socket
            )
        else:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        try:
            writer.write(json.dumps(request).encode("ascii") + b"\n")
            await writer.drain()
            frames: list[dict] = []
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.timeout_s
                )
                if not line:
                    raise ConnectionError(
                        "server closed before a final response"
                    )
                line = line.strip()
                if not line:
                    continue
                message = json.loads(line.decode("ascii"))
                if message.get("frame"):
                    frames.append(message)
                    continue
                return self._finalize(message, frames)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    def status(self) -> dict:
        """The daemon's pool/cache/admission counters."""
        return self._roundtrip({"command": "status"})

    def shutdown(self) -> dict:
        """Ask the daemon to stop (it answers with final counters)."""
        return self._roundtrip({"command": "shutdown"})

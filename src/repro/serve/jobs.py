"""Worker-side job bodies for the serve tier (top-level: picklable).

A job crosses the process boundary as a canonical spec string -- the
smallest complete description of the work -- and comes back as the
canonical result payload.  Inside a pool worker everything runs with
``workers=1``: nested maps (the verify matrix, fuzz campaigns) stay
serial rather than forking pools inside pool workers, and the output is
identical either way by the :mod:`repro.perf` determinism contract.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "execute_payload",
    "execute_batch_payloads",
    "dispatch_job",
    "dispatch_batch_job",
]


def execute_payload(canonical: str) -> dict:
    """Execute one canonical spec string; returns its canonical payload.

    Pure function of its argument (module-level, picklable), usable both
    as the pool-worker body and as a direct in-process fallback."""
    from repro.api import execute
    from repro.serve.protocol import payload_for
    from repro.specs import spec_from_canonical

    spec = spec_from_canonical(canonical)
    result = execute(spec, workers=1)
    return payload_for(spec, result)


def execute_batch_payloads(
    canonicals: Sequence[str], tables_shm: Optional[str] = None
) -> list[dict]:
    """Execute a coalesced population of canonical batch specs; returns
    one payload per spec, in input order.

    The continuous-batching job body: every spec here is batch-lowerable
    (the daemon routes by ``spec.batch_key()``), so the whole population
    merges into a handful of :func:`repro.perf.batch.run_batch_specs`
    kernel invocations instead of one sweep -- one shared-tables attach,
    one population synthesis pass, one SoA run per board mix.  Each
    payload is byte-identical to ``execute_payload(canonical)`` for the
    same spec: rows come from the same kernel on the same schedules, and
    :func:`payload_for` strips the wall-clock column either way."""
    from repro.perf.batch import run_batch_specs
    from repro.serve.protocol import payload_for
    from repro.specs import spec_from_canonical

    if tables_shm is not None:
        from repro.perf.shared import attach_tables

        try:
            attach_tables(tables_shm)
        except Exception:
            pass  # segment gone or unsupported: lower directly below

    specs = [spec_from_canonical(canonical) for canonical in canonicals]
    per_spec_rows = run_batch_specs(specs)
    return [
        payload_for(spec, rows)
        for spec, rows in zip(specs, per_spec_rows)
    ]


def _batch_job(task: tuple) -> list[dict]:
    """Pool-worker shim: :func:`dispatch_one` carries one argument."""
    canonicals, tables_shm = task
    return execute_batch_payloads(canonicals, tables_shm)


def dispatch_job(
    canonical: str,
    deadline_s: Optional[float] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run one job on the warm pool with a per-request deadline.

    Raises :class:`repro.perf.engine.ParallelTimeoutError` when the job
    overruns ``deadline_s`` (the stuck worker is terminated and the pool
    invalidated, so one runaway request cannot wedge the daemon)."""
    from repro.perf.engine import dispatch_one

    return dispatch_one(
        execute_payload, canonical, timeout_s=deadline_s, workers=workers
    )


def dispatch_batch_job(
    canonicals: Sequence[str],
    deadline_s: Optional[float] = None,
    workers: Optional[int] = None,
    tables_shm: Optional[str] = None,
) -> list[dict]:
    """Run one coalesced population on the warm pool.

    ``deadline_s`` is the *slackest surviving* row deadline (the daemon
    already dropped expired rows at sealing time); a timeout therefore
    fails only rows that were genuinely out of time.  ``tables_shm``
    names the daemon's epoch-published shared-tables segment
    (:func:`repro.perf.shared.tables_for_epoch`) so the worker attaches
    the lowered tables zero-copy instead of re-probing protocols."""
    from repro.perf.engine import dispatch_one, note_batch_dispatch

    note_batch_dispatch(len(canonicals))
    return dispatch_one(
        _batch_job,
        (tuple(canonicals), tables_shm),
        timeout_s=deadline_s,
        workers=workers,
    )

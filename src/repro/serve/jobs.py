"""Worker-side job bodies for the serve tier (top-level: picklable).

A job crosses the process boundary as a canonical spec string -- the
smallest complete description of the work -- and comes back as the
canonical result payload.  Inside a pool worker everything runs with
``workers=1``: nested maps (the verify matrix, fuzz campaigns) stay
serial rather than forking pools inside pool workers, and the output is
identical either way by the :mod:`repro.perf` determinism contract.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["execute_payload", "dispatch_job"]


def execute_payload(canonical: str) -> dict:
    """Execute one canonical spec string; returns its canonical payload.

    Pure function of its argument (module-level, picklable), usable both
    as the pool-worker body and as a direct in-process fallback."""
    from repro.api import execute
    from repro.serve.protocol import payload_for
    from repro.specs import spec_from_canonical

    spec = spec_from_canonical(canonical)
    result = execute(spec, workers=1)
    return payload_for(spec, result)


def dispatch_job(
    canonical: str,
    deadline_s: Optional[float] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run one job on the warm pool with a per-request deadline.

    Raises :class:`repro.perf.engine.ParallelTimeoutError` when the job
    overruns ``deadline_s`` (the stuck worker is terminated and the pool
    invalidated, so one runaway request cannot wedge the daemon)."""
    from repro.perf.engine import dispatch_one

    return dispatch_one(
        execute_payload, canonical, timeout_s=deadline_s, workers=workers
    )

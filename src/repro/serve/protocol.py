"""The serve wire contract: canonical result payloads and envelopes.

One function, :func:`payload_for`, defines how an executed spec's result
serializes -- and it is used on *both* sides: the daemon's workers build
payloads with it, and a client (or test) comparing against a direct
``repro.api.execute`` builds the reference the same way.  Byte-for-byte
response identity between served and local execution is therefore a
property of sharing this code path, not of careful re-implementation.

Payload shape (JSON-safe, deterministic)::

    {"data": {...}, "metrics": {...} | null, "trace": [...] | null}

Determinism rules:

* wall-clock fields are stripped (batch rows lose
  ``transitions_per_sec``) -- simulated time (``elapsed_ns``,
  ``elapsed_us``) is deterministic DES time and stays;
* the experiment report's embedded ``metrics``/``trace`` are hoisted to
  the payload's top level (nulled inside ``data``), so streaming can
  deliver them as frames without re-encoding the report;
* ``metrics``/``trace`` honour the spec's observability flags: a
  ``trace=False`` spec serves ``"trace": null`` even though the daemon
  could have traced.

Responses reuse the CLI envelope ``{"command", "ok", "data", "metrics"}``
plus serve-specific fields (``hash``, ``cached``, ``retry_after``, ...).
A request served through the continuous-batching path additionally
carries ``batched: true`` and ``population`` (the sealed population's
row count) -- annotations only: ``data`` stays byte-identical to the
one-at-a-time path, because both paths run the same kernel on the same
per-spec schedules and serialize through :func:`payload_for`, whose
wall-clock strip (:data:`_WALL_CLOCK_ROW_FIELDS`) removes the only
field a merged run could not reproduce.
"""

from __future__ import annotations

from typing import Optional

from repro.specs import canonical_json

__all__ = [
    "payload_for",
    "response_envelope",
    "payload_json",
]

#: Batch sweep row fields measured on the host wall clock -- stripped so
#: a cached payload equals a recomputed one.
_WALL_CLOCK_ROW_FIELDS = ("transitions_per_sec",)


def _experiment_payload(spec, result) -> dict:
    report = result.report.to_dict()
    # Hoist observability out of the report: metrics/trace stream as
    # frames and must not be double-encoded inside data.
    report["metrics"] = None
    report["trace"] = None
    return {
        "data": {
            "kind": "experiment",
            "label": result.label,
            "ok": result.ok,
            "violations": [str(v) for v in result.violations],
            "report": report,
        },
        "metrics": (result.metrics or None) if spec.metrics else None,
        "trace": result.trace if spec.trace else None,
    }


def _verify_payload(spec, result) -> dict:
    return {
        "data": {
            "kind": "verify",
            "ok": result.ok,
            "rows": result.rows,
        },
        "metrics": None,
        "trace": result.trace if spec.trace else None,
    }


def _fuzz_payload(spec, result) -> dict:
    return {
        "data": {
            "kind": "fuzz",
            "ok": result.ok,
            "report": result.report.to_dict(),
        },
        "metrics": None,
        "trace": result.trace if spec.trace else None,
    }


def _rows_payload(kind: str, rows: list, strip: tuple = ()) -> dict:
    if strip:
        rows = [
            {key: value for key, value in row.items() if key not in strip}
            for row in rows
        ]
    return {
        "data": {"kind": kind, "rows": rows},
        "metrics": None,
        "trace": None,
    }


def payload_for(spec, result) -> dict:
    """The canonical JSON-safe payload for ``result`` of ``spec``.

    This is what the daemon memoizes under ``spec.content_hash()`` and
    what a byte-identity check recomputes locally."""
    from repro.specs import (
        BatchSpec,
        ExperimentSpec,
        FuzzSpec,
        ShootoutSpec,
        VerifySpec,
    )

    if isinstance(spec, ExperimentSpec):
        return _experiment_payload(spec, result)
    if isinstance(spec, VerifySpec):
        return _verify_payload(spec, result)
    if isinstance(spec, FuzzSpec):
        return _fuzz_payload(spec, result)
    if isinstance(spec, ShootoutSpec):
        return _rows_payload("shootout", result)
    if isinstance(spec, BatchSpec):
        return _rows_payload("batch", result, strip=_WALL_CLOCK_ROW_FIELDS)
    raise TypeError(f"no payload serialization for {type(spec).__name__}")


def payload_json(payload: dict) -> str:
    """Canonical JSON encoding of a payload (the byte-identity form)."""
    return canonical_json(payload)


def response_envelope(
    command: str,
    ok: bool,
    data=None,
    metrics: Optional[dict] = None,
    **extra,
) -> dict:
    """The CLI-compatible response envelope with serve extensions."""
    envelope = {"command": command, "ok": ok, "data": data,
                "metrics": metrics}
    envelope.update(extra)
    return envelope

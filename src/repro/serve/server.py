"""The asyncio daemon: NDJSON over TCP/unix socket onto the warm pool.

One :class:`ReproServer` owns one event loop's worth of state: the
memoization cache, the in-flight single-flight table, the admission
counter, and the listening sockets.  Each client connection is a
newline-delimited JSON conversation; each ``execute`` request flows

    parse spec -> content hash -> cache? -> coalesce? -> admit? ->
    semaphore -> dispatch to the warm pool -> memoize -> respond

with every early exit answering immediately: a cache hit returns the
memoized payload without dispatching any worker task, a duplicate of an
in-flight request awaits that computation instead of starting another,
and a request beyond ``concurrency + max_pending`` is refused with
``{"ok": false, "error": "busy", "retry_after": ...}`` -- bounded queue,
never unbounded growth.

Dispatch runs the blocking pool call on the loop's default thread-pool
executor, so the event loop keeps serving status requests and cache
hits while jobs compute.  Deadlines ride the pool's per-task timeout
machinery (:func:`repro.perf.engine.dispatch_one`): an overrun job's
workers are terminated, the daemon answers
``{"ok": false, "error": "deadline"}``, and the next job gets a fresh
pool.

Continuous batching
-------------------
Specs whose :meth:`~repro.specs.BatchSpec.batch_key` is non-``None``
(batch-lowerable sweeps) take a third path after the cache and
single-flight checks: instead of ``dispatch_one`` per request, they
join a per-compatibility-key **admission queue**.  The first arrival
opens an admission window (``batch_window_s``); whatever compatible
requests land within it -- capped at ``batch_max`` -- seal into one
padded heterogeneous-geometry SoA population, executed as a *single*
pool job (:func:`repro.serve.jobs.dispatch_batch_job`, shared tables
published once per epoch), and the per-row results de-multiplex back
into the exact envelopes each request would have gotten alone.  Rows
whose deadline expires while the window is open are dropped from the
population individually -- their neighbours still execute.  A window
of ``0`` degenerates to populations of one (no coalescing latency);
a negative window disables the batch path entirely.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
from typing import Callable, Optional

from repro.obs.stream import DEFAULT_FRAME_EVENTS, metrics_frame, trace_frames
from repro.serve.cache import MemoCache
from repro.serve.jobs import dispatch_job
from repro.serve.protocol import response_envelope
from repro.specs import canonical_json, spec_from_canonical, spec_from_dict

__all__ = ["ServeConfig", "ReproServer", "run_server"]


@dataclasses.dataclass
class ServeConfig:
    """Daemon knobs.

    ``concurrency`` jobs execute at once; up to ``max_pending`` more may
    wait; anything beyond is refused with ``retry_after_s``.  ``port=0``
    asks the OS for a free port (read it back from ``endpoints``).
    ``dispatcher`` injects the job runner -- ``(canonical, deadline_s)
    -> payload`` -- for tests and benches; the default is the warm-pool
    :func:`repro.serve.jobs.dispatch_job`.

    ``batch_window_s``/``batch_max`` shape the continuous-batching
    admission queue: batch-lowerable specs arriving within the window
    (up to the cap) coalesce into one SoA population.  ``0`` seals each
    population at one row (degenerate, no added latency); negative
    disables the batch path.  ``batch_dispatcher`` injects the
    coalesced runner -- ``(canonicals, deadline_s) -> [payload, ...]``
    -- defaulting to :func:`repro.serve.jobs.dispatch_batch_job`.
    """

    host: str = "127.0.0.1"
    port: Optional[int] = 0
    unix_socket: Optional[str] = None
    concurrency: int = 2
    max_pending: int = 8
    cache_size: int = 128
    workers: Optional[int] = None
    retry_after_s: float = 0.5
    stream_chunk: int = DEFAULT_FRAME_EVENTS
    dispatcher: Optional[Callable[[str, Optional[float]], dict]] = None
    batch_window_s: float = 0.005
    batch_max: int = 64
    batch_dispatcher: Optional[
        Callable[[tuple, Optional[float]], list]
    ] = None


class _PendingBatch:
    """One forming population: entries accumulate until the admission
    window elapses or the population cap fills."""

    __slots__ = ("entries", "full")

    def __init__(self) -> None:
        #: Each entry: {"key", "canonical", "deadline", "expires",
        #: "future"} -- the future resolves to (outcome, extras).
        self.entries: list[dict] = []
        self.full = asyncio.Event()


class ReproServer:
    """One serve daemon: sockets, cache, single-flight, admission."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = MemoCache(self.config.cache_size)
        self.counters = {
            "requests": 0,
            "executed": 0,
            "coalesced": 0,
            "busy_rejections": 0,
            "deadline_failures": 0,
            "errors": 0,
            # Continuous batching: requests admitted to the batch path,
            # populations sealed, rows across them, the largest one,
            # requests computed one-at-a-time, and rows whose deadline
            # expired while their population was still forming.
            "batched": 0,
            "populations": 0,
            "population_rows": 0,
            "population_max": 0,
            "scalar_path": 0,
            "deadline_dropped": 0,
        }
        self.endpoints: dict = {}
        #: hash -> Future resolving to ("ok", payload) | ("error", kind,
        #: detail).  Outcome tuples (not set_exception) so a computation
        #: nobody ends up awaiting never logs "exception never retrieved".
        self._inflight: dict[str, asyncio.Future] = {}
        self._admitted = 0
        self._servers: list = []
        self._client_tasks: set = set()
        #: batch_key -> the currently forming population, plus the
        #: collector tasks draining sealed ones.
        self._batches: dict[str, _PendingBatch] = {}
        self._collectors: set = set()
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopping: Optional[asyncio.Event] = None
        workers = self.config.workers
        if self.config.dispatcher is not None:
            self._dispatcher = self.config.dispatcher
        else:

            def _default_dispatcher(canonical, deadline_s):
                return dispatch_job(canonical, deadline_s, workers=workers)

            self._dispatcher = _default_dispatcher
        if self.config.batch_dispatcher is not None:
            self._batch_dispatcher = self.config.batch_dispatcher
        else:

            def _default_batch_dispatcher(canonicals, deadline_s):
                from repro.perf.shared import tables_for_epoch
                from repro.serve.jobs import dispatch_batch_job

                return dispatch_batch_job(
                    canonicals,
                    deadline_s,
                    workers=workers,
                    tables_shm=tables_for_epoch(),
                )

            self._batch_dispatcher = _default_batch_dispatcher

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> dict:
        """Bind the configured sockets; returns ``endpoints`` (with the
        OS-assigned port resolved when ``port=0``)."""
        self._semaphore = asyncio.Semaphore(max(1, self.config.concurrency))
        self._stopping = asyncio.Event()
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._on_client, self.config.host, self.config.port
            )
            self._servers.append(server)
            sockname = server.sockets[0].getsockname()
            self.endpoints["host"] = sockname[0]
            self.endpoints["port"] = sockname[1]
        if self.config.unix_socket is not None:
            server = await asyncio.start_unix_server(
                self._on_client, path=self.config.unix_socket
            )
            self._servers.append(server)
            self.endpoints["unix_socket"] = self.config.unix_socket
        if not self._servers:
            raise ValueError("ServeConfig binds neither a port nor a socket")
        return dict(self.endpoints)

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop` (or a ``shutdown`` command)."""
        assert self._stopping is not None, "start() first"
        await self._stopping.wait()
        await self.close()

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def close(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(
                *self._client_tasks, return_exceptions=True
            )
        self._client_tasks.clear()
        for task in list(self._collectors):
            task.cancel()
        if self._collectors:
            await asyncio.gather(*self._collectors, return_exceptions=True)
        self._collectors.clear()
        self._batches.clear()
        path = self.endpoints.get("unix_socket")
        if path:
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    self.counters["errors"] += 1
                    await self._write(
                        writer,
                        response_envelope(
                            "?", False, error="bad-request",
                            detail=f"unparseable request: {error}",
                        ),
                    )
                    continue
                await self._handle(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _write(self, writer, obj: dict) -> None:
        writer.write(canonical_json(obj).encode("ascii") + b"\n")
        await writer.drain()

    def _status_data(self) -> dict:
        from repro.perf.engine import pool_stats

        counters = dict(self.counters)
        populations = counters["populations"]
        return {
            "endpoints": dict(self.endpoints),
            "pool": pool_stats(),
            "cache": self.cache.stats(),
            "counters": counters,
            "inflight": len(self._inflight),
            "admitted": self._admitted,
            "concurrency": self.config.concurrency,
            "max_pending": self.config.max_pending,
            "batch": {
                "window_s": self.config.batch_window_s,
                "max": self.config.batch_max,
                "populations": populations,
                "rows": counters["population_rows"],
                "mean_population": (
                    round(counters["population_rows"] / populations, 2)
                    if populations
                    else None
                ),
                "max_population": counters["population_max"],
                "scalar_path": counters["scalar_path"],
                "deadline_dropped": counters["deadline_dropped"],
                "forming": sum(
                    len(batch.entries)
                    for batch in self._batches.values()
                ),
            },
        }

    async def _handle(self, request: dict, writer) -> None:
        command = request.get("command")
        self.counters["requests"] += 1
        if command == "status":
            await self._write(
                writer,
                response_envelope("status", True, data=self._status_data()),
            )
            return
        if command == "shutdown":
            await self._write(
                writer,
                response_envelope("shutdown", True,
                                  data=self._status_data()),
            )
            self.request_stop()
            return
        if command == "execute":
            await self._handle_execute(request, writer)
            return
        self.counters["errors"] += 1
        await self._write(
            writer,
            response_envelope(
                str(command), False, error="unknown-command",
                detail="known: execute, status, shutdown",
            ),
        )

    # ------------------------------------------------------------------
    # The execute flow.
    # ------------------------------------------------------------------
    async def _handle_execute(self, request: dict, writer) -> None:
        try:
            raw = request["spec"]
            spec = (
                spec_from_canonical(raw)
                if isinstance(raw, str)
                else spec_from_dict(raw)
            )
            canonical = spec.canonical()
            key = spec.content_hash()
        except (KeyError, ValueError, TypeError) as error:
            self.counters["errors"] += 1
            await self._write(
                writer,
                response_envelope(
                    "execute", False, error="bad-request",
                    detail=f"bad spec: {error}",
                ),
            )
            return
        deadline = request.get("deadline")
        stream = bool(request.get("stream"))

        payload = self.cache.get(key)
        if payload is not None:
            await self._respond(
                writer, key, payload, cached=True, coalesced=False,
                stream=stream,
            )
            return

        inflight = self._inflight.get(key)
        if inflight is not None:
            # Single-flight: identical request already computing -- wait
            # for that computation instead of dispatching a second one.
            self.counters["coalesced"] += 1
            outcome = await asyncio.shield(inflight)
            await self._respond_outcome(
                writer, key, outcome, cached=False, coalesced=True,
                stream=stream,
            )
            return

        if self._admitted >= self.config.concurrency + self.config.max_pending:
            self.counters["busy_rejections"] += 1
            await self._write(
                writer,
                response_envelope(
                    "execute", False, error="busy",
                    retry_after=self.config.retry_after_s, hash=key,
                ),
            )
            return

        route = (
            spec.batch_key() if self.config.batch_window_s >= 0 else None
        )
        self._admitted += 1
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        extras: dict = {}
        try:
            if route is None:
                self.counters["scalar_path"] += 1
                outcome = await self._compute(canonical, deadline, key)
            else:
                outcome, extras = await self._batch_compute(
                    route, canonical, deadline, key
                )
        finally:
            self._admitted -= 1
            self._inflight.pop(key, None)
        future.set_result(outcome)
        await self._respond_outcome(
            writer, key, outcome, cached=False, coalesced=False,
            stream=stream, extras=extras,
        )

    async def _compute(self, canonical: str, deadline, key: str) -> tuple:
        """Dispatch one admitted job; returns an outcome tuple."""
        from repro.perf.engine import ParallelTimeoutError

        assert self._semaphore is not None, "start() first"
        async with self._semaphore:
            loop = asyncio.get_running_loop()
            try:
                payload = await loop.run_in_executor(
                    None, self._dispatcher, canonical, deadline
                )
            except ParallelTimeoutError as error:
                self.counters["deadline_failures"] += 1
                return ("error", "deadline", str(error))
            except Exception as error:  # worker exceptions propagate here
                self.counters["errors"] += 1
                return (
                    "error", "execution",
                    f"{type(error).__name__}: {error}",
                )
        self.counters["executed"] += 1
        self.cache.put(key, payload)
        return ("ok", payload)

    # ------------------------------------------------------------------
    # Continuous batching: admission queue, collector, de-mux.
    # ------------------------------------------------------------------
    async def _batch_compute(
        self, route: str, canonical: str, deadline, key: str
    ) -> tuple:
        """Admit one request to the forming population for its
        compatibility key; returns ``(outcome, respond-extras)`` once
        the population executed (or this row was dropped)."""
        loop = asyncio.get_running_loop()
        self.counters["batched"] += 1
        entry = {
            "key": key,
            "canonical": canonical,
            "deadline": deadline,
            "expires": (
                loop.time() + deadline if deadline is not None else None
            ),
            "future": loop.create_future(),
        }
        window = self.config.batch_window_s
        batch = self._batches.get(route)
        if batch is None:
            batch = _PendingBatch()
            batch.entries.append(entry)
            if window > 0 and len(batch.entries) < self.config.batch_max:
                # Open the admission window; the collector seals it.
                self._batches[route] = batch
                collector = loop.create_task(self._collect(route, batch))
            else:
                # window == 0 (or batch_max == 1): degenerate population
                # of one, sealed immediately -- no coalescing latency.
                collector = loop.create_task(self._execute_batch(batch))
            self._collectors.add(collector)
            collector.add_done_callback(self._collectors.discard)
        else:
            batch.entries.append(entry)
            if len(batch.entries) >= self.config.batch_max:
                # Population cap: seal now, don't wait out the window.
                self._batches.pop(route, None)
                batch.full.set()
        return await entry["future"]

    async def _collect(self, route: str, batch: _PendingBatch) -> None:
        """Wait out the admission window (or the cap), then execute."""
        try:
            await asyncio.wait_for(
                batch.full.wait(), timeout=self.config.batch_window_s
            )
        except asyncio.TimeoutError:
            pass
        finally:
            if self._batches.get(route) is batch:
                self._batches.pop(route, None)
        await self._execute_batch(batch)

    async def _execute_batch(self, batch: _PendingBatch) -> None:
        """Seal a population: drop expired rows, run the rest as one
        coalesced pool job, de-multiplex per-row outcomes."""
        from repro.perf.engine import ParallelTimeoutError

        loop = asyncio.get_running_loop()
        now = loop.time()
        live = []
        for entry in batch.entries:
            if entry["expires"] is not None and entry["expires"] <= now:
                # The row is dropped from the batch, not the batch for
                # the row: its neighbours still execute.
                self.counters["deadline_dropped"] += 1
                entry["future"].set_result((
                    (
                        "error", "deadline",
                        f"deadline {entry['deadline']:g}s expired before "
                        "the population sealed",
                    ),
                    {"batched": True},
                ))
                continue
            live.append(entry)
        if not live:
            return
        self.counters["populations"] += 1
        self.counters["population_rows"] += len(live)
        self.counters["population_max"] = max(
            self.counters["population_max"], len(live)
        )
        remaining = [
            entry["expires"] - now
            for entry in live
            if entry["expires"] is not None
        ]
        # The pool timeout may only fire once every surviving row is out
        # of time; a deadline-free row keeps the job timeout-free.
        timeout = (
            max(remaining) if len(remaining) == len(live) else None
        )
        extras = {"batched": True, "population": len(live)}
        canonicals = tuple(entry["canonical"] for entry in live)
        try:
            assert self._semaphore is not None, "start() first"
            async with self._semaphore:
                payloads = await loop.run_in_executor(
                    None, self._batch_dispatcher, canonicals, timeout
                )
            if len(payloads) != len(live):
                raise RuntimeError(
                    f"batch dispatcher returned {len(payloads)} payloads"
                    f" for {len(live)} rows"
                )
        except ParallelTimeoutError as error:
            self.counters["deadline_failures"] += len(live)
            outcome = ("error", "deadline", str(error))
            for entry in live:
                entry["future"].set_result((outcome, extras))
            return
        except Exception as error:
            self.counters["errors"] += len(live)
            outcome = (
                "error", "execution", f"{type(error).__name__}: {error}"
            )
            for entry in live:
                entry["future"].set_result((outcome, extras))
            return
        for entry, payload in zip(live, payloads):
            self.counters["executed"] += 1
            self.cache.put(entry["key"], payload)
            entry["future"].set_result((("ok", payload), extras))

    async def _respond_outcome(
        self, writer, key: str, outcome: tuple, *, cached: bool,
        coalesced: bool, stream: bool, extras: Optional[dict] = None,
    ) -> None:
        extras = extras or {}
        if outcome[0] == "ok":
            await self._respond(
                writer, key, outcome[1], cached=cached,
                coalesced=coalesced, stream=stream, extras=extras,
            )
            return
        _, kind, detail = outcome
        await self._write(
            writer,
            response_envelope(
                "execute", False, error=kind, detail=detail, hash=key,
                **extras,
            ),
        )

    async def _respond(
        self, writer, key: str, payload: dict, *, cached: bool,
        coalesced: bool, stream: bool, extras: Optional[dict] = None,
    ) -> None:
        extras = extras or {}
        trace = payload.get("trace")
        metrics = payload.get("metrics")
        if stream and (trace is not None or metrics is not None):
            frame = dict(metrics_frame(metrics))
            frame.update(command="execute.frame", hash=key)
            await self._write(writer, frame)
            for chunk in trace_frames(
                trace or [], chunk=self.config.stream_chunk
            ):
                chunk.update(command="execute.frame", hash=key)
                await self._write(writer, chunk)
            await self._write(
                writer,
                response_envelope(
                    "execute", True, data=payload["data"], metrics=None,
                    hash=key, cached=cached, coalesced=coalesced,
                    streamed=True, trace=None, **extras,
                ),
            )
            return
        await self._write(
            writer,
            response_envelope(
                "execute", True, data=payload["data"], metrics=metrics,
                hash=key, cached=cached, coalesced=coalesced,
                streamed=False, trace=trace, **extras,
            ),
        )


async def run_server(
    config: Optional[ServeConfig] = None,
    ready: Optional[Callable[[dict], None]] = None,
) -> None:
    """Start a daemon and serve until shutdown; ``ready(endpoints)`` is
    called once the sockets are bound (the CLI prints its ready line
    from it)."""
    server = ReproServer(config)
    endpoints = await server.start()
    if ready is not None:
        ready(endpoints)
    await server.serve_forever()

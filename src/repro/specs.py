"""Frozen, picklable, canonically-hashable experiment specifications.

The plan/execute split: a *spec* is a pure value describing an
experiment -- protocol spec strings, geometry, workload recipe or
embedded trace, seeds, discipline, observability flags -- with no
behaviour of its own.  ``repro.api.plan(...)`` builds one;
``repro.api.execute(spec)`` runs it.  Because a spec is frozen and
hashable it can key caches, travel to pool workers, and land in JSON:

* :meth:`~ExperimentSpec.canonical` -- the canonical spec string: JSON
  with sorted keys and compact separators over :meth:`to_dict`.  Two
  equal specs canonicalize to identical bytes in any process on any
  platform (nothing here depends on hash seeds, dict order, or id()).
* :meth:`~ExperimentSpec.content_hash` -- sha256 of the canonical
  string; the content-addressed memoization key ``repro.serve`` caches
  results under.
* :func:`spec_from_dict` / :func:`spec_from_canonical` -- the inverse:
  every spec round-trips through its canonical string.

Spec classes
------------
:class:`ExperimentSpec`   one system over one workload (``repro run``)
:class:`VerifySpec`       the model-checking matrix, by suite name
:class:`FuzzSpec`         a fuzz campaign, or one embedded scenario
:class:`BatchSpec`        a struct-of-arrays batch-kernel sweep
:class:`ShootoutSpec`     the Arch85-style protocol comparison

Execution details that cannot change the *result* -- worker counts,
backend selection, output directories, per-request deadlines -- are
deliberately not spec fields: they ride on ``execute(...)`` so that one
canonical hash covers every way of computing the same answer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Union

__all__ = [
    "SPEC_VERSION",
    "GeometrySpec",
    "WorkloadSpec",
    "ExperimentSpec",
    "VerifySpec",
    "FuzzSpec",
    "BatchSpec",
    "ShootoutSpec",
    "SPEC_KINDS",
    "canonical_json",
    "spec_from_dict",
    "spec_from_canonical",
]

#: Bumped when the canonical encoding changes shape; part of every
#: canonical string, so stale service caches can never alias new specs.
SPEC_VERSION = 1


def canonical_json(payload) -> str:
    """Canonical JSON: sorted keys, compact separators, ASCII-safe.

    The byte-stable encoding used for spec strings, content hashes, and
    the serve tier's memoized result payloads."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


class _SpecBase:
    """Shared canonicalization for every spec dataclass."""

    kind: str = ""

    def to_dict(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def canonical(self) -> str:
        """The canonical spec string (deterministic bytes)."""
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        """sha256 hex digest of :meth:`canonical` -- the memoization key.

        Computed lazily once and cached on the (frozen) instance: the
        serve tier hashes every request on its admission hot path, and
        a spec's canonical string never changes after construction.
        The cache rides in ``__dict__`` (specs are not slotted), so it
        survives pickling harmlessly and never participates in
        ``__eq__``/``to_dict``."""
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = hashlib.sha256(
                self.canonical().encode("ascii")
            ).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def batch_key(self) -> Optional[str]:
        """The coalescing compatibility fingerprint, or ``None``.

        Two specs with equal non-``None`` keys may be merged into one
        SoA batch-kernel population and de-multiplexed row-by-row
        (:func:`repro.perf.batch.run_batch_specs`).  The base spec is
        never batch-lowerable; :class:`BatchSpec` overrides this with
        the real lowering check."""
        return None


@dataclasses.dataclass(frozen=True)
class GeometrySpec(_SpecBase):
    """Per-board cache geometry (defaults mirror
    :class:`repro.system.system.BoardSpec`)."""

    kind = "geometry"

    num_sets: int = 64
    associativity: int = 2
    line_size: int = 32
    replacement: str = "lru"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "num_sets": self.num_sets,
            "associativity": self.associativity,
            "line_size": self.line_size,
            "replacement": self.replacement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeometrySpec":
        return cls(
            num_sets=int(data.get("num_sets", 64)),
            associativity=int(data.get("associativity", 2)),
            line_size=int(data.get("line_size", 32)),
            replacement=str(data.get("replacement", "lru")),
        )

    def board_kwargs(self) -> dict:
        """The BoardSpec constructor kwargs this geometry carries."""
        return {
            "num_sets": self.num_sets,
            "associativity": self.associativity,
            "line_size": self.line_size,
            "replacement": self.replacement,
        }


@dataclasses.dataclass(frozen=True)
class WorkloadSpec(_SpecBase):
    """A hashable workload: a synthetic recipe, or a literal trace.

    ``source="synthetic"`` regenerates the reference stream from
    ``(processors, references, seed, p_shared, p_write)`` -- byte-identical
    in every process.  ``source="literal"`` embeds the records outright
    (``(unit, "R"|"W", address)`` tuples), so arbitrary traces -- file
    loads, :func:`repro.workloads.ping_pong`, hand-built streams -- are
    just as hashable."""

    kind = "workload"

    source: str = "synthetic"
    processors: int = 4
    references: int = 2000
    seed: int = 7
    p_shared: float = 0.3
    p_write: float = 0.3
    records: tuple = ()

    def __post_init__(self) -> None:
        if self.source not in ("synthetic", "literal"):
            raise ValueError(f"unknown workload source {self.source!r}")

    @classmethod
    def literal(cls, trace) -> "WorkloadSpec":
        """Embed an existing :class:`repro.workloads.trace.Trace`."""
        records = tuple(
            (r.unit, r.op.value, r.address) for r in trace
        )
        return cls(source="literal", records=records)

    def build(self):
        """Materialize the :class:`~repro.workloads.trace.Trace`."""
        from repro.workloads.trace import Op, ReferenceRecord, Trace

        if self.source == "literal":
            return Trace(
                ReferenceRecord(unit, Op(op), int(address))
                for unit, op, address in self.records
            )
        from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

        config = SyntheticConfig(
            processors=self.processors,
            p_shared=self.p_shared,
            p_write=self.p_write,
        )
        return SyntheticWorkload(config, seed=self.seed).trace(self.references)

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "v": SPEC_VERSION, "source": self.source}
        if self.source == "literal":
            data["records"] = [list(record) for record in self.records]
        else:
            data.update(
                processors=self.processors,
                references=self.references,
                seed=self.seed,
                p_shared=self.p_shared,
                p_write=self.p_write,
            )
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        if data.get("source") == "literal":
            return cls(
                source="literal",
                records=tuple(
                    (str(unit), str(op), int(address))
                    for unit, op, address in data.get("records", ())
                ),
            )
        return cls(
            source="synthetic",
            processors=int(data.get("processors", 4)),
            references=int(data.get("references", 2000)),
            seed=int(data.get("seed", 7)),
            p_shared=float(data.get("p_shared", 0.3)),
            p_write=float(data.get("p_write", 0.3)),
        )


@dataclasses.dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """One (possibly heterogeneous) system over one workload.

    The frozen replacement for the old ``Session.run_experiment`` kwarg
    sprawl: ``protocols`` gives each board its own registry spec string
    (``None`` replicates ``protocol`` per workload unit), ``workload``
    and ``geometry`` are nested specs, and ``trace``/``metrics`` are the
    observability flags the executed result (and the serve payload)
    honours."""

    kind = "experiment"

    protocol: str = "moesi"
    protocols: Optional[tuple] = None
    workload: WorkloadSpec = dataclasses.field(default_factory=WorkloadSpec)
    geometry: GeometrySpec = dataclasses.field(default_factory=GeometrySpec)
    timed: bool = False
    check: bool = True
    discipline: Optional[str] = None
    label: Optional[str] = None
    trace: bool = False
    metrics: bool = True

    def __post_init__(self) -> None:
        if self.protocols is not None and not isinstance(
            self.protocols, tuple
        ):
            object.__setattr__(self, "protocols", tuple(self.protocols))

    def run_label(self) -> str:
        if self.label:
            return self.label
        if self.protocols:
            return "+".join(self.protocols)
        return self.protocol

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "protocol": self.protocol,
            "protocols": (
                list(self.protocols) if self.protocols is not None else None
            ),
            "workload": self.workload.to_dict(),
            "geometry": self.geometry.to_dict(),
            "timed": self.timed,
            "check": self.check,
            "discipline": self.discipline,
            "label": self.label,
            "trace": self.trace,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        protocols = data.get("protocols")
        return cls(
            protocol=str(data.get("protocol", "moesi")),
            protocols=tuple(protocols) if protocols is not None else None,
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            geometry=GeometrySpec.from_dict(data.get("geometry", {})),
            timed=bool(data.get("timed", False)),
            check=bool(data.get("check", True)),
            discipline=data.get("discipline"),
            label=data.get("label"),
            trace=bool(data.get("trace", False)),
            metrics=bool(data.get("metrics", True)),
        )


@dataclasses.dataclass(frozen=True)
class VerifySpec(_SpecBase):
    """The model-checking matrix, addressed by suite name.

    Suites are the named case factories in
    :data:`repro.verify.mixes.SUITES`; naming them (rather than
    embedding case objects) keeps the spec canonical and lets workers
    rebuild every case, including the unpicklable mutants."""

    kind = "verify"

    suites: tuple = (
        "class-members",
        "homogeneous-foreign",
        "incompatible",
        "mutants",
    )
    trace: bool = False
    metrics: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.suites, tuple):
            object.__setattr__(self, "suites", tuple(self.suites))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "suites": list(self.suites),
            "trace": self.trace,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerifySpec":
        suites = data.get("suites")
        kwargs = {} if suites is None else {"suites": tuple(suites)}
        return cls(
            trace=bool(data.get("trace", False)),
            metrics=bool(data.get("metrics", True)),
            **kwargs,
        )


@dataclasses.dataclass(frozen=True)
class FuzzSpec(_SpecBase):
    """A differential fuzz campaign -- or one embedded scenario.

    ``scenario`` is a (frozen, hashable)
    :class:`repro.fuzz.scenario.ScenarioConfig`; ``None`` means the
    default config and hashes identically to it.  ``scenario_json`` --
    a canonical :meth:`repro.fuzz.scenario.Scenario.canonical` string --
    switches the spec from *campaign* to *single-scenario replay* (the
    Scenario <-> FuzzSpec round trip lives in
    :func:`repro.fuzz.runner.fuzz_spec_for_scenario`)."""

    kind = "fuzz"

    seeds: int = 200
    seed_base: int = 0
    #: A repro.fuzz.scenario.ScenarioConfig, or None for the default.
    scenario: Optional[object] = None
    shrink: bool = True
    #: Canonical Scenario JSON for single-scenario replay, or None.
    scenario_json: Optional[str] = None
    trace: bool = False
    metrics: bool = True

    def scenario_config(self):
        """The effective :class:`ScenarioConfig` (default when None)."""
        from repro.fuzz.scenario import ScenarioConfig

        return self.scenario if self.scenario is not None else ScenarioConfig()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "seeds": self.seeds,
            "seed_base": self.seed_base,
            "scenario": self.scenario_config().to_dict(),
            "shrink": self.shrink,
            "scenario_json": self.scenario_json,
            "trace": self.trace,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzSpec":
        from repro.fuzz.scenario import ScenarioConfig

        scenario = data.get("scenario")
        if scenario is not None:
            scenario = ScenarioConfig.from_dict(scenario)
            # The canonical form always spells the config out; fold the
            # default back to None so round trips reproduce the spec.
            if scenario == ScenarioConfig():
                scenario = None
        return cls(
            seeds=int(data.get("seeds", 200)),
            seed_base=int(data.get("seed_base", 0)),
            scenario=scenario,
            shrink=bool(data.get("shrink", True)),
            scenario_json=data.get("scenario_json"),
            trace=bool(data.get("trace", False)),
            metrics=bool(data.get("metrics", True)),
        )


@dataclasses.dataclass(frozen=True)
class BatchSpec(_SpecBase):
    """A struct-of-arrays batch-kernel population sweep.

    ``protocols`` is resolved explicitly at plan time (no "whatever the
    registry holds today" hashes); backend and worker count are
    execution details -- the kernel is byte-identical across backends,
    so they stay out of the content hash."""

    kind = "batch"

    protocols: tuple = ("moesi",)
    rows: int = 64
    events_per_row: int = 100
    seed: int = 0
    n_units: int = 2
    geometry: tuple = (4, 2, 32, 8)
    metrics: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.protocols, tuple):
            object.__setattr__(self, "protocols", tuple(self.protocols))
        if not isinstance(self.geometry, tuple):
            object.__setattr__(self, "geometry", tuple(self.geometry))

    def batch_key(self) -> Optional[str]:
        """Compatibility fingerprint for continuous batching.

        Non-``None`` iff every protocol batch-lowers (per
        :func:`repro.perf.batch.lower_units` -- seeded-random /
        round-robin selectors do not).  Geometry, rows, seeds, and
        workloads deliberately stay *out* of the key: the kernel pads
        heterogeneous geometries to a population envelope, so any mix of
        lowerable sweeps with the same board size coalesces.  ``n_units``
        stays in because it fixes the per-row board mix columns."""
        if not self.protocols:
            return None
        try:
            from repro.perf.batch import lower_units

            lower_units((str(spec) for spec in self.protocols))
        except Exception:
            return None
        return canonical_json(
            {"kind": self.kind, "v": SPEC_VERSION, "n_units": self.n_units}
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "protocols": list(self.protocols),
            "rows": self.rows,
            "events_per_row": self.events_per_row,
            "seed": self.seed,
            "n_units": self.n_units,
            "geometry": list(self.geometry),
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchSpec":
        return cls(
            protocols=tuple(data.get("protocols", ("moesi",))),
            rows=int(data.get("rows", 64)),
            events_per_row=int(data.get("events_per_row", 100)),
            seed=int(data.get("seed", 0)),
            n_units=int(data.get("n_units", 2)),
            geometry=tuple(data.get("geometry", (4, 2, 32, 8))),
            metrics=bool(data.get("metrics", True)),
        )


@dataclasses.dataclass(frozen=True)
class ShootoutSpec(_SpecBase):
    """The [Arch85]-style protocol comparison, one row per protocol.

    With ``workload=None`` the synthetic comparison trace is regenerated
    from ``(references, seed)`` exactly as
    :func:`repro.analysis.compare.protocol_comparison` does."""

    kind = "shootout"

    protocols: tuple = ()
    references: int = 4000
    seed: int = 7
    timed: bool = True
    workload: Optional[WorkloadSpec] = None
    trace: bool = False
    metrics: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.protocols, tuple):
            object.__setattr__(self, "protocols", tuple(self.protocols))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "v": SPEC_VERSION,
            "protocols": list(self.protocols),
            "references": self.references,
            "seed": self.seed,
            "timed": self.timed,
            "workload": (
                self.workload.to_dict() if self.workload is not None else None
            ),
            "trace": self.trace,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShootoutSpec":
        workload = data.get("workload")
        return cls(
            protocols=tuple(data.get("protocols", ())),
            references=int(data.get("references", 4000)),
            seed=int(data.get("seed", 7)),
            timed=bool(data.get("timed", True)),
            workload=(
                WorkloadSpec.from_dict(workload)
                if workload is not None
                else None
            ),
            trace=bool(data.get("trace", False)),
            metrics=bool(data.get("metrics", True)),
        )


#: Spec kinds addressable from canonical dicts and the serve protocol.
SPEC_KINDS: dict = {
    "experiment": ExperimentSpec,
    "verify": VerifySpec,
    "fuzz": FuzzSpec,
    "batch": BatchSpec,
    "shootout": ShootoutSpec,
}

AnySpec = Union[ExperimentSpec, VerifySpec, FuzzSpec, BatchSpec, ShootoutSpec]


def spec_from_dict(data: dict) -> AnySpec:
    """Rebuild a spec from its :meth:`to_dict` payload (``kind`` tagged)."""
    if not isinstance(data, dict):
        raise ValueError(f"spec payload must be a dict, got {type(data).__name__}")
    kind = data.get("kind")
    cls = SPEC_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(SPEC_KINDS))
        raise ValueError(f"unknown spec kind {kind!r}; known: {known}")
    return cls.from_dict(data)


def spec_from_canonical(text: str) -> AnySpec:
    """Rebuild a spec from its canonical string."""
    return spec_from_dict(json.loads(text))

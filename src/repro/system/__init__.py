"""System layer: the discrete-event engine, processors, the system builder
(atomic runs with runtime coherence checking), the timed runner, and
statistics."""

from repro.system.arbitrated import ArbitratedRun, arbitrated_run_from_trace
from repro.system.des import EventQueue, ScheduledEvent, Simulator
from repro.system.processor import Processor, ProcessorStats, ProcessorTiming
from repro.system.runner import TimedRun, timed_run_from_trace
from repro.system.stats import BusStats, SystemReport
from repro.system.system import BoardSpec, CoherenceError, System

__all__ = [
    "ArbitratedRun",
    "arbitrated_run_from_trace",
    "EventQueue",
    "ScheduledEvent",
    "Simulator",
    "Processor",
    "ProcessorStats",
    "ProcessorTiming",
    "TimedRun",
    "timed_run_from_trace",
    "BusStats",
    "SystemReport",
    "BoardSpec",
    "CoherenceError",
    "System",
]

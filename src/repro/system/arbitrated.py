"""Arbitrated timed runner: bus grants ordered by an explicit arbiter.

:class:`~repro.system.runner.TimedRun` serializes bus work in request
order (implicit FCFS).  This runner defers bus work until an
:class:`~repro.bus.arbiter.FcfsArbiter` or
:class:`~repro.bus.arbiter.PriorityArbiter` grants the bus, which makes
arbitration policy observable: a priority slot for an I/O board (the
backplane tradition) visibly shortens its bus-wait at the expense of the
CPUs.

Mechanics: when a processor's next reference *may* need the bus (probed
against its cache directory and protocol without executing anything), it
enqueues an arbitration request and stalls; when the bus frees, the
arbiter picks the next requester, whose reference then executes
atomically and occupies the bus for the measured duration.  References
that hit silently bypass arbitration entirely.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.bus.arbiter import Arbiter, FcfsArbiter, arbiter_by_name
from repro.cache.controller import CacheController, NonCachingMaster
from repro.core.events import LocalEvent
from repro.core.states import LineState
from repro.system.des import Simulator
from repro.system.processor import Processor
from repro.system.stats import SystemReport
from repro.system.system import System
from repro.workloads.trace import Op, Trace

__all__ = ["ArbitratedRun", "arbitrated_run_from_trace"]


class ArbitratedRun:
    """Timed run in which an arbiter orders access to the shared bus."""

    def __init__(
        self,
        system: System,
        processors: Iterable[Processor],
        arbiter: Optional[Union[str, Arbiter]] = None,
    ) -> None:
        self.system = system
        self.processors = {p.unit_id: p for p in processors}
        unknown = [
            unit for unit in self.processors
            if unit not in system.controllers
        ]
        if unknown:
            raise ValueError(f"processors without boards: {unknown}")
        self.arbiter = (
            arbiter_by_name(arbiter) if arbiter is not None else FcfsArbiter()
        )
        self.sim = Simulator()
        self._bus_busy = False
        #: The reference each stalled processor is waiting to issue.
        self._waiting: dict[str, tuple[Op, int]] = {}

    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[float] = None) -> SystemReport:
        for index, processor in enumerate(self.processors.values()):
            self.sim.at(float(index), self._make_step(processor))
        self.sim.run(until=until_ns)
        return self.system.report(elapsed_ns=self.sim.now)

    # ------------------------------------------------------------------
    def _may_need_bus(self, unit: str, op: Op, address: int) -> bool:
        """Probe without executing: could this reference touch the bus?

        Conservative: a miss, or any hit whose protocol action is not
        silent, needs arbitration.  (The probe may be stale by grant time;
        the execution simply re-runs the real protocol path.)
        """
        board = self.system.controllers[unit]
        if isinstance(board, NonCachingMaster):
            return True
        assert isinstance(board, CacheController)
        line_address = board.cache.line_address(address)
        state = board.cache.probe_state(line_address)
        if state is LineState.INVALID:
            return True
        event = LocalEvent.READ if op is Op.READ else LocalEvent.WRITE
        action = board.protocol.local_action(state, event)
        return not action.is_silent

    def _execute(self, unit: str, op: Op, address: int) -> float:
        """Run the reference; return the bus time it consumed."""
        before = self.system.bus.busy_ns
        if op is Op.READ:
            self.system.read(unit, address)
        else:
            self.system.write(unit, address)
        return self.system.bus.busy_ns - before

    def _make_step(self, processor: Processor):
        def step() -> None:
            ref = processor.next_reference()
            if ref is None:
                processor.stats.finished_at = self.sim.now
                self._try_grant()
                return
            op, address = ref
            if not self._may_need_bus(processor.unit_id, op, address):
                self._execute(processor.unit_id, op, address)
                processor.stats.completed += 1
                processor.stats.stall_ns += processor.timing.hit_ns
                self.sim.after(
                    processor.timing.hit_ns + processor.timing.think_ns, step
                )
                return
            # Needs the bus: request and stall until granted.
            self._waiting[processor.unit_id] = (op, address)
            self.arbiter.request(processor.unit_id, self.sim.now)
            processor.stats.bus_wait_ns -= self.sim.now  # closed at grant
            self._try_grant()

        return step

    def _try_grant(self) -> None:
        if self._bus_busy:
            return
        request = self.arbiter.grant()
        if request is None:
            return
        unit = request.master
        op, address = self._waiting.pop(unit)
        processor = self.processors[unit]
        processor.stats.bus_wait_ns += self.sim.now  # closes the -= above
        bus_time = self._execute(unit, op, address)
        duration = bus_time if bus_time > 0 else processor.timing.hit_ns
        processor.stats.completed += 1
        processor.stats.stall_ns += duration
        self._bus_busy = True

        def release() -> None:
            self._bus_busy = False
            self._try_grant()

        self.sim.after(duration, release)
        self.sim.after(
            duration + processor.timing.think_ns,
            self._make_step(processor),
        )


def arbitrated_run_from_trace(
    system: System,
    trace: Trace,
    arbiter: Optional[Union[str, Arbiter]] = None,
    timing=None,
) -> ArbitratedRun:
    """Partition a trace per unit and build an arbitrated run.

    ``arbiter`` may be an instance or a discipline spec string
    (``"fcfs"``, ``"priority[:m=p,...]"``, ``"round-robin"``).
    """
    per_unit: dict[str, list[tuple[Op, int]]] = {}
    for record in trace:
        per_unit.setdefault(record.unit, []).append(
            (record.op, record.address)
        )
    processors = [
        Processor(unit, iter(refs), timing)
        for unit, refs in per_unit.items()
    ]
    return ArbitratedRun(system, processors, arbiter=arbiter)

"""A minimal discrete-event simulation engine.

Classic calendar-queue design: events are (time, sequence, callback)
triples in a heap; ties in time are broken by scheduling order so runs are
fully deterministic.  The engine knows nothing about buses or caches --
:mod:`repro.system.runner` builds the multiprocessor simulation on top.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, Optional

__all__ = ["ScheduledEvent", "EventQueue", "Simulator"]


@dataclasses.dataclass(frozen=True, order=True)
class ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class EventQueue:
    """Heap of pending events."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        event = ScheduledEvent(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        return heapq.heappop(self._heap) if self._heap else None

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class Simulator:
    """Run callbacks in simulated-time order.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.at(5.0, lambda: out.append("b"))
    >>> _ = sim.at(1.0, lambda: out.append("a"))
    >>> sim.run()
    >>> out, sim.now
    (['a', 'b'], 5.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0

    def at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.push(time, callback)

    def after(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._queue.push(self.now + delay, callback)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run."""
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                return
            event = self._queue.pop()
            assert event is not None
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1

    @property
    def pending(self) -> int:
        return len(self._queue)

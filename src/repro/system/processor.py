"""Processor model for the timed simulation.

Each processor issues references from its stream, separated by a think
time (local computation).  A reference that hits in the cache completes in
``hit_ns``; one that needs the bus must first win the (serialized) bus and
then occupy it for the transaction's duration -- the processor stalls for
the whole memory access, which is the first-order behaviour the paper's
motivation rests on ("the access time to main memory across a bus ... is
likely to be so large as to appreciably slow down the processor",
section 1).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.workloads.trace import Op

__all__ = ["ProcessorTiming", "ProcessorStats", "Processor"]


@dataclasses.dataclass(frozen=True)
class ProcessorTiming:
    """Per-processor delays, in nanoseconds."""

    #: Local computation between consecutive memory references.
    think_ns: float = 60.0
    #: Cache-hit access time (no bus involvement).
    hit_ns: float = 40.0


@dataclasses.dataclass
class ProcessorStats:
    """What one processor experienced during a timed run."""

    issued: int = 0
    completed: int = 0
    stall_ns: float = 0.0
    bus_wait_ns: float = 0.0
    finished_at: float = 0.0

    @property
    def mean_stall_ns(self) -> float:
        return self.stall_ns / self.completed if self.completed else 0.0


class Processor:
    """One processor's reference stream and its progress bookkeeping.

    The runner drives :meth:`next_reference`; the processor itself holds
    no simulation logic so it can be unit-tested in isolation.
    """

    def __init__(
        self,
        unit_id: str,
        stream: Iterator[tuple[Op, int]],
        timing: Optional[ProcessorTiming] = None,
    ) -> None:
        self.unit_id = unit_id
        self._stream = iter(stream)
        self.timing = timing or ProcessorTiming()
        self.stats = ProcessorStats()
        self.done = False

    def next_reference(self) -> Optional[tuple[Op, int]]:
        """The next (op, byte-address) pair, or None when the stream ends."""
        if self.done:
            return None
        ref = next(self._stream, None)
        if ref is None:
            self.done = True
            return None
        self.stats.issued += 1
        return ref

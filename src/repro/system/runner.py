"""Timed multiprocessor simulation: processors + system + event queue.

The single shared bus serializes every coherence action, so the timed
model keeps transaction *semantics* atomic (exactly as the paper's tables
describe them) and layers time on top:

* each processor issues its next reference after a think time;
* a reference that stays in the cache completes after the hit time;
* a reference that generated bus work occupies the bus for the measured
  transaction time (including any aborted attempts and pushes it
  triggered), *after* waiting for the bus to become free -- this is where
  bus contention, the paper's second motivating constraint ("no feasible
  bus design can provide adequate bandwidth ... for any reasonable number
  of high performance processors"), becomes visible.

Determinism: ties are broken by event scheduling order, so a run is fully
reproducible given its streams.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.deprecation import warn_deprecated
from repro.system.des import Simulator
from repro.system.processor import Processor, ProcessorTiming
from repro.system.stats import SystemReport
from repro.system.system import System
from repro.workloads.trace import Op, Trace

__all__ = ["TimedRun", "Runner", "timed_run_from_trace"]


class TimedRun:
    """Drive a :class:`~repro.system.system.System` with timed processors."""

    def __init__(
        self,
        system: System,
        processors: Iterable[Processor],
    ) -> None:
        self.system = system
        self.processors = list(processors)
        unknown = [
            p.unit_id
            for p in self.processors
            if p.unit_id not in system.controllers
        ]
        if unknown:
            raise ValueError(f"processors without boards: {unknown}")
        self.sim = Simulator()
        self._bus_free_at = 0.0

    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[float] = None) -> SystemReport:
        """Run every stream to exhaustion (or the time limit); returns the
        system report with elapsed time filled in."""
        tracer = self.system.tracer
        for index, processor in enumerate(self.processors):
            # Stagger initial issues so start order is deterministic but
            # not all at t=0.
            self.sim.at(float(index), self._make_step(processor))
            if tracer is not None:
                tracer.des(
                    "schedule", float(index), processor.unit_id, initial=True
                )
        self.sim.run(until=until_ns)
        elapsed = self.sim.now
        for processor in self.processors:
            processor.stats.finished_at = min(
                processor.stats.finished_at or elapsed, elapsed
            )
        return self.system.report(elapsed_ns=elapsed)

    # ------------------------------------------------------------------
    def _make_step(self, processor: Processor):
        # step() runs once per memory reference -- the DES hot path.
        # Everything invariant across steps is hoisted into closure
        # locals; only the tracer (attachable mid-run) and the shared
        # bus-free horizon are re-read through ``self``.
        system = self.system
        sim = self.sim
        bus = system.bus
        unit_id = processor.unit_id
        stats = processor.stats
        hit_ns = processor.timing.hit_ns
        think_ns = processor.timing.think_ns
        next_reference = processor.next_reference

        def step() -> None:
            tracer = system.tracer
            ref = next_reference()
            if ref is None:
                stats.finished_at = sim.now
                if tracer is not None:
                    tracer.des("retire", sim.now, unit_id, drained=True)
                return
            op, address = ref
            if tracer is not None:
                tracer.des("fire", sim.now, unit_id,
                           op=op.value, address=address)
            busy_before = bus.busy_ns
            if op is Op.READ:
                system.read(unit_id, address)
            else:
                system.write(unit_id, address)
            bus_time = bus.busy_ns - busy_before

            now = sim.now
            if bus_time > 0:
                start = max(now, self._bus_free_at)
                finish = start + bus_time
                self._bus_free_at = finish
                stats.bus_wait_ns += start - now
                stats.stall_ns += finish - now
            else:
                finish = now + hit_ns
                stats.stall_ns += hit_ns
            stats.completed += 1
            next_at = finish + think_ns
            sim.at(next_at, step)
            if tracer is not None:
                tracer.des("retire", finish, unit_id,
                           op=op.value, address=address,
                           stall_ns=round(finish - now, 3))
                tracer.des("schedule", finish, unit_id,
                           at_ns=round(next_at, 3))

        return step


class Runner(TimedRun):
    """Deprecated pre-``repro.api`` name for :class:`TimedRun`.

    Kept so old scripts keep working; the first :meth:`run` per process
    points at the replacement.
    """

    def run(self, until_ns: Optional[float] = None) -> SystemReport:
        warn_deprecated(
            "repro.system.runner.Runner.run",
            "repro.api.Session.run_timed (or repro.api.run_experiment)",
        )
        return super().run(until_ns)


def timed_run_from_trace(
    system: System,
    trace: Trace,
    timing: Optional[ProcessorTiming] = None,
) -> TimedRun:
    """Partition a global trace per unit and build a timed run.

    Each unit replays its own subsequence; the global interleaving then
    emerges from the timing model rather than the trace order.
    """
    per_unit: dict[str, list[tuple[Op, int]]] = {}
    for record in trace:
        per_unit.setdefault(record.unit, []).append((record.op, record.address))
    processors = [
        Processor(unit_id, iter(refs), timing)
        for unit_id, refs in per_unit.items()
    ]
    return TimedRun(system, processors)

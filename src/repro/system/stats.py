"""System-wide statistics: bus traffic, protocol events, derived metrics.

The metrics mirror what the paper's performance discussion (section 5.2)
and its reference comparison [Arch85] report: bus transactions and cycles
per memory reference, miss ratios, invalidation/update counts, how often
an intervenient cache (rather than memory) supplied data, and abort/retry
overhead for the BS-adapted protocols.

Since the observability redesign this layer sits on
:class:`repro.obs.metrics.MetricsRegistry`: :class:`BusStats` keeps its
counters *in* a registry (one cached metric object per counter, so the
hot path is still a single attribute update) and exposes the historical
attribute API as properties.  That buys deterministic snapshots
(:meth:`BusStats.to_dict`), merging of worker snapshots, and a stable
JSON round-trip for :class:`SystemReport`.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter as EventCounter
from typing import TYPE_CHECKING, Optional

from repro.core.actions import BusOp
from repro.core.events import BusEvent
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bus.transaction import Transaction, TransactionResult

__all__ = ["BusStats", "SystemReport"]

_BY_EVENT_PREFIX = "bus.by_event."


class BusStats:
    """Counters fed by :class:`repro.bus.futurebus.Futurebus`.

    Backed by a :class:`~repro.obs.metrics.MetricsRegistry` (prefix
    ``bus``); the pre-redesign attribute API (``stats.transactions``,
    ``stats.busy_ns``, ...) is preserved as read/write properties over
    the registry's metric objects.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry(prefix="bus")
        reg = self.registry
        self._transactions = reg.counter("transactions")
        self._address_only = reg.counter("address_only")
        self._reads = reg.counter("reads")
        self._writes = reg.counter("writes")
        self._retries = reg.counter("retries")
        self._interventions = reg.counter("interventions")
        self._broadcast_transfers = reg.counter("broadcast_transfers")
        self._connector_updates = reg.counter("connector_updates")
        self._busy_ns = reg.accumulator("busy_ns")
        #: Transactions per :class:`~repro.core.events.BusEvent` column.
        self.by_event: EventCounter = EventCounter()

    # -- historical attribute API, now property-backed -----------------
    @property
    def transactions(self) -> int:
        return self._transactions.value

    @transactions.setter
    def transactions(self, value: int) -> None:
        self._transactions.value = value

    @property
    def address_only(self) -> int:
        return self._address_only.value

    @address_only.setter
    def address_only(self, value: int) -> None:
        self._address_only.value = value

    @property
    def reads(self) -> int:
        return self._reads.value

    @reads.setter
    def reads(self, value: int) -> None:
        self._reads.value = value

    @property
    def writes(self) -> int:
        return self._writes.value

    @writes.setter
    def writes(self, value: int) -> None:
        self._writes.value = value

    @property
    def retries(self) -> int:
        return self._retries.value

    @retries.setter
    def retries(self, value: int) -> None:
        self._retries.value = value

    @property
    def interventions(self) -> int:
        return self._interventions.value

    @interventions.setter
    def interventions(self, value: int) -> None:
        self._interventions.value = value

    @property
    def broadcast_transfers(self) -> int:
        return self._broadcast_transfers.value

    @broadcast_transfers.setter
    def broadcast_transfers(self, value: int) -> None:
        self._broadcast_transfers.value = value

    @property
    def connector_updates(self) -> int:
        return self._connector_updates.value

    @connector_updates.setter
    def connector_updates(self, value: int) -> None:
        self._connector_updates.value = value

    @property
    def busy_ns(self) -> float:
        return self._busy_ns.total

    @busy_ns.setter
    def busy_ns(self, value: float) -> None:
        self._busy_ns.total = value

    # ------------------------------------------------------------------
    def record_transaction(
        self, txn: "Transaction", result: "TransactionResult"
    ) -> None:
        # Inlined counter updates (``.value += n`` instead of ``.inc()``):
        # this runs once per bus transaction and the method dispatch was
        # measurable in the explorer's hot loop.
        self._transactions.value += 1
        self.by_event[txn.event] += 1
        if txn.op is BusOp.NONE:
            self._address_only.value += 1
        elif txn.op is BusOp.READ:
            self._reads.value += 1
        elif txn.op is BusOp.WRITE:
            self._writes.value += 1
        if result.retries:
            self._retries.value += result.retries
        if result.aggregate.di:
            self._interventions.value += 1
        connectors = result.connectors
        if txn.signals.bc or connectors:
            self._broadcast_transfers.value += 1
        if connectors:
            self._connector_updates.value += len(connectors)
        self._busy_ns.total += result.duration_ns

    def count(self, event: BusEvent) -> int:
        return self.by_event.get(event, 0)

    def reset(self) -> None:
        self.registry.reset()
        self.by_event.clear()

    # ------------------------------------------------------------------
    # Snapshots (deterministic, JSON-able, mergeable).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic flat snapshot: dotted metric names -> values."""
        snapshot = self.registry.to_dict()
        for event in sorted(self.by_event, key=lambda e: e.name):
            snapshot[f"{_BY_EVENT_PREFIX}{event.name}"] = self.by_event[event]
        return dict(sorted(snapshot.items()))

    @classmethod
    def from_dict(cls, snapshot: dict) -> "BusStats":
        stats = cls()
        plain: dict[str, object] = {}
        for key, value in snapshot.items():
            if key.startswith(_BY_EVENT_PREFIX):
                event = BusEvent[key[len(_BY_EVENT_PREFIX):]]
                stats.by_event[event] = int(value)
            else:
                plain[key] = value
        stats.registry.load_dict(plain)
        return stats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BusStats(transactions={self.transactions}, "
            f"busy_ns={self.busy_ns:.1f})"
        )


@dataclasses.dataclass
class SystemReport:
    """Derived whole-run metrics, ready for table printing.

    ``accesses`` counts processor references; everything else is
    normalized against it where sensible.  ``metrics`` carries the
    whole-system registry snapshot and ``trace`` the exported structured
    trace (when one was attached), so a report is a self-contained
    experiment record with a stable JSON round-trip.
    """

    label: str
    accesses: int
    bus: BusStats
    miss_ratio: float
    invalidations: int
    updates_received: int
    write_backs: int
    abort_pushes: int
    elapsed_ns: float = 0.0
    #: Whole-system metrics snapshot (MetricsRegistry.to_dict), or None.
    metrics: Optional[dict] = None
    #: Exported structured trace (list of TraceEvent dicts), or None.
    #: May be passed as a lazy ``(tracer, event_count)`` handle; the
    #: ``trace`` property (installed below) exports on first access, so
    #: building a report costs nothing trace-wise until the trace is
    #: actually read.
    trace: Optional[list] = None

    @property
    def bus_transactions_per_access(self) -> float:
        return self.bus.transactions / self.accesses if self.accesses else 0.0

    @property
    def bus_ns_per_access(self) -> float:
        return self.bus.busy_ns / self.accesses if self.accesses else 0.0

    @property
    def bus_utilization(self) -> Optional[float]:
        if not self.elapsed_ns:
            return None
        return min(1.0, self.bus.busy_ns / self.elapsed_ns)

    def row(self) -> dict[str, object]:
        """Flat dict for the report/bench printers."""
        return {
            "system": self.label,
            "accesses": self.accesses,
            "miss_ratio": round(self.miss_ratio, 4),
            "bus_txns": self.bus.transactions,
            "txns_per_access": round(self.bus_transactions_per_access, 4),
            "bus_ns_per_access": round(self.bus_ns_per_access, 1),
            "invalidations": self.invalidations,
            "updates": self.updates_received,
            "write_backs": self.write_backs,
            "interventions": self.bus.interventions,
            "aborts": self.bus.retries,
        }

    # ------------------------------------------------------------------
    # Stable serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "accesses": self.accesses,
            "bus": self.bus.to_dict(),
            "miss_ratio": self.miss_ratio,
            "invalidations": self.invalidations,
            "updates_received": self.updates_received,
            "write_backs": self.write_backs,
            "abort_pushes": self.abort_pushes,
            "elapsed_ns": self.elapsed_ns,
            "metrics": self.metrics,
            "trace": self.trace,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact separators) -- two equal
        reports serialize to identical bytes."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SystemReport":
        return cls(
            label=data["label"],
            accesses=data["accesses"],
            bus=BusStats.from_dict(data["bus"]),
            miss_ratio=data["miss_ratio"],
            invalidations=data["invalidations"],
            updates_received=data["updates_received"],
            write_backs=data["write_backs"],
            abort_pushes=data["abort_pushes"],
            elapsed_ns=data.get("elapsed_ns", 0.0),
            metrics=data.get("metrics"),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SystemReport":
        return cls.from_dict(json.loads(text))

    def trace_handle(self):
        """The raw stored trace value -- a list, None, or the lazy
        ``(tracer, count)`` handle -- without forcing an export."""
        return self._trace_value


def _trace_get(self) -> Optional[list]:
    value = self._trace_value
    if value is None or isinstance(value, list):
        return value
    tracer, count = value
    events = tracer.export()
    if len(events) > count:
        # The tracer kept recording after this report was taken (one
        # session tracing several runs); this report covers the prefix.
        events = events[:count]
    self._trace_value = events
    return events


def _trace_set(self, value) -> None:
    self._trace_value = value


#: Install ``trace`` as a lazy property over the dataclass field: the
#: report constructor accepts either the exported list or a cheap
#: ``(tracer, count)`` handle, and the encode/export cost is paid on
#: first read instead of at report time (the obs fast-path contract:
#: a traced *run* costs only the compact emission appends).
SystemReport.trace = property(  # type: ignore[assignment]
    _trace_get, _trace_set, doc="Exported structured trace, or None."
)

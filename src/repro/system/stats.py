"""System-wide statistics: bus traffic, protocol events, derived metrics.

The metrics mirror what the paper's performance discussion (section 5.2)
and its reference comparison [Arch85] report: bus transactions and cycles
per memory reference, miss ratios, invalidation/update counts, how often
an intervenient cache (rather than memory) supplied data, and abort/retry
overhead for the BS-adapted protocols.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.core.actions import BusOp
from repro.core.events import BusEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bus.transaction import Transaction, TransactionResult

__all__ = ["BusStats", "SystemReport"]


@dataclasses.dataclass
class BusStats:
    """Counters fed by :class:`repro.bus.futurebus.Futurebus`."""

    transactions: int = 0
    address_only: int = 0
    reads: int = 0
    writes: int = 0
    retries: int = 0
    interventions: int = 0
    broadcast_transfers: int = 0
    connector_updates: int = 0
    busy_ns: float = 0.0
    by_event: Counter = dataclasses.field(default_factory=Counter)

    def record_transaction(
        self, txn: "Transaction", result: "TransactionResult"
    ) -> None:
        self.transactions += 1
        self.by_event[txn.event] += 1
        if txn.op is BusOp.NONE:
            self.address_only += 1
        elif txn.op is BusOp.READ:
            self.reads += 1
        elif txn.op is BusOp.WRITE:
            self.writes += 1
        self.retries += result.retries
        if result.intervened:
            self.interventions += 1
        if txn.signals.bc or result.connectors:
            self.broadcast_transfers += 1
        self.connector_updates += len(result.connectors)
        self.busy_ns += result.duration_ns

    def count(self, event: BusEvent) -> int:
        return self.by_event.get(event, 0)

    def reset(self) -> None:
        self.transactions = 0
        self.address_only = 0
        self.reads = 0
        self.writes = 0
        self.retries = 0
        self.interventions = 0
        self.broadcast_transfers = 0
        self.connector_updates = 0
        self.busy_ns = 0.0
        self.by_event.clear()


@dataclasses.dataclass
class SystemReport:
    """Derived whole-run metrics, ready for table printing.

    ``accesses`` counts processor references; everything else is
    normalized against it where sensible.
    """

    label: str
    accesses: int
    bus: BusStats
    miss_ratio: float
    invalidations: int
    updates_received: int
    write_backs: int
    abort_pushes: int
    elapsed_ns: float = 0.0

    @property
    def bus_transactions_per_access(self) -> float:
        return self.bus.transactions / self.accesses if self.accesses else 0.0

    @property
    def bus_ns_per_access(self) -> float:
        return self.bus.busy_ns / self.accesses if self.accesses else 0.0

    @property
    def bus_utilization(self) -> Optional[float]:
        if not self.elapsed_ns:
            return None
        return min(1.0, self.bus.busy_ns / self.elapsed_ns)

    def row(self) -> dict[str, object]:
        """Flat dict for the report/bench printers."""
        return {
            "system": self.label,
            "accesses": self.accesses,
            "miss_ratio": round(self.miss_ratio, 4),
            "bus_txns": self.bus.transactions,
            "txns_per_access": round(self.bus_transactions_per_access, 4),
            "bus_ns_per_access": round(self.bus_ns_per_access, 1),
            "invalidations": self.invalidations,
            "updates": self.updates_received,
            "write_backs": self.write_backs,
            "interventions": self.bus.interventions,
            "aborts": self.bus.retries,
        }

"""System builder and the synchronous (atomic-transaction) runner.

A :class:`System` wires processors' cache controllers, main memory, and
the Futurebus together from declarative :class:`BoardSpec` entries --
possibly each board running a *different* protocol, which is the paper's
point ("different boards on the bus can implement different protocols,
provided that each comes from this class", section 3.4).

Running a trace synchronously treats each reference as one atomic step
(the abstraction of the paper's tables); the timed run lives in
:mod:`repro.system.runner`.  After every reference the system can check
the coherence contract at runtime:

* every read must return the *globally last written* token for its line;
* the per-line MOESI invariants of :mod:`repro.core.invariants` hold.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence, Union

from repro.bus.futurebus import Futurebus
from repro.bus.timing import BusTiming
from repro.cache.cache import SetAssociativeCache
from repro.cache.controller import CacheController, NonCachingMaster
from repro.cache.replacement import replacement_by_name
from repro.core.actions import MasterKind
from repro.core.invariants import (
    CopyView,
    InvariantViolation,
    LineView,
    check_line,
)
from repro.core.protocol import Protocol
from repro.memory.main_memory import MainMemory
from repro.protocols.registry import make_protocol
from repro.system.stats import BusStats, SystemReport
from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = ["BoardSpec", "CoherenceError", "System"]


@dataclasses.dataclass
class BoardSpec:
    """Declarative description of one board on the backplane."""

    unit_id: str
    #: Registry name (see :mod:`repro.protocols.registry`) or an instance.
    protocol: Union[str, Protocol] = "moesi"
    num_sets: int = 64
    associativity: int = 2
    line_size: int = 32
    replacement: str = "lru"

    def make_protocol(self) -> Protocol:
        if isinstance(self.protocol, Protocol):
            return self.protocol
        return make_protocol(self.protocol)


class CoherenceError(AssertionError):
    """A runtime coherence violation (stale read or broken invariant)."""


class System:
    """N boards + memory + Futurebus, with global write-version tracking."""

    def __init__(
        self,
        boards: Sequence[BoardSpec],
        timing: Optional[BusTiming] = None,
        check: bool = True,
        label: str = "system",
    ) -> None:
        if not boards:
            raise ValueError("a system needs at least one board")
        self.label = label
        self.check = check
        self.bus_stats = BusStats()
        self.memory = MainMemory()
        self.bus = Futurebus(self.memory, timing=timing, stats=self.bus_stats)
        self.controllers: dict[str, Union[CacheController, NonCachingMaster]] = {}
        self.line_size: Optional[int] = None
        for spec in boards:
            self._add_board(spec)
        #: Bound ``probe_copy`` methods, one per board, cached for the
        #: per-access invariant precheck (rebuilt if boards change).
        self._probe_fns: Optional[list] = None
        #: Last written token per line address (the coherence oracle).
        self._last_version: dict[int, int] = {}
        self._version_counter = 0
        self.accesses = 0
        #: The attached :class:`repro.obs.trace.Tracer`, or None.
        self.tracer = None

    # ------------------------------------------------------------------
    def _add_board(self, spec: BoardSpec) -> None:
        protocol = spec.make_protocol()
        if protocol.kind is MasterKind.NON_CACHING:
            master = NonCachingMaster(spec.unit_id, protocol, self.bus)
            master.line_size = spec.line_size
            board: Union[CacheController, NonCachingMaster] = master
        else:
            cache = SetAssociativeCache(
                num_sets=spec.num_sets,
                associativity=spec.associativity,
                line_size=spec.line_size,
                replacement=replacement_by_name(
                    spec.replacement, spec.num_sets, spec.associativity
                ),
            )
            board = CacheController(spec.unit_id, protocol, cache, self.bus)
        if self.line_size is None:
            self.line_size = spec.line_size
        elif self.line_size != spec.line_size:
            # Paper section 5.1: the working group requires a uniform
            # system line size; repro.ext.linesize demonstrates why.
            raise ValueError(
                f"line size mismatch: {spec.unit_id} uses {spec.line_size}, "
                f"system standard is {self.line_size}"
            )
        self.controllers[spec.unit_id] = board

    @classmethod
    def homogeneous(
        cls,
        protocol: str,
        n: int,
        label: Optional[str] = None,
        **board_kwargs,
    ) -> "System":
        """N identical boards running ``protocol``."""
        boards = [
            BoardSpec(unit_id=f"cpu{i}", protocol=protocol, **board_kwargs)
            for i in range(n)
        ]
        return cls(boards, label=label or f"{protocol} x{n}")

    # ------------------------------------------------------------------
    # Synchronous execution.
    # ------------------------------------------------------------------
    def _line_address(self, byte_address: int) -> int:
        assert self.line_size is not None
        return byte_address // self.line_size

    def read(self, unit: str, byte_address: int) -> int:
        """One processor load, with the read-coherence check."""
        self.accesses += 1
        value = self.controllers[unit].read(byte_address)
        if self.check:
            line_address = self._line_address(byte_address)
            expected = self._last_version.get(line_address, 0)
            if value != expected:
                raise CoherenceError(
                    f"{unit} read 0x{byte_address:x}: got token {value}, "
                    f"last write was {expected}"
                )
            self._check_invariants(line_address)
        return value

    def write(self, unit: str, byte_address: int) -> int:
        """One processor store; the system allocates the version token."""
        self.accesses += 1
        self._version_counter += 1
        token = self._version_counter
        self.controllers[unit].write(byte_address, token)
        line_address = self._line_address(byte_address)
        self._last_version[line_address] = token
        if self.check:
            self._check_invariants(line_address)
        return token

    def apply(self, record: ReferenceRecord) -> None:
        if record.op is Op.READ:
            self.read(record.unit, record.address)
        else:
            self.write(record.unit, record.address)

    def run_trace(self, trace: Union[Trace, Iterable[ReferenceRecord]]) -> None:
        for record in trace:
            self.apply(record)

    # ------------------------------------------------------------------
    # Observation hooks.
    # ------------------------------------------------------------------
    def install_transition_observer(self, observer) -> None:
        """Subscribe ``observer(unit_id, side, state, event, action)`` to
        every protocol decision on every board.

        ``side`` is ``"local"`` (Table 1) or ``"snoop"`` (Table 2); the
        action is the one the protocol *chose*, before conditional-state
        resolution -- exactly what the tables print.  Pass ``None`` to
        unsubscribe.  The fuzzer's differential oracle is the main client.
        """
        for board in self.controllers.values():
            board.transition_observer = observer

    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`repro.obs.trace.Tracer` into the bus and every
        board's transition trace hook (``None`` detaches).  Orthogonal to
        :meth:`install_transition_observer`, so a traced run can still
        carry the fuzzer's oracle."""
        from repro.obs.trace import attach_tracer as _attach

        _attach(self, tracer)
        self.tracer = tracer

    def metrics(self):
        """Snapshot this system's counters as a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import system_metrics

        return system_metrics(self)

    def last_written_token(self, line_address: int) -> int:
        """The globally last written version token for ``line_address``
        (0 if the line was never written) -- the read-coherence oracle."""
        return self._last_version.get(line_address, 0)

    # ------------------------------------------------------------------
    # Coherence checking.
    # ------------------------------------------------------------------
    def line_view(self, line_address: int) -> LineView:
        expected = self._last_version.get(line_address, 0)
        copies = []
        for unit_id, board in self.controllers.items():
            state = board.state_of(line_address)
            if not state.valid:
                continue
            value = board.value_of(line_address)  # type: ignore[union-attr]
            copies.append(
                CopyView(unit=unit_id, state=state, fresh=(value == expected))
            )
        return LineView.of(
            copies,
            memory_fresh=(self.memory.peek(line_address) == expected),
            address=line_address,
        )

    def check_coherence(
        self, line_addresses: Optional[Iterable[int]] = None
    ) -> list[InvariantViolation]:
        """Check the MOESI invariants on the given (or all known) lines."""
        if line_addresses is None:
            known: set[int] = set(self._last_version)
            known.update(self.memory.addresses())
            for board in self.controllers.values():
                for line_address, _, _ in board.cached_lines():
                    known.add(line_address)
            line_addresses = sorted(known)
        violations: list[InvariantViolation] = []
        for line_address in line_addresses:
            if self._line_clean(line_address):
                continue
            violations.extend(check_line(self.line_view(line_address)))
        return violations

    def _line_clean(self, line_address: int) -> bool:
        """One-pass boolean precheck, equivalent to ``check_line`` finding
        nothing on this line's view.

        ``check_line`` runs after *every* checked access; building the
        :class:`LineView`/:class:`CopyView` snapshot and composing five
        checkers per access dominated the synchronous runner.  The dirty
        path falls back to the full checker for identical diagnostics.
        """
        expected = self._last_version.get(line_address, 0)
        n_valid = 0
        n_owners = 0
        sole_copy_seen = False
        probes = self._probe_fns
        if probes is None or len(probes) != len(self.controllers):
            probes = self._probe_fns = [
                board.probe_copy for board in self.controllers.values()
            ]
        for probe in probes:
            copy = probe(line_address)
            if copy is None:
                continue
            state, value = copy
            if not state.valid:
                continue
            n_valid += 1
            if state.intervenient:
                n_owners += 1
            if state.sole_copy:
                sole_copy_seen = True
            if value != expected:
                return False  # stale copy (COPIES/OWNER_CURRENT)
        if n_owners > 1:
            return False  # SINGLE_OWNER
        if sole_copy_seen and n_valid > 1:
            return False  # EXCLUSIVE_IS_SOLE
        if n_owners == 0 and self.memory.peek(line_address) != expected:
            return False  # MEMORY_CURRENT_IF_UNOWNED
        return True

    def _check_invariants(self, line_address: int) -> None:
        if self._line_clean(line_address):
            return
        violations = check_line(self.line_view(line_address))
        if violations:
            raise CoherenceError("; ".join(str(v) for v in violations))

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def report(self, elapsed_ns: float = 0.0) -> SystemReport:
        caching = [
            c for c in self.controllers.values()
            if isinstance(c, CacheController)
        ]
        total_accesses = sum(
            c.stats.accesses for c in self.controllers.values()
        )
        hits = sum(c.stats.hits for c in caching)
        miss_ratio = 1 - hits / total_accesses if total_accesses else 0.0
        return SystemReport(
            metrics=self.metrics().to_dict(),
            trace=(
                None
                if self.tracer is None
                else (self.tracer, len(self.tracer))
            ),
            label=self.label,
            accesses=total_accesses,
            bus=self.bus_stats,
            miss_ratio=miss_ratio,
            invalidations=sum(
                c.stats.invalidations_received for c in caching
            ),
            updates_received=sum(c.stats.updates_received for c in caching),
            write_backs=sum(c.stats.write_backs for c in caching),
            abort_pushes=sum(c.stats.abort_pushes for c in caching),
            elapsed_ns=elapsed_ns,
        )

"""Verification layer: exhaustive model checking of protocol mixes
(the paper's compatibility theorem, executable), plus mutants and canned
mix matrices as positive/negative controls."""

from repro.verify.explorer import (
    ExplorationResult,
    Explorer,
    FullClassProtocol,
    ScriptedChooser,
    ScriptedPolicy,
    Violation,
    explore,
)
from repro.verify.mixes import (
    MixCase,
    class_member_mixes,
    homogeneous_foreign,
    incompatible_mixes,
    mutant_mixes,
    run_matrix,
)
from repro.verify.mutations import (
    ALL_MUTANTS,
    DoubleOwnerMutant,
    DropOwnershipMutant,
    NoInterventionMutant,
    NoInvalidateOnReadForModifyMutant,
    ProtocolMutant,
    SilentSharedWriteMutant,
)

__all__ = [
    "ExplorationResult",
    "Explorer",
    "FullClassProtocol",
    "ScriptedChooser",
    "ScriptedPolicy",
    "Violation",
    "explore",
    "MixCase",
    "class_member_mixes",
    "homogeneous_foreign",
    "incompatible_mixes",
    "mutant_mixes",
    "run_matrix",
    "ALL_MUTANTS",
    "DoubleOwnerMutant",
    "DropOwnershipMutant",
    "NoInterventionMutant",
    "NoInvalidateOnReadForModifyMutant",
    "ProtocolMutant",
    "SilentSharedWriteMutant",
]

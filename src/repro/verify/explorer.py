"""Exhaustive state-space exploration of small coherent systems.

This is the executable form of the paper's central claim (section 3.4):

    "any system component can select (dynamically) any action permitted by
    any protocol in the class, and be assured that consistency is
    maintained throughout the system."

The explorer drives a real system (real controllers, real bus engine, real
memory) on one line address -- or, with ``lines=2``, on two addresses
aliasing a single cache frame, so capacity evictions and write-backs join
the explored space -- enumerating every interleaving of local events
across all units *and* every permitted action choice at each step,
deduplicating states up to renaming of data tokens.  After every step it
checks the MOESI invariants and the read-coherence contract; any stale
read, broken invariant, multiple-intervention bus error or bus livelock is
reported as a violation with its full reproduction path.

Three kinds of runs matter:

* **class mixes** -- any combination of class members (MOESI under any
  policy, Berkeley, Dragon, write-through, non-caching, or the full
  relaxation closure via :class:`FullClassProtocol`): zero violations,
  exhaustively;
* **homogeneous foreign protocols** (Write-Once, Illinois, Firefly with
  their BS adaptation): zero violations among themselves;
* **negative controls** -- mutated out-of-class protocols and naive
  foreign/class mixes: the explorer *finds* the violation, demonstrating
  the checker has teeth (see :mod:`repro.verify.mutations`).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Optional, Sequence, Union

from repro.bus.futurebus import BusLivelockError
from repro.cache.controller import CacheController, NonCachingMaster
from repro.core.actions import LocalAction, MasterKind, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.policy import ActionPolicy
from repro.core.protocol import IllegalTransitionError, Protocol
from repro.core.states import LineState
from repro.core.transitions import (
    MoesiClassTable,
    _same_local_behaviour,
    _same_snoop_behaviour,
    compiled_class_cells,
    shared_class_table,
)
from repro.protocols.moesi import MoesiProtocol
from repro.protocols.registry import make_protocol
from repro.system.system import BoardSpec, CoherenceError, System

__all__ = [
    "ScriptedChooser",
    "ScriptedPolicy",
    "FullClassProtocol",
    "TransitionQuery",
    "ClassTransitionQuery",
    "ProtocolTransitionQuery",
    "Violation",
    "ExplorationResult",
    "Explorer",
    "explore",
]

class ScriptedChooser:
    """A replayable source of choice indices shared by all units.

    During discovery the script is empty and every choice takes index 0
    while its arity is logged; replays then supply explicit indices so the
    explorer can enumerate every combination along a step.
    """

    def __init__(self) -> None:
        self.script: tuple[int, ...] = ()
        self.arities: list[int] = []
        self._position = 0

    def begin(self, script: tuple[int, ...] = ()) -> None:
        self.script = script
        self.arities = []
        self._position = 0

    def pick(self, arity: int) -> int:
        self.arities.append(arity)
        index = (
            self.script[self._position]
            if self._position < len(self.script)
            else 0
        )
        self._position += 1
        if not 0 <= index < arity:
            raise IndexError(f"scripted choice {index} out of range 0..{arity-1}")
        return index


class ScriptedPolicy(ActionPolicy):
    """An action policy driven by a :class:`ScriptedChooser`."""

    name = "scripted"

    def __init__(self, chooser: ScriptedChooser) -> None:
        self.chooser = chooser

    def choose_local(self, state, event, choices, ctx=None):
        return choices[self.chooser.pick(len(choices))]

    def choose_snoop(self, state, event, choices, ctx=None):
        return choices[self.chooser.pick(len(choices))]


class FullClassProtocol(MoesiProtocol):
    """The *entire* MOESI class as one protocol: each cell offers the full
    relaxation closure of permitted actions (not just the literal table
    entries), so exploring it with a scripted policy exercises every
    behaviour any class member could exhibit."""

    def __init__(self, policy: ActionPolicy, name: str = "FullClass") -> None:
        super().__init__(policy, name=name)
        self._table = shared_class_table()
        # Closure cells are immutable, so every full-class instance shares
        # one compiled flat table: each cell is the closed action set
        # sorted by notation, indexed by interned state/event codes -- the
        # explorer's hottest lookup reduced to integer arithmetic.
        cells = compiled_class_cells()
        self._local_cells = cells.local
        self._snoop_cells = cells.snoop

    def local_cell(self, state, event):
        return self._local_cells[state.code * 4 + event.code]

    def snoop_cell(self, state, event):
        return self._snoop_cells[state.code * 6 + event.code]

    def local_action(self, state, event, ctx=None):
        choices = self.local_cell(state, event)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_local(state, event, choices, ctx)

    def snoop_action(self, state, event, ctx=None):
        choices = self.snoop_cell(state, event)
        if not choices:
            raise IllegalTransitionError(self.name, state, event)
        return self.policy.choose_snoop(state, event, choices, ctx)


class TransitionQuery:
    """Reachable-transition queries: is a concrete (state, event, action)
    transition one the exhaustive explorer could take?

    The explorer's search space is exactly the canonical tables -- the
    MOESI-class closure for class members, a protocol's own declared cells
    for the adapted foreign protocols.  Exposing that space as a query lets
    step-wise tooling (the fuzzer's differential oracle) cross-check every
    transition a *running* system exhibits against the canonical table,
    without re-running the exhaustive search.
    """

    def permits_local(
        self,
        state: LineState,
        event: LocalEvent,
        action: LocalAction,
    ) -> bool:
        raise NotImplementedError

    def permits_snoop(
        self,
        state: LineState,
        event: BusEvent,
        action: SnoopAction,
    ) -> bool:
        raise NotImplementedError

    def permits(self, side: str, state, event, action) -> bool:
        """Dispatch on ``side`` (``"local"`` / ``"snoop"``) -- the shape
        the transition observer reports.

        Verdicts are memoized per query instance: tables are immutable,
        and the differential oracle asks about the same few cells for
        every transition of a long run.
        """
        memo = self.__dict__.get("_permits_memo")
        if memo is None:
            memo = self.__dict__["_permits_memo"] = {}
        key = (side, state, event, action)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if side == "local":
            verdict = self.permits_local(state, event, action)
        elif side == "snoop":
            verdict = self.permits_snoop(state, event, action)
        else:
            raise ValueError(f"unknown transition side {side!r}")
        memo[key] = verdict
        return verdict


class ClassTransitionQuery(TransitionQuery):
    """Membership in the MOESI class's relaxation closure (Tables 1-2 plus
    section 3.3 items 9-12) -- the space the full-class explorer walks.

    ``kind`` narrows the Table-1 rows to those a given kind of board may
    use (write-through members are the ``*`` entries, non-caching ``**``).
    """

    def __init__(self, kind: Optional[MasterKind] = None) -> None:
        self.kind = kind
        self._table = shared_class_table()

    def permits_local(self, state, event, action) -> bool:
        if self._table.permits_local(state, event, action, self.kind):
            return True
        # Table 1 annotates only the rows where kinds *differ* (misses,
        # broadcast writes); hit and replacement rows are written once in
        # the copy-back column and shared by every kind.  When the
        # kind-narrowed row is empty the row is one of those shared ones:
        # judge against the unfiltered closure, as membership checking
        # (:func:`repro.core.validation.check_membership`) does.
        if (
            self.kind is not None
            and not self._table.local_action_set(state, event, self.kind)
        ):
            return self._table.permits_local(state, event, action, None)
        return False

    def permits_snoop(self, state, event, action) -> bool:
        return self._table.permits_snoop(state, event, action)

    def reachable_local(self, state, event) -> frozenset[LocalAction]:
        """Every local action the explorer could take at (state, event)."""
        return self._table.local_action_set(state, event, self.kind)

    def reachable_snoop(self, state, event) -> frozenset[SnoopAction]:
        return self._table.snoop_action_set(state, event)


class ProtocolTransitionQuery(TransitionQuery):
    """Membership in one concrete protocol's canonical table.

    Built from a *fresh* canonical instance (registry name or instance), so
    a mutated or buggy protocol running in the system under test deviates
    from this reference -- which is exactly what differential testing needs
    for the adapted foreign protocols (Illinois, Firefly, Write-Once) whose
    BS/abort rows and S-state semantics are deliberately outside the class
    closure.
    """

    def __init__(self, protocol: Union[str, Protocol]) -> None:
        self.protocol = (
            make_protocol(protocol) if isinstance(protocol, str) else protocol
        )
        self._class_fallback = ClassTransitionQuery(self.protocol.kind)

    def permits_local(self, state, event, action) -> bool:
        cell = self.protocol.local_cell(state, event)
        return any(_same_local_behaviour(action, c) for c in cell)

    def permits_snoop(self, state, event, action) -> bool:
        cell = self.protocol.snoop_cell(state, event)
        if any(_same_snoop_behaviour(action, c) for c in cell):
            return True
        # Foreign protocols extended for mixed systems answer bus events
        # outside their own table with the class-preferred response.
        if not cell and getattr(self.protocol, "snoop_default_to_class", False):
            return self._class_fallback.permits_snoop(state, event, action)
        return False

    def reachable_local(self, state, event) -> tuple[LocalAction, ...]:
        return self.protocol.local_cell(state, event)

    def reachable_snoop(self, state, event) -> tuple[SnoopAction, ...]:
        return self.protocol.snoop_cell(state, event)


@dataclasses.dataclass(frozen=True)
class _Step:
    """One explored action: a unit performs an event under a choice script."""

    unit: str
    event: str  # "read", "write", "flush", "pass", "downgrade"
    script: tuple[int, ...] = ()
    line: int = 0

    def __str__(self) -> str:
        suffix = f" choices={list(self.script)}" if self.script else ""
        line = f"[L{self.line}]" if self.line else ""
        return f"{self.unit}.{self.event}{line}{suffix}"


@dataclasses.dataclass
class Violation:
    """A consistency failure, with the path that reproduces it."""

    path: tuple[_Step, ...]
    error: str

    def __str__(self) -> str:
        steps = " -> ".join(str(s) for s in self.path)
        return f"{steps}: {self.error}"


@dataclasses.dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    label: str
    states_explored: int
    transitions_taken: int
    violations: list[Violation]
    #: True if the search exhausted the reachable space within its bounds.
    complete: bool

    @property
    def consistent(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = (
            "consistent"
            if self.consistent
            else f"{len(self.violations)} violation(s)"
        )
        bound = "exhaustive" if self.complete else "bounded"
        return (
            f"{self.label}: {verdict} "
            f"({self.states_explored} states, "
            f"{self.transitions_taken} transitions, {bound})"
        )


ProtocolSpec = Union[str, Callable[[ScriptedChooser], Protocol]]


def _resolve_protocol(spec: ProtocolSpec, chooser: ScriptedChooser) -> Protocol:
    if callable(spec):
        return spec(chooser)
    if spec == "full-class":
        return FullClassProtocol(ScriptedPolicy(chooser))
    if spec == "moesi-scripted":
        return MoesiProtocol(ScriptedPolicy(chooser), name="MOESI(scripted)")
    return make_protocol(spec)


class Explorer:
    """Breadth-first exploration with snapshot/restore and canonical
    deduplication of states."""

    def __init__(
        self,
        protocol_specs: Sequence[ProtocolSpec],
        include_pass: bool = True,
        include_downgrades: bool = True,
        max_states: int = 100_000,
        label: Optional[str] = None,
        lines: int = 1,
        profiler=None,
    ) -> None:
        #: Optional :class:`repro.obs.profile.Profiler` timing the search.
        self.profiler = profiler
        self.chooser = ScriptedChooser()
        protocols = [
            _resolve_protocol(spec, self.chooser) for spec in protocol_specs
        ]
        names = [
            spec if isinstance(spec, str) else protocols[i].name
            for i, spec in enumerate(protocol_specs)
        ]
        self.label = label or "+".join(names)
        boards = [
            BoardSpec(
                unit_id=f"u{i}",
                protocol=protocol,
                num_sets=1,
                associativity=1,
            )
            for i, protocol in enumerate(protocols)
        ]
        self.system = System(boards, check=True, label=self.label)
        self.units = list(self.system.controllers)
        self.include_pass = include_pass
        self.include_downgrades = include_downgrades
        self.max_states = max_states
        if lines < 1:
            raise ValueError("need at least one line")
        # With one set and one way, every explored line aliases the same
        # cache frame, so evictions and write-backs between lines become
        # part of the explored behaviour (lines > 1).
        self.lines = tuple(range(lines))
        # Units, applicable step kinds, and line addresses are all fixed
        # for the explorer's lifetime: resolve the per-unit line objects
        # and the full (unit, kind, address) menu once instead of on every
        # popped frontier state.
        self._unit_lines = tuple(self._unit_line(unit) for unit in self.units)
        self._step_menu = tuple(
            (unit, kind, address)
            for unit in self.units
            for kind in self._step_kinds(unit)
            for address in self.lines
        )

    # ------------------------------------------------------------------
    # Snapshot / restore / canonical signature.
    # ------------------------------------------------------------------
    def _unit_line(self, unit: str):
        board = self.system.controllers[unit]
        if isinstance(board, NonCachingMaster):
            return None
        return board.cache.ways_of(0)[0]

    def _snapshot(self):
        units = tuple(
            [
                None if line is None else (line.state, line.value, line.tag)
                for line in self._unit_lines
            ]
        )
        memory = tuple([self.system.memory.peek(a) for a in self.lines])
        last_version = self.system._last_version
        lasts = tuple([last_version.get(a, 0) for a in self.lines])
        return (units, memory, lasts, self.system._version_counter)

    def _restore(self, snapshot) -> None:
        units, memory, lasts, counter = snapshot
        for line, saved in zip(self._unit_lines, units):
            if line is None:
                continue
            line.state, line.value, line.tag = saved
        for address, mem_value, last in zip(self.lines, memory, lasts):
            self.system.memory.poke(address, mem_value)
            self.system._last_version[address] = last
        self.system._version_counter = counter

    def _signature(self, snapshot):
        units, memory, lasts, _counter = snapshot
        values = set(memory)
        values.update(lasts)
        for saved in units:
            if saved is not None and saved[0].valid:
                values.add(saved[1])
        ranks = {v: i for i, v in enumerate(sorted(values))}
        sig_units = tuple(
            [
                "nc"
                if saved is None
                else (
                    (saved[0].letter, saved[2], ranks[saved[1]])
                    if saved[0].valid
                    else "I"
                )
                for saved in units
            ]
        )
        return (
            sig_units,
            tuple([ranks[v] for v in memory]),
            tuple([ranks[v] for v in lasts]),
        )

    # ------------------------------------------------------------------
    # Step execution.
    # ------------------------------------------------------------------
    def _run_step(self, step: _Step) -> Optional[str]:
        """Execute one step; returns an error string on violation, None on
        success.  Raises ``_SkipStep`` for inapplicable steps."""
        board = self.system.controllers[step.unit]
        address = step.line
        byte_address = address * 32
        self.chooser.begin(step.script)
        try:
            if step.event == "read":
                self.system.read(step.unit, byte_address)
            elif step.event == "write":
                self.system.write(step.unit, byte_address)
            elif step.event == "flush":
                if isinstance(board, NonCachingMaster):
                    raise _SkipStep
                if not board.state_of(address).valid:
                    raise _SkipStep
                board.flush_line(address)
            elif step.event == "pass":
                if isinstance(board, NonCachingMaster):
                    raise _SkipStep
                state = board.state_of(address)
                if state not in (LineState.MODIFIED, LineState.OWNED):
                    raise _SkipStep
                board.clean_line(address)
            elif step.event == "downgrade":
                # Relaxations 9/10: M may become O, E may become S, at any
                # time, silently.
                found = (
                    None
                    if isinstance(board, NonCachingMaster)
                    else board.cache.lookup(address)
                )
                if found is None:
                    raise _SkipStep
                line = found[2]
                if line.state is LineState.MODIFIED:
                    line.state = LineState.OWNED
                elif line.state is LineState.EXCLUSIVE:
                    line.state = LineState.SHAREABLE
                else:
                    raise _SkipStep
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown step event {step.event!r}")
        except IllegalTransitionError:
            raise _SkipStep from None
        except (CoherenceError, BusLivelockError, RuntimeError) as exc:
            return f"{type(exc).__name__}: {exc}"
        violations = self.system.check_coherence(self.lines)
        if violations:
            return "; ".join(str(v) for v in violations)
        return None

    def _step_kinds(self, unit: str) -> list[str]:
        """Applicable step kinds for ``unit``; fixed per explorer, so the
        constructor folds it into the precomputed step menu."""
        kinds = ["read", "write", "flush"]
        if self.include_pass:
            kinds.append("pass")
        if self.include_downgrades:
            protocol = getattr(self.system.controllers[unit], "protocol", None)
            if protocol is not None and not protocol.requires_busy:
                kinds.append("downgrade")
        return kinds

    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        """Breadth-first search over canonical states."""
        if self.profiler is None:
            return self._run_search()
        with self.profiler.region(
            "explorer.frontier", label=self.label
        ) as meta:
            result = self._run_search()
            meta["states"] = result.states_explored
            meta["transitions"] = result.transitions_taken
        return result

    def _run_search(self) -> ExplorationResult:
        initial = self._snapshot()
        seen = {self._signature(initial)}
        frontier: deque[tuple] = deque([(initial, ())])
        violations: list[Violation] = []
        transitions = 0
        complete = True

        while frontier:
            if len(seen) > self.max_states:
                complete = False
                break
            snapshot, path = frontier.popleft()
            for unit, kind, address in self._step_menu:
                # Enumerate the step's choice *tree*: later choice
                # points may appear or vanish depending on earlier
                # picks (e.g. choosing invalidate over broadcast
                # removes the snoopers' update-or-drop choices), so
                # fixed-shape scripts cannot work.  Instead each run's
                # script prefix replays its parent's control flow
                # exactly, and we branch at every choice point the run
                # reached beyond its script.
                pending: list[tuple[int, ...]] = [()]
                while pending:
                    script = pending.pop()
                    self._restore(snapshot)
                    step = _Step(unit, kind, script, address)
                    try:
                        step_error = self._run_step(step)
                    except _SkipStep:
                        break  # applicability is choice-independent
                    arities = tuple(self.chooser.arities)
                    taken = script + (0,) * (len(arities) - len(script))
                    step = _Step(unit, kind, taken, address)
                    for pos in range(len(script), len(arities)):
                        for index in range(1, arities[pos]):
                            pending.append(taken[:pos] + (index,))
                    transitions += 1
                    if step_error is not None:
                        violations.append(
                            Violation(path + (step,), step_error)
                        )
                        continue
                    new_snapshot = self._snapshot()
                    signature = self._signature(new_snapshot)
                    if signature not in seen:
                        seen.add(signature)
                        frontier.append((new_snapshot, path + (step,)))
        return ExplorationResult(
            label=self.label,
            states_explored=len(seen),
            transitions_taken=transitions,
            violations=violations,
            complete=complete,
        )


class _SkipStep(Exception):
    """Internal: the step does not apply in the current state."""


def explore(
    protocol_specs: Sequence[ProtocolSpec],
    label: Optional[str] = None,
    **kwargs,
) -> ExplorationResult:
    """Convenience wrapper: build an :class:`Explorer` and run it.

    ``protocol_specs`` entries are registry names, the special names
    ``"full-class"`` / ``"moesi-scripted"`` (explored over *all* their
    permitted choices), or callables taking the shared chooser.
    """
    return Explorer(protocol_specs, label=label, **kwargs).run()

"""Canned verification configurations: the experiment matrix behind the
compatibility claims (experiment E1 of DESIGN.md).

:func:`class_member_mixes` -- combinations of MOESI-class members; every
one must verify consistent.

:func:`homogeneous_foreign` -- Write-Once / Illinois / Firefly among
themselves (with the BS adaptation); consistent.

:func:`incompatible_mixes` -- naive foreign-protocol + class-member mixes;
each must produce at least one violation (a protocol gap or a genuine
stale-data inconsistency), reproducing the paper's warning that those
protocols need further definition/adaptation before mixing.

:func:`run_matrix` executes a list of (specs, expectation) entries and
returns per-row results for the report and the benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.verify.explorer import ExplorationResult, explore
from repro.verify.mutations import ALL_MUTANTS

__all__ = [
    "MixCase",
    "SUITES",
    "class_member_mixes",
    "homogeneous_foreign",
    "incompatible_mixes",
    "mutant_mixes",
    "matrix_row",
    "run_matrix",
]


@dataclasses.dataclass
class MixCase:
    """One verification row: protocols to mix and the expected outcome.

    ``suite_ref`` names the case's home suite as ``(suite_name, index)``
    so worker processes can rebuild it from :data:`SUITES` -- cases whose
    specs are callables (the mutants) cannot be pickled directly.
    """

    specs: Sequence
    expect_consistent: bool
    label: Optional[str] = None
    note: str = ""
    suite_ref: Optional[tuple[str, int]] = None

    def run(self, **kwargs) -> ExplorationResult:
        return explore(self.specs, label=self.label, **kwargs)


def _stamp(suite_name: str, cases: list["MixCase"]) -> list["MixCase"]:
    for index, case in enumerate(cases):
        case.suite_ref = (suite_name, index)
    return cases


def class_member_mixes() -> list[MixCase]:
    """Mixes drawn from MOESI-class members: all must be consistent."""
    return _stamp("class-members", [
        MixCase(["moesi", "moesi"], True, note="homogeneous preferred"),
        MixCase(
            ["moesi-scripted", "moesi-scripted"],
            True,
            note="all Table-1/2 choices, both caches",
        ),
        MixCase(
            ["full-class", "full-class"],
            True,
            note="full relaxation closure, both caches",
        ),
        MixCase(
            ["full-class", "full-class", "full-class"],
            True,
            note="full relaxation closure, three caches",
        ),
        MixCase(["moesi-invalidate", "moesi-update"], True),
        MixCase(["berkeley", "berkeley"], True, note="Table 3 homogeneous"),
        MixCase(["dragon", "dragon"], True, note="Table 4 homogeneous"),
        MixCase(["berkeley", "dragon"], True, note="paper section 4.1-4.2"),
        MixCase(["moesi-scripted", "berkeley"], True),
        MixCase(["moesi-scripted", "dragon"], True),
        MixCase(["moesi", "write-through"], True),
        MixCase(["moesi", "write-through-alloc"], True),
        MixCase(["moesi", "non-caching"], True),
        MixCase(["moesi", "non-caching-bc"], True),
        MixCase(
            ["moesi-scripted", "berkeley", "write-through"],
            True,
            note="copy-back + ownership + write-through coexistence",
        ),
        MixCase(
            ["dragon", "write-through", "non-caching"],
            True,
            note="update protocol + simple boards",
        ),
        MixCase(
            ["full-class", "berkeley", "non-caching"],
            True,
            note="closure against fixed members",
        ),
    ])


def homogeneous_foreign() -> list[MixCase]:
    """BS-adapted foreign protocols among themselves: consistent."""
    return _stamp("homogeneous-foreign", [
        MixCase(["write-once", "write-once"], True, note="Table 5"),
        MixCase(["illinois", "illinois"], True, note="Table 6"),
        MixCase(["firefly", "firefly"], True, note="Table 7"),
        MixCase(["illinois", "illinois", "illinois"], True),
        MixCase(["write-once", "write-once", "write-once"], True),
    ])


def incompatible_mixes() -> list[MixCase]:
    """Naive foreign/class mixes: the explorer must find the holes."""
    return _stamp("incompatible", [
        MixCase(
            ["write-once", "moesi"],
            False,
            note="Write-Once's S means memory-consistent; stale memory "
            "after its write-through-to-E against a MOESI owner",
        ),
        MixCase(
            ["illinois", "moesi"],
            False,
            note="undefined snoop behaviour for broadcast writes (col 8)",
        ),
        MixCase(
            ["firefly", "moesi"],
            False,
            note="undefined snoop behaviour for invalidates (col 6)",
        ),
        MixCase(
            ["write-once", "non-caching"],
            False,
            note="undefined snoop behaviour for uncached accesses",
        ),
    ])


def mutant_mixes() -> list[MixCase]:
    """Out-of-class mutants against a correct partner: all must fail."""
    cases = []
    for mutant_cls in ALL_MUTANTS:
        cases.append(
            MixCase(
                [lambda chooser, cls=mutant_cls: cls(), "moesi"],
                False,
                label=f"{mutant_cls.__name__}+moesi",
                note="single-cell out-of-class mutation",
            )
        )
    return _stamp("mutants", cases)


#: Named case suites, addressable from worker processes: a stamped
#: ``suite_ref`` is resolved back to its case by re-running the factory.
SUITES: dict[str, Callable[[], list[MixCase]]] = {
    "class-members": class_member_mixes,
    "homogeneous-foreign": homogeneous_foreign,
    "incompatible": incompatible_mixes,
    "mutants": mutant_mixes,
}


def matrix_row(case: MixCase, result: ExplorationResult) -> dict:
    """The report row for one executed case (shared by the serial path
    and the :mod:`repro.perf.matrix` workers, so both emit identical
    rows)."""
    return {
        "mix": result.label,
        "expected": "consistent" if case.expect_consistent else "violation",
        "observed": "consistent" if result.consistent else "violation",
        "ok": result.consistent == case.expect_consistent,
        "states": result.states_explored,
        "transitions": result.transitions_taken,
        "note": case.note,
    }


def run_matrix(
    cases: Sequence[MixCase],
    workers: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    tracer=None,
    profiler=None,
    **kwargs,
) -> list[dict]:
    """Run each case; return report rows with pass/fail vs expectation.

    With ``workers`` > 1 the cases fan out across a process pool (rows
    come back in case order, identical to a serial run); otherwise they
    run serially in-process.  A :class:`repro.obs.trace.Tracer` gets one
    ``verify.case`` mark per row -- derived from the rows themselves, so
    the marks are identical for serial and pooled runs; a
    :class:`repro.obs.profile.Profiler` times the whole matrix.
    """
    def _execute() -> list[dict]:
        if workers is not None and workers > 1:
            from repro.perf.matrix import run_matrix_parallel

            return run_matrix_parallel(
                cases, workers=workers, task_timeout_s=task_timeout_s,
                **kwargs,
            )
        return [matrix_row(case, case.run(**kwargs)) for case in cases]

    if profiler is not None:
        with profiler.region(
            "verify.matrix", cases=len(cases), workers=workers or 1
        ):
            rows = _execute()
    else:
        rows = _execute()
    if tracer is not None:
        for row in rows:
            tracer.mark(
                "verify.case",
                mix=row["mix"],
                ok=row["ok"],
                observed=row["observed"],
                states=row["states"],
                transitions=row["transitions"],
            )
    return rows

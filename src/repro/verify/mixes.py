"""Canned verification configurations: the experiment matrix behind the
compatibility claims (experiment E1 of DESIGN.md).

:func:`class_member_mixes` -- combinations of MOESI-class members; every
one must verify consistent.

:func:`homogeneous_foreign` -- Write-Once / Illinois / Firefly among
themselves (with the BS adaptation); consistent.

:func:`incompatible_mixes` -- naive foreign-protocol + class-member mixes;
each must produce at least one violation (a protocol gap or a genuine
stale-data inconsistency), reproducing the paper's warning that those
protocols need further definition/adaptation before mixing.

:func:`run_matrix` executes a list of (specs, expectation) entries and
returns per-row results for the report and the benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.verify.explorer import ExplorationResult, explore
from repro.verify.mutations import ALL_MUTANTS

__all__ = [
    "MixCase",
    "class_member_mixes",
    "homogeneous_foreign",
    "incompatible_mixes",
    "mutant_mixes",
    "run_matrix",
]


@dataclasses.dataclass
class MixCase:
    """One verification row: protocols to mix and the expected outcome."""

    specs: Sequence
    expect_consistent: bool
    label: Optional[str] = None
    note: str = ""

    def run(self, **kwargs) -> ExplorationResult:
        return explore(self.specs, label=self.label, **kwargs)


def class_member_mixes() -> list[MixCase]:
    """Mixes drawn from MOESI-class members: all must be consistent."""
    return [
        MixCase(["moesi", "moesi"], True, note="homogeneous preferred"),
        MixCase(
            ["moesi-scripted", "moesi-scripted"],
            True,
            note="all Table-1/2 choices, both caches",
        ),
        MixCase(
            ["full-class", "full-class"],
            True,
            note="full relaxation closure, both caches",
        ),
        MixCase(
            ["full-class", "full-class", "full-class"],
            True,
            note="full relaxation closure, three caches",
        ),
        MixCase(["moesi-invalidate", "moesi-update"], True),
        MixCase(["berkeley", "berkeley"], True, note="Table 3 homogeneous"),
        MixCase(["dragon", "dragon"], True, note="Table 4 homogeneous"),
        MixCase(["berkeley", "dragon"], True, note="paper section 4.1-4.2"),
        MixCase(["moesi-scripted", "berkeley"], True),
        MixCase(["moesi-scripted", "dragon"], True),
        MixCase(["moesi", "write-through"], True),
        MixCase(["moesi", "write-through-alloc"], True),
        MixCase(["moesi", "non-caching"], True),
        MixCase(["moesi", "non-caching-bc"], True),
        MixCase(
            ["moesi-scripted", "berkeley", "write-through"],
            True,
            note="copy-back + ownership + write-through coexistence",
        ),
        MixCase(
            ["dragon", "write-through", "non-caching"],
            True,
            note="update protocol + simple boards",
        ),
        MixCase(
            ["full-class", "berkeley", "non-caching"],
            True,
            note="closure against fixed members",
        ),
    ]


def homogeneous_foreign() -> list[MixCase]:
    """BS-adapted foreign protocols among themselves: consistent."""
    return [
        MixCase(["write-once", "write-once"], True, note="Table 5"),
        MixCase(["illinois", "illinois"], True, note="Table 6"),
        MixCase(["firefly", "firefly"], True, note="Table 7"),
        MixCase(["illinois", "illinois", "illinois"], True),
        MixCase(["write-once", "write-once", "write-once"], True),
    ]


def incompatible_mixes() -> list[MixCase]:
    """Naive foreign/class mixes: the explorer must find the holes."""
    return [
        MixCase(
            ["write-once", "moesi"],
            False,
            note="Write-Once's S means memory-consistent; stale memory "
            "after its write-through-to-E against a MOESI owner",
        ),
        MixCase(
            ["illinois", "moesi"],
            False,
            note="undefined snoop behaviour for broadcast writes (col 8)",
        ),
        MixCase(
            ["firefly", "moesi"],
            False,
            note="undefined snoop behaviour for invalidates (col 6)",
        ),
        MixCase(
            ["write-once", "non-caching"],
            False,
            note="undefined snoop behaviour for uncached accesses",
        ),
    ]


def mutant_mixes() -> list[MixCase]:
    """Out-of-class mutants against a correct partner: all must fail."""
    cases = []
    for mutant_cls in ALL_MUTANTS:
        cases.append(
            MixCase(
                [lambda chooser, cls=mutant_cls: cls(), "moesi"],
                False,
                label=f"{mutant_cls.__name__}+moesi",
                note="single-cell out-of-class mutation",
            )
        )
    return cases


def run_matrix(cases: Sequence[MixCase], **kwargs) -> list[dict]:
    """Run each case; return report rows with pass/fail vs expectation."""
    rows = []
    for case in cases:
        result = case.run(**kwargs)
        rows.append(
            {
                "mix": result.label,
                "expected": "consistent" if case.expect_consistent else "violation",
                "observed": "consistent" if result.consistent else "violation",
                "ok": result.consistent == case.expect_consistent,
                "states": result.states_explored,
                "transitions": result.transitions_taken,
                "note": case.note,
            }
        )
    return rows

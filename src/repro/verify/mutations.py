"""Out-of-class protocol mutants: negative controls for the model checker.

The compatibility theorem is only convincing if the checker would notice a
broken protocol.  Each mutant here takes a correct protocol and changes
exactly one cell to something *outside* the MOESI class; the explorer must
find a violation for every one of them (and the membership validator must
reject them statically).

Mutants:

* :class:`SilentSharedWriteMutant` -- writes to S silently take M without
  any bus transaction (other copies are never told);
* :class:`NoInvalidateOnReadForModifyMutant` -- keeps its S copy (and
  claims CH) when another cache reads-for-modify (column 6);
* :class:`DropOwnershipMutant` -- an M-state owner silently discards its
  line on eviction instead of writing it back;
* :class:`NoInterventionMutant` -- an M-state owner refuses to intervene
  on a bus read, letting memory supply stale data;
* :class:`DoubleOwnerMutant` -- lands in O (instead of S) when snooping
  another owner's broadcast write, manufacturing two owners;
* :class:`AdaptiveRetainWithoutConnectMutant` -- a threshold-adaptive
  hybrid that claims retention (CH) on a snooped broadcast write but
  never connects (no SL), so its retained copy goes stale;
* :class:`MesifStaleForwardMutant` -- MESIF whose M state forwards dirty
  data cache-to-cache without the memory push, leaving memory stale with
  no owner once the forwarder drops out.

Each mutant names the correct partner to pair it with during
exploration via ``partner_spec`` (the BS-adapted MESIF mutant must stay
homogeneous, like its base).
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import BusOp, LocalAction, SnoopAction
from repro.core.events import BusEvent, LocalEvent
from repro.core.protocol import LocalContext, Protocol, SnoopContext
from repro.core.signals import MasterSignals, SnoopResponse
from repro.core.states import LineState
from repro.protocols.moesi import MoesiProtocol

__all__ = [
    "ProtocolMutant",
    "SilentSharedWriteMutant",
    "NoInvalidateOnReadForModifyMutant",
    "DropOwnershipMutant",
    "NoInterventionMutant",
    "DoubleOwnerMutant",
    "AdaptiveRetainWithoutConnectMutant",
    "MesifStaleForwardMutant",
    "ALL_MUTANTS",
]

M, O, E, S, I = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHAREABLE,
    LineState.INVALID,
)


class ProtocolMutant(Protocol):
    """Wrap a base protocol, overriding single cells.

    Subclasses fill ``local_overrides`` / ``snoop_overrides``.
    """

    local_overrides: dict[tuple[LineState, LocalEvent], LocalAction] = {}
    snoop_overrides: dict[tuple[LineState, BusEvent], SnoopAction] = {}
    #: Registry spec of the correct partner the explorer pairs the mutant
    #: with (BS-adapted bases need a homogeneous partner).
    partner_spec: str = "moesi"

    def __init__(self, base: Optional[Protocol] = None) -> None:
        self.base = base or MoesiProtocol()
        self.name = f"{type(self).__name__}({self.base.name})"
        self.kind = self.base.kind
        self.states = self.base.states
        self.requires_busy = self.base.requires_busy

    def local_action(self, state, event, ctx: Optional[LocalContext] = None):
        override = self.local_overrides.get((state, event))
        if override is not None:
            return override
        return self.base.local_action(state, event, ctx)

    def snoop_action(self, state, event, ctx: Optional[SnoopContext] = None):
        override = self.snoop_overrides.get((state, event))
        if override is not None:
            return override
        return self.base.snoop_action(state, event, ctx)

    def local_cell(self, state, event):
        override = self.local_overrides.get((state, event))
        if override is not None:
            return (override,)
        return self.base.local_cell(state, event)

    def snoop_cell(self, state, event):
        override = self.snoop_overrides.get((state, event))
        if override is not None:
            return (override,)
        return self.base.snoop_cell(state, event)


class SilentSharedWriteMutant(ProtocolMutant):
    """Write hits in S take M without telling anyone -- the textbook
    coherence bug (other S copies go stale)."""

    local_overrides = {
        (S, LocalEvent.WRITE): LocalAction(M, MasterSignals(), BusOp.NONE),
    }


class NoInvalidateOnReadForModifyMutant(ProtocolMutant):
    """Keeps its S copy when another cache performs a read-for-modify;
    the writer then modifies while this stale copy survives."""

    snoop_overrides = {
        (S, BusEvent.CACHE_READ_FOR_MODIFY): SnoopAction(
            S, SnoopResponse(ch=True)
        ),
    }


class DropOwnershipMutant(ProtocolMutant):
    """Evicts M lines silently -- the only current copy evaporates and
    memory is left stale with no owner."""

    local_overrides = {
        (M, LocalEvent.FLUSH): LocalAction(I, MasterSignals(), BusOp.NONE),
    }


class NoInterventionMutant(ProtocolMutant):
    """An M owner that refuses to intervene on a cache read: the requester
    is served stale data by memory."""

    snoop_overrides = {
        (M, BusEvent.CACHE_READ): SnoopAction(O, SnoopResponse(ch=True)),
    }


class DoubleOwnerMutant(ProtocolMutant):
    """Snooping a broadcast write from O, stays *O* (instead of handing
    ownership to the writer) -- two owners result."""

    snoop_overrides = {
        (O, BusEvent.CACHE_BROADCAST_WRITE): SnoopAction(
            O, SnoopResponse(ch=True, sl=True)
        ),
    }


class AdaptiveRetainWithoutConnectMutant(ProtocolMutant):
    """A threshold-adaptive hybrid that answers a snooped broadcast write
    with CH (it keeps the copy) but no SL (it never connects to the
    transfer): the retained copy silently misses the update."""

    snoop_overrides = {
        (S, BusEvent.CACHE_BROADCAST_WRITE): SnoopAction(
            S, SnoopResponse(ch=True)
        ),
    }

    def __init__(self, base: Optional[Protocol] = None) -> None:
        from repro.core.policy import ThresholdAdaptivePolicy

        super().__init__(
            base
            or MoesiProtocol(
                ThresholdAdaptivePolicy(), name="MOESI(adaptive-threshold)"
            )
        )


class MesifStaleForwardMutant(ProtocolMutant):
    """MESIF whose M state forwards its dirty line cache-to-cache (no BS
    abort-push): memory is never updated, and once the new forwarder
    drops its clean-believed copy no owner remains to supply the current
    data."""

    partner_spec = "mesif"
    snoop_overrides = {
        (M, BusEvent.CACHE_READ): SnoopAction(
            S, SnoopResponse(ch=True, di=True)
        ),
    }

    def __init__(self, base: Optional[Protocol] = None) -> None:
        from repro.protocols.mesif import MesifProtocol

        super().__init__(base or MesifProtocol())


ALL_MUTANTS = (
    SilentSharedWriteMutant,
    NoInvalidateOnReadForModifyMutant,
    DropOwnershipMutant,
    NoInterventionMutant,
    DoubleOwnerMutant,
    AdaptiveRetainWithoutConnectMutant,
    MesifStaleForwardMutant,
)

"""Workload generation: trace records/IO, the Dubois-Briggs-style synthetic
model, and named sharing patterns."""

from repro.workloads.kernels import (
    reduction_trace,
    spinlock_trace,
    stencil_trace,
)
from repro.workloads.patterns import (
    migratory,
    ping_pong,
    private_streams,
    producer_consumer,
    read_mostly,
)
from repro.workloads.spatial import SpatialConfig, SpatialWorkload
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.trace import Op, ReferenceRecord, Trace

__all__ = [
    "reduction_trace",
    "spinlock_trace",
    "stencil_trace",
    "migratory",
    "ping_pong",
    "private_streams",
    "producer_consumer",
    "read_mostly",
    "SpatialConfig",
    "SpatialWorkload",
    "SyntheticConfig",
    "SyntheticWorkload",
    "Op",
    "ReferenceRecord",
    "Trace",
]
